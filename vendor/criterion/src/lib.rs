//! Offline stand-in for `criterion`.
//!
//! Provides the macro/API surface the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], benchmark groups,
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`BenchmarkId`],
//! [`BatchSize`] — backed by a simple wall-clock measurer: a warmup pass
//! sizes the iteration count, then `sample_size` samples of mean
//! per-iteration time are taken and min/median/max are printed. No
//! statistics, baselines, or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim runs one setup per
/// routine invocation regardless; the variants exist for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// An id that is just the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { criterion: self, sample_size: None }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = Some(n);
        self
    }

    fn effective_samples(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("  {name}"), self.effective_samples(), f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("  {id}"), self.effective_samples(), |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    /// Iterations per sample, decided by the warmup pass.
    iters: u64,
    /// Mean per-iteration time of the last sample.
    last: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times to get a stable reading.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.last = start.elapsed() / self.iters as u32;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.last = total / self.iters as u32;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Warmup: one iteration, to size the per-sample iteration count so a
    // sample takes ~20ms (capped to keep total runtime bounded).
    let mut b = Bencher { iters: 1, last: Duration::ZERO };
    f(&mut b);
    let per_iter = b.last.max(Duration::from_nanos(1));
    let target = Duration::from_millis(20);
    b.iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        f(&mut b);
        times.push(b.last);
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    println!(
        "{label}: median {} (min {}, max {}, {} samples x {} iters)",
        fmt_duration(median),
        fmt_duration(times[0]),
        fmt_duration(times[times.len() - 1]),
        samples,
        b.iters,
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| b.iter(|| x * x));
        g.finish();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn harness_runs() {
        criterion_group!(benches, sample_bench);
        benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
