//! Offline stand-in for `rand_chacha`: a genuine ChaCha stream cipher used
//! as a deterministic, high-quality PRNG.
//!
//! The keystream follows RFC 8439's block function (with 8 double-rounds
//! for `ChaCha8Rng`). Seeding via `seed_from_u64` expands the word through
//! SplitMix64 (inherited from the `rand` shim's `SeedableRng` default), so
//! streams are **not** bit-identical to the real `rand_chacha` crate —
//! everything in this workspace relies only on determinism and quality.

use rand::{RngCore, SeedableRng};

const ROUNDS8: usize = 8;

/// A ChaCha generator with 8 rounds: fast, solid statistical quality.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    buffer: [u32; 16],
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn chacha_block(state: &[u32; 16], rounds: usize, out: &mut [u32; 16]) {
    let mut w = *state;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut w, 0, 4, 8, 12);
        quarter_round(&mut w, 1, 5, 9, 13);
        quarter_round(&mut w, 2, 6, 10, 14);
        quarter_round(&mut w, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut w, 0, 5, 10, 15);
        quarter_round(&mut w, 1, 6, 11, 12);
        quarter_round(&mut w, 2, 7, 8, 13);
        quarter_round(&mut w, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = w[i].wrapping_add(state[i]);
    }
}

impl ChaCha8Rng {
    fn from_key(key: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        // Counter (words 12-13) and nonce (14-15) start at zero.
        ChaCha8Rng { state, buffer: [0; 16], index: 16 }
    }

    fn refill(&mut self) {
        let mut out = [0u32; 16];
        chacha_block(&self.state, ROUNDS8, &mut out);
        self.buffer = out;
        self.index = 0;
        // 64-bit block counter in words 12..=13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.buffer[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        ChaCha8Rng::from_key(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn block_counter_advances() {
        // More than one 64-byte block must not repeat the keystream.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn mean_of_unit_floats_is_centered() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..10 {
            rng.next_u64();
        }
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
    }
}
