//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes this workspace uses, parsing the item with `proc_macro` token
//! trees directly (no `syn`/`quote` available offline) and emitting the
//! impl as a formatted string:
//!
//! * structs with named fields, honouring `#[serde(with = "module")]` and
//!   `#[serde(default)]` field attributes,
//! * enums with unit, newtype and tuple variants (externally tagged).
//!
//! Unsupported shapes (generics, tuple/unit structs, struct variants,
//! other `#[serde(...)]` attributes) produce a `compile_error!` naming the
//! construct, so API drift surfaces loudly instead of silently.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim's `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

/// Derives the shim's `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => match which {
            Trait::Serialize => gen_serialize(&item),
            Trait::Deserialize => gen_deserialize(&item),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("derive emitted invalid Rust")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    /// Named-field struct: `(field name, serde attrs)` per field.
    Struct(Vec<Field>),
    /// Enum: `(variant name, tuple arity; 0 = unit)` per variant.
    Enum(Vec<(String, usize)>),
}

struct Field {
    name: String,
    with: Option<String>,
    default: bool,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Consumes leading attributes, returning the token strings of `#[serde(...)]`
/// inner argument lists.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, Vec<String>) {
    let mut serde_args = Vec::new();
    while i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[i] else { break };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[i + 1] else { break };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    serde_args.push(args.stream().to_string());
                }
            }
        }
        i += 2;
    }
    (i, serde_args)
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_serde_attr(args: &[String], field: &str) -> Result<(Option<String>, bool), String> {
    let mut with = None;
    let mut default = false;
    for arg in args {
        // Token-stream stringification normalizes whitespace; parse loosely.
        for part in arg.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if part == "default" {
                default = true;
            } else if let Some(rest) = part.strip_prefix("with") {
                let rest = rest.trim_start().strip_prefix('=').map(str::trim);
                match rest.and_then(|r| r.strip_prefix('"')).and_then(|r| r.strip_suffix('"')) {
                    Some(path) => with = Some(path.to_string()),
                    None => return Err(format!("malformed #[serde(with = ...)] on `{field}`")),
                }
            } else {
                return Err(format!(
                    "unsupported serde attribute `{part}` on `{field}` (shim supports `with`, `default`)"
                ));
            }
        }
    }
    Ok((with, default))
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: expected item name".into()),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("serde shim derive: generic type `{name}` is unsupported"));
        }
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            return Err(format!("serde shim derive: tuple struct `{name}` is unsupported"));
        }
        _ => return Err(format!("serde shim derive: `{name}` has no braced body")),
    };

    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_struct_body(body)?),
        "enum" => Kind::Enum(parse_enum_body(body)?),
        other => return Err(format!("serde shim derive: cannot derive for `{other}`")),
    };
    Ok(Item { name, kind })
}

fn parse_struct_body(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (ni, serde_args) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, ni);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => {
                return Err(format!("serde shim derive: unexpected token `{other}` in struct body"))
            }
            None => break,
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("serde shim derive: expected `:` after field `{name}`")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        if tokens.get(i).is_some() {
            i += 1; // consume the comma
        }
        let (with, default) = parse_serde_attr(&serde_args, &name)?;
        fields.push(Field { name, with, default });
    }
    Ok(fields)
}

fn parse_enum_body(body: TokenStream) -> Result<Vec<(String, usize)>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (ni, serde_args) = skip_attrs(&tokens, i);
        i = ni;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => {
                return Err(format!("serde shim derive: unexpected token `{other}` in enum body"))
            }
            None => break,
        };
        if !serde_args.is_empty() {
            return Err(format!(
                "serde shim derive: serde attributes on variant `{name}` are unsupported"
            ));
        }
        i += 1;
        let mut arity = 0usize;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                arity = tuple_arity(g.stream());
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!("serde shim derive: struct variant `{name}` is unsupported"));
            }
            _ => {}
        }
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "serde shim derive: discriminant on variant `{name}` is unsupported"
                ));
            }
            None => {}
            Some(other) => {
                return Err(format!(
                    "serde shim derive: unexpected token `{other}` after variant `{name}`"
                ))
            }
        }
        variants.push((name, arity));
    }
    Ok(variants)
}

/// Number of top-level comma-separated types in a paren group.
fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut arity = 1usize;
    let mut trailing_comma = false;
    for tt in &tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    arity += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        arity -= 1;
    }
    arity
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const SER_ERR: &str = "|e| <__S::Error as ::serde::ser::Error>::custom(e)";
const DE_ERR: &str = "|e| <__D::Error as ::serde::de::Error>::custom(e)";

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut out = String::from(
                "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields {
                let fname = &f.name;
                let value = match &f.with {
                    Some(path) => format!(
                        "{path}::serialize(&self.{fname}, ::serde::__private::ValueSerializer).map_err({SER_ERR})?"
                    ),
                    None => format!(
                        "::serde::__private::to_value(&self.{fname}).map_err({SER_ERR})?"
                    ),
                };
                out.push_str(&format!(
                    "__m.push((::std::string::String::from({fname:?}), {value}));\n"
                ));
            }
            out.push_str("__serializer.serialize_value(::serde::Value::Map(__m))\n");
            out
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (vname, arity) in variants {
                match arity {
                    0 => arms.push_str(&format!(
                        "{name}::{vname} => __serializer.serialize_value(::serde::Value::Str(::std::string::String::from({vname:?}))),\n"
                    )),
                    n => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__x{k}")).collect();
                        let inner = if *n == 1 {
                            format!("::serde::__private::to_value(__x0).map_err({SER_ERR})?")
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::__private::to_value({b}).map_err({SER_ERR})?"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => {{\n\
                             let __inner = {inner};\n\
                             __serializer.serialize_value(::serde::Value::Map(::std::vec![(::std::string::String::from({vname:?}), __inner)]))\n\
                             }}\n",
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}\n")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
         {body}\
         }}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut out = String::from("let mut __v = __deserializer.take_value()?;\n");
            out.push_str(&format!(
                "if !matches!(__v, ::serde::Value::Map(_)) {{\n\
                 return ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
                 ::std::format!(\"expected map for struct {name}, found {{}}\", __v.kind())));\n\
                 }}\n"
            ));
            for f in fields {
                let fname = &f.name;
                let from = match &f.with {
                    Some(path) => format!(
                        "{path}::deserialize(::serde::__private::ValueDeserializer::new(__x)).map_err({DE_ERR})?"
                    ),
                    None => format!("::serde::__private::from_value(__x).map_err({DE_ERR})?"),
                };
                let missing = if f.default {
                    "::std::default::Default::default()".to_string()
                } else {
                    format!(
                        "return ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
                         \"missing field `{fname}` in {name}\"))"
                    )
                };
                out.push_str(&format!(
                    "let __f_{fname} = match __v.take_entry({fname:?}) {{\n\
                     ::std::option::Option::Some(__x) => {from},\n\
                     ::std::option::Option::None => {missing},\n\
                     }};\n"
                ));
            }
            let ctor: Vec<String> =
                fields.iter().map(|f| format!("{0}: __f_{0}", f.name)).collect();
            out.push_str(&format!("::std::result::Result::Ok({name} {{ {} }})\n", ctor.join(", ")));
            out
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (vname, arity) in variants {
                match arity {
                    0 => unit_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    1 => data_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::__private::from_value(__inner).map_err({DE_ERR})?)),\n"
                    )),
                    n => {
                        let elems: Vec<String> = (0..*n)
                            .map(|_| {
                                format!(
                                    "::serde::__private::from_value(__it.next().expect(\"length checked\")).map_err({DE_ERR})?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "{vname:?} => match __inner {{\n\
                             ::serde::Value::Seq(__items) if __items.len() == {n} => {{\n\
                             let mut __it = __items.into_iter();\n\
                             ::std::result::Result::Ok({name}::{vname}({elems}))\n\
                             }}\n\
                             __other => ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
                             ::std::format!(\"variant {name}::{vname} expects {n} elements, found {{}}\", __other.kind()))),\n\
                             }},\n",
                            elems = elems.join(", "),
                        ));
                    }
                }
            }
            format!(
                "match __deserializer.take_value()? {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
                 ::std::format!(\"unknown unit variant `{{__other}}` for {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Map(mut __m) if __m.len() == 1 => {{\n\
                 let (__tag, __inner) = __m.remove(0);\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\
                 __other => ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                 }}\n\
                 }}\n\
                 __other => ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
                 ::std::format!(\"expected variant for {name}, found {{}}\", __other.kind()))),\n\
                 }}\n"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) -> ::std::result::Result<Self, __D::Error> {{\n\
         {body}\
         }}\n\
         }}\n"
    )
}
