//! The self-describing data model all (de)serialization routes through.

use std::fmt;

/// A serialized value: the shim's equivalent of serde's data model.
///
/// Map keys are strings (JSON-shaped); maps with non-string keys must go
/// through a `#[serde(with = ...)]` adapter, exactly as they must for JSON
/// in real serde.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` / unit / `None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (objects, structs, enum variants).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) => "integer",
            Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// Removes and returns the entry for `key` from a map value.
    pub fn take_entry(&mut self, key: &str) -> Option<Value> {
        if let Value::Map(entries) = self {
            let idx = entries.iter().position(|(k, _)| k == key)?;
            Some(entries.remove(idx).1)
        } else {
            None
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Seq(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Map(entries) => {
                write!(f, "{{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k:?}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}
