//! Serialization traits and the built-in `Serialize` impls.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;

use crate::value::Value;

/// Errors produced while serializing.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A sink for one serialized value.
pub trait Serializer: Sized {
    /// Result type on success.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Consumes a fully built value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A type that can serialize itself.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

/// The string-backed error used by [`ValueSerializer`] and `to_value`.
#[derive(Debug, Clone)]
pub struct SerError(pub String);

impl Display for SerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SerError {}

impl Error for SerError {
    fn custom<T: Display>(msg: T) -> Self {
        SerError(msg.to_string())
    }
}

/// A serializer that simply yields the built [`Value`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = SerError;

    fn serialize_value(self, value: Value) -> Result<Value, SerError> {
        Ok(value)
    }
}

/// Serializes any `Serialize` type into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, SerError> {
    value.serialize(ValueSerializer)
}

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::I64(*self as i64))
            }
        }
    )*};
}
impl_ser_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    serializer.serialize_value(Value::I64(v as i64))
                } else {
                    serializer.serialize_value(Value::U64(v))
                }
            }
        }
    )*};
}
impl_ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::F64(*self as f64))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::F64(*self))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.clone()))
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Null)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_value(Value::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

fn seq_to_value<'a, T, I>(items: I) -> Result<Value, SerError>
where
    T: Serialize + 'a,
    I: IntoIterator<Item = &'a T>,
{
    let vals: Result<Vec<Value>, SerError> = items.into_iter().map(to_value).collect();
    Ok(Value::Seq(vals?))
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value(self.iter()).map_err(S::Error::custom)?;
        serializer.serialize_value(v)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![
                    $(to_value(&self.$idx).map_err(|e| S::Error::custom(e))?,)+
                ];
                serializer.serialize_value(Value::Seq(items))
            }
        }
    )+};
}
impl_ser_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Converts a serialized key value into a map key string.
fn key_string(v: Value) -> Result<String, SerError> {
    match v {
        Value::Str(s) => Ok(s),
        Value::I64(i) => Ok(i.to_string()),
        Value::U64(u) => Ok(u.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(SerError(format!("cannot use {} as a map key", other.kind()))),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut entries = Vec::with_capacity(self.len());
        for (k, v) in self {
            let key = to_value(k).and_then(key_string).map_err(S::Error::custom)?;
            entries.push((key, to_value(v).map_err(S::Error::custom)?));
        }
        serializer.serialize_value(Value::Map(entries))
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut entries = Vec::with_capacity(self.len());
        for (k, v) in self {
            let key = to_value(k).and_then(key_string).map_err(S::Error::custom)?;
            entries.push((key, to_value(v).map_err(S::Error::custom)?));
        }
        // Deterministic output regardless of hasher iteration order.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        serializer.serialize_value(Value::Map(entries))
    }
}
