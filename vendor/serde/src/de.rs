//! Deserialization traits and the built-in `Deserialize` impls.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;
use std::hash::{BuildHasher, Hash};

use crate::value::Value;

/// Errors produced while deserializing.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A source of one serialized value.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Yields the complete value tree.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type that can deserialize itself.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A type deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// The string-backed error used by [`ValueDeserializer`] and `from_value`.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl Error for DeError {
    fn custom<T: Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

/// A deserializer over an in-memory [`Value`] tree.
#[derive(Debug, Clone)]
pub struct ValueDeserializer(pub Value);

impl ValueDeserializer {
    /// Wraps a value.
    pub fn new(value: Value) -> Self {
        ValueDeserializer(value)
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = DeError;

    fn take_value(self) -> Result<Value, DeError> {
        Ok(self.0)
    }
}

/// Deserializes any `DeserializeOwned` type from a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, DeError> {
    T::deserialize(ValueDeserializer(value))
}

fn wrong_kind(expected: &str, got: &Value) -> DeError {
    DeError(format!("expected {expected}, found {}", got.kind()))
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let out = match &v {
                    Value::I64(i) => <$t>::try_from(*i).ok(),
                    Value::U64(u) => <$t>::try_from(*u).ok(),
                    // Tolerate exact floats (JSON writers may emit 3.0).
                    Value::F64(f) if f.fract() == 0.0
                        && *f >= <$t>::MIN as f64
                        && *f <= <$t>::MAX as f64 => Some(*f as $t),
                    _ => None,
                };
                out.ok_or_else(|| {
                    crate::de::Error::custom(wrong_kind(stringify!($t), &v))
                })
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_de_float {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                match v {
                    Value::F64(f) => Ok(f as $t),
                    Value::I64(i) => Ok(i as $t),
                    Value::U64(u) => Ok(u as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(crate::de::Error::custom(wrong_kind("number", &other))),
                }
            }
        }
    )*};
}
impl_de_float!(f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(crate::de::Error::custom(wrong_kind("bool", &other))),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(crate::de::Error::custom(wrong_kind("single-char string", &other))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(crate::de::Error::custom(wrong_kind("string", &other))),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(()),
            other => Err(crate::de::Error::custom(wrong_kind("null", &other))),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(None),
            v => from_value(v).map(Some).map_err(crate::de::Error::custom),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Seq(items) => {
                items.into_iter().map(|v| from_value(v).map_err(crate::de::Error::custom)).collect()
            }
            other => Err(crate::de::Error::custom(wrong_kind("sequence", &other))),
        }
    }
}

impl<'de, T: DeserializeOwned, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items: Vec<T> = Vec::deserialize(d)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| crate::de::Error::custom(format!("expected {N} elements, found {n}")))
    }
}

macro_rules! impl_de_tuple {
    ($(($len:literal; $($name:ident),+)),+ $(,)?) => {$(
        impl<'de, $($name: DeserializeOwned),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(d: __D) -> Result<Self, __D::Error> {
                let v = d.take_value()?;
                match v {
                    Value::Seq(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($(
                            from_value::<$name>(it.next().expect("length checked"))
                                .map_err(|e| crate::de::Error::custom(e))?,
                        )+))
                    }
                    other => Err(crate::de::Error::custom(format!(
                        "expected sequence of {}, found {}", $len, other.kind()
                    ))),
                }
            }
        }
    )+};
}
impl_de_tuple!(
    (1; A),
    (2; A, B),
    (3; A, B, C),
    (4; A, B, C, D),
    (5; A, B, C, D, E),
    (6; A, B, C, D, E, F),
);

/// Map keys reconstructible from their string form.
pub trait FromMapKey: Sized {
    /// Parses a key from the serialized string.
    fn from_map_key(key: &str) -> Result<Self, DeError>;
}

impl FromMapKey for String {
    fn from_map_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! impl_from_map_key_int {
    ($($t:ty),*) => {$(
        impl FromMapKey for $t {
            fn from_map_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| DeError(format!("bad integer map key {key:?}")))
            }
        }
    )*};
}
impl_from_map_key_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: FromMapKey + Ord,
    V: DeserializeOwned,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    Ok((
                        K::from_map_key(&k).map_err(crate::de::Error::custom)?,
                        from_value(v).map_err(crate::de::Error::custom)?,
                    ))
                })
                .collect(),
            other => Err(crate::de::Error::custom(wrong_kind("map", &other))),
        }
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: FromMapKey + Eq + Hash,
    V: DeserializeOwned,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    Ok((
                        K::from_map_key(&k).map_err(crate::de::Error::custom)?,
                        from_value(v).map_err(crate::de::Error::custom)?,
                    ))
                })
                .collect(),
            other => Err(crate::de::Error::custom(wrong_kind("map", &other))),
        }
    }
}
