//! Offline stand-in for `serde`.
//!
//! Instead of serde's 29-method visitor API, this shim routes all
//! (de)serialization through a self-describing [`Value`] tree: a
//! [`Serializer`] consumes a `Value`, a [`Deserializer`] produces one.
//! The public trait shape (`Serialize::serialize<S: Serializer>`,
//! `Deserialize::deserialize<D: Deserializer<'de>>`, associated
//! `Ok`/`Error` types, `ser::Error::custom` / `de::Error::custom`) matches
//! real serde closely enough that idiomatic bounds, manual impls, and
//! `#[serde(with = "module")]` helper modules compile unchanged.

pub mod de;
pub mod ser;
pub mod value;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};
pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Items the derive macro expansion needs at stable paths.
#[doc(hidden)]
pub mod __private {
    pub use crate::de::{from_value, DeError, ValueDeserializer};
    pub use crate::ser::{to_value, SerError, ValueSerializer};
    pub use crate::value::Value;
}
