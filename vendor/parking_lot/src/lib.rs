//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s API shape: `lock()`
//! returns a guard directly (poisoning is swallowed — a poisoned lock is
//! re-entered, matching `parking_lot`'s no-poisoning semantics), and
//! `Condvar::wait` takes `&mut MutexGuard`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutex that does not poison and whose `lock` returns the guard directly.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` is only ever `None`
/// transiently inside [`Condvar::wait`].
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside Condvar::wait")
    }
}

/// A condition variable usable with [`Mutex`].
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks the current thread until this condition variable is notified.
    /// (`T: Sized` here because `std`'s `Condvar::wait` requires it.)
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present on wait entry");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Wakes up one blocked thread on this condvar.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes up all blocked threads on this condvar.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// A reader-writer lock mirroring `parking_lot::RwLock`'s guard-returning API.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let woken = Arc::new(AtomicUsize::new(0));
        let (p2, w2) = (Arc::clone(&pair), Arc::clone(&woken));
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
            w2.fetch_add(1, Ordering::SeqCst);
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
        assert_eq!(woken.load(Ordering::SeqCst), 1);
    }
}
