//! Offline stand-in for `serde_json`: serializes the serde shim's value
//! tree to JSON text and parses JSON text back.
//!
//! Implements the three entry points the workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`] — with standard JSON escaping, a
//! recursive-descent parser, and shortest-roundtrip float formatting (via
//! Rust's `Display` for `f64`).

use std::fmt::{self, Display, Write as _};

use serde::de::{from_value, DeserializeOwned};
use serde::ser::to_value;
use serde::{Serialize, Value};

/// Error raised by JSON (de)serialization.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// A `Result` alias with this crate's [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let tree = to_value(value).map_err(|e| Error::new(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &tree, None, 0)?;
    Ok(out)
}

/// Serializes a value as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let tree = to_value(value).map_err(|e| Error::new(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &tree, Some(2), 0)?;
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: DeserializeOwned>(input: &str) -> Result<T> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let tree = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    from_value(tree).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Value::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::new("JSON cannot represent NaN or infinity"));
            }
            // Rust's Display prints the shortest string that round-trips;
            // force a fractional part so the value re-parses as a float.
            if f.fract() == 0.0 && f.abs() < 1e15 {
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1; // step past 'u'
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair: a `\uXXXX` low half must follow.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        // The caller has consumed the `u`; self.pos is at the first digit.
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::I64(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::U64(u))
        } else {
            // Integer overflow: fall back to float semantics.
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(to_string("hi\n\"x\"").unwrap(), r#""hi\n\"x\"""#);
        assert_eq!(from_str::<String>(r#""hi\n\"x\"""#).unwrap(), "hi\n\"x\"");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, -2i32, 0.5f64), (3, -4, 1.25)];
        let json = to_string(&v).unwrap();
        let back: Vec<(u32, i32, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("7").unwrap(), Some(7));
    }

    #[test]
    fn map_roundtrip() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2);
        let json = to_string(&m).unwrap();
        assert_eq!(json, r#"{"a":1,"b":2}"#);
        let back: std::collections::BTreeMap<String, u32> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u32, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn float_precision_roundtrips() {
        for &f in &[1e-12f64, 0.1, 123456.789, 1e300, -2.5e-7] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, f, "{json}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("4x").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
