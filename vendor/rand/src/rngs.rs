//! Small utility generators.

use crate::{RngCore, SeedableRng};

/// SplitMix64: the canonical 64-bit seed expander, also a decent
/// stand-alone generator for tests.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw state word.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SplitMix64::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        SplitMix64::new(state)
    }
}
