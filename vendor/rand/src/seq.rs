//! Sequence-related helpers: shuffling and random element selection.

use crate::Rng;

/// In-place random reordering of slices.
pub trait SliceRandom {
    /// Shuffles the slice uniformly (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            // Call through SampleRange directly: it accepts `R: ?Sized`.
            let j = crate::distr::SampleRange::sample_single(0..=i, rng);
            self.swap(i, j);
        }
    }
}

/// Random element selection from index-addressable collections.
pub trait IndexedRandom {
    /// Element type.
    type Output;

    /// Returns a uniformly chosen element, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
}

impl<T> IndexedRandom for [T] {
    type Output = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[crate::distr::SampleRange::sample_single(0..self.len(), rng)])
        }
    }
}
