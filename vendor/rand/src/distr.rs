//! Distributions and range sampling.

use std::ops::{Range, RangeInclusive};

use crate::{Rng, RngCore};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution per type: `[0, 1)` for floats, the
/// full value range for integers, a fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardUniform;

impl Distribution<f64> for StandardUniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for StandardUniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for StandardUniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for StandardUniform {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniformly samples a `u64` in `[0, span)` by widening multiplication
/// with rejection (Lemire's method), bias-free.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// A range that can be sampled from directly by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let off = uniform_u64_below(rng, span);
                ((self.start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64_below(rng, span + 1);
                ((start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / ((1u64 << 53) - 1) as $t);
                start + unit * (end - start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SplitMix64;

    #[test]
    fn lemire_covers_extremes() {
        let mut rng = SplitMix64::new(11);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..2000 {
            match uniform_u64_below(&mut rng, 4) {
                0 => hit_lo = true,
                3 => hit_hi = true,
                v => assert!(v < 4),
            }
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    fn inclusive_float_range_reaches_interior() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..1000 {
            let v: f64 = rng.random_range(2.0..=3.0);
            assert!((2.0..=3.0).contains(&v));
        }
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = SplitMix64::new(6);
        for _ in 0..1000 {
            let v: i32 = rng.random_range(-3..=3);
            assert!((-3..=3).contains(&v));
        }
    }
}
