//! Offline stand-in for the `rand` crate (0.9-era API surface).
//!
//! Implements the subset this workspace uses: the [`RngCore`] /
//! [`SeedableRng`] / [`Rng`] traits, uniform sampling from ranges via
//! [`Rng::random_range`], [`Rng::random`] through a `StandardUniform`
//! distribution, and the slice helpers in [`seq`].
//!
//! Sampling algorithms are straightforward (Lemire-style rejection for
//! integer ranges, 53-bit mantissa scaling for floats, Fisher–Yates for
//! shuffling); they are deterministic given the underlying generator and
//! statistically sound, though not bit-compatible with the real crate.

pub mod distr;
pub mod rngs;
pub mod seq;

pub use distr::{Distribution, StandardUniform};

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Seed type, typically a byte array.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = rngs::SplitMix64::new(state);
        let bytes = seed.as_mut();
        let mut i = 0;
        while i < bytes.len() {
            let v = sm.next_u64().to_le_bytes();
            let n = (bytes.len() - i).min(8);
            bytes[i..i + n].copy_from_slice(&v[..n]);
            i += n;
        }
        Self::from_seed(seed)
    }
}

/// User-facing random value generation, blanket-implemented for all
/// [`RngCore`] types.
pub trait Rng: RngCore {
    /// Samples a value whose type implements the standard distribution
    /// (`f64`/`f32` in `[0, 1)`, full-range integers, fair `bool`).
    fn random<T>(&mut self) -> T
    where
        StandardUniform: Distribution<T>,
    {
        StandardUniform.sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }

    /// Fills a slice with independently sampled values.
    fn fill<T>(&mut self, dest: &mut [T])
    where
        StandardUniform: Distribution<T>,
    {
        for slot in dest.iter_mut() {
            *slot = StandardUniform.sample(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SplitMix64;
    use crate::seq::{IndexedRandom, SliceRandom};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let a: u32 = rng.random_range(3..17);
            assert!((3..17).contains(&a));
            let b: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&b));
            let c: f64 = rng.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&c));
            let d: usize = rng.random_range(0..1);
            assert_eq!(d, 0);
        }
    }

    #[test]
    fn unit_floats() {
        let mut rng = SplitMix64::new(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SplitMix64::new(4);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = SplitMix64::seed_from_u64(99);
        let mut b = SplitMix64::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
