//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`Strategy`] trait (with `prop_map`), range and tuple strategies,
//! `prop::collection::vec`, `any::<bool>()`, [`ProptestConfig`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Cases are drawn from a seeded ChaCha generator, so failures are
//! reproducible run-to-run; there is **no shrinking** — a failing case
//! panics with its case number (and the assertion's own message).

use std::ops::{Range, RangeInclusive};

use rand::Rng;
pub use rand_chacha::ChaCha8Rng as TestRng;

pub mod collection;

/// Run-time configuration of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
    /// Seed for the case generator.
    pub rng_seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, rng_seed: 0x5eed }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9),
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// A strategy over every value of a simple type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_via_random {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random()
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_via_random!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

/// The canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategies over `bool` (`prop::bool::ANY`).
pub mod bool {
    /// A fair coin.
    pub const ANY: crate::Any<::core::primitive::bool> = crate::Any(::std::marker::PhantomData);
}

/// Namespace mirror of proptest's `prop::` module tree.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// The items `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Runs `cases` samples of a closure; used by the `proptest!` expansion.
pub fn run_cases<F: FnMut(u32, &mut TestRng)>(config: &ProptestConfig, mut body: F) {
    use rand::SeedableRng;
    let mut rng = TestRng::seed_from_u64(config.rng_seed);
    for case in 0..config.cases {
        body(case, &mut rng);
    }
}

/// Property-test declaration macro (no shrinking).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                $crate::run_cases(&__config, |__case, __rng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), __rng);)*
                    let __run = || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    if let ::std::result::Result::Err(msg) = __run() {
                        panic!("proptest case {} failed: {}", __case, msg);
                    }
                });
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let cfg = crate::ProptestConfig::with_cases(200);
        crate::run_cases(&cfg, |_, rng| {
            let v = (0u32..10).sample(rng);
            assert!(v < 10);
            let (a, b) = ((1i32..=3), (-2.0f64..2.0)).sample(rng);
            assert!((1..=3).contains(&a));
            assert!((-2.0..2.0).contains(&b));
            let xs = prop::collection::vec(0u8..5, 2..6).sample(rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 5));
            let doubled = (0u32..4).prop_map(|x| x * 2).sample(rng);
            assert!(doubled % 2 == 0 && doubled < 8);
            let _: bool = any::<bool>().sample(rng);
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_wires_strategies(x in 0u32..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            let y = if flip { x } else { x + 1 };
            prop_assert!(y == x || y == x + 1);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case 0 failed")]
    fn failing_property_panics_with_case() {
        let cfg = crate::ProptestConfig::with_cases(1);
        crate::run_cases(&cfg, |case, _| {
            let run = || -> Result<(), String> { Err("boom".into()) };
            if let Err(msg) = run() {
                panic!("proptest case {case} failed: {msg}");
            }
        });
    }
}
