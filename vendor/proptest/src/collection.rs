//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use rand::Rng;

use crate::{Strategy, TestRng};

/// Strategy producing `Vec`s with a length drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.random_range(self.len.clone());
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// A strategy for `Vec`s of `element` values with length in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(!len.is_empty(), "empty length range for collection::vec");
    VecStrategy { element, len }
}
