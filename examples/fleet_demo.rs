//! Cross-host fleet demo: a process supervisor driving `sorl-shardd`
//! shard *processes* over the TCP transport — the full lifecycle the
//! in-process `shard_demo` walks, but across real process boundaries:
//!
//! 1. train a model once, persist it, and spawn three `sorl-shardd`
//!    daemons on loopback that all serve it (the fleet rejects joins with
//!    a mismatched ranker fingerprint);
//! 2. route a workload over the fleet with a `ShardRouter` whose shards
//!    are `TcpShard` links — repeats are cache hits on their owner;
//! 3. grow to four processes: the router ships the newcomer exactly the
//!    warm cache slice it now owns, as checksummed snapshot chunks;
//! 4. kill one process without ceremony, persist its last snapshot, and
//!    restart it warm from the file: repeat queries are cache hits with
//!    **zero scoring passes** on the reborn shard.
//!
//! ```sh
//! cargo build --release -p sorl-shard --bin sorl-shardd
//! cargo run --release --example fleet_demo
//! ```

use std::io::BufRead;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use stencil_autotune::model::{GridSize, StencilInstance, StencilKernel};
use stencil_autotune::serve::CacheSnapshot;
use stencil_autotune::shard::{ShardRouter, TcpShard};
use stencil_autotune::sorl::pipeline::{PipelineConfig, TrainingPipeline};

/// A supervised `sorl-shardd` child process (killed on drop, so a panic
/// anywhere never leaves strays behind).
struct ShardProcess {
    child: Child,
    addr: SocketAddr,
}

impl ShardProcess {
    fn spawn(shardd: &PathBuf, ranker_path: &PathBuf, snapshot: Option<&PathBuf>) -> ShardProcess {
        let mut cmd = Command::new(shardd);
        cmd.args(["--addr", "127.0.0.1:0", "--ranker"]).arg(ranker_path);
        if let Some(path) = snapshot {
            cmd.arg("--snapshot").arg(path);
        }
        let mut child = cmd.stdout(Stdio::piped()).spawn().expect("spawn sorl-shardd");
        // The daemon's supervisor contract: one `LISTENING <addr>` line.
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout).read_line(&mut line).expect("read handshake");
        let addr = line
            .trim()
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected shardd handshake {line:?}"))
            .parse()
            .expect("handshake address parses");
        ShardProcess { child, addr }
    }

    fn link(&self) -> TcpShard {
        TcpShard::connect(self.addr).expect("connect to shardd")
    }

    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ShardProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The `sorl-shardd` binary is a sibling of this example's target dir
/// (`target/<profile>/examples/fleet_demo` → `target/<profile>/`).
fn shardd_path() -> PathBuf {
    let exe = std::env::current_exe().expect("current exe");
    let profile_dir = exe
        .parent()
        .and_then(std::path::Path::parent)
        .expect("examples live under the profile dir");
    let path = profile_dir.join(format!("sorl-shardd{}", std::env::consts::EXE_SUFFIX));
    assert!(
        path.exists(),
        "sorl-shardd not found at {} — build it first:\n  cargo build --release -p sorl-shard --bin sorl-shardd",
        path.display()
    );
    path
}

fn main() {
    let shardd = shardd_path();
    let dir = std::env::temp_dir().join("sorl-fleet-demo");
    std::fs::create_dir_all(&dir).unwrap();

    // Train once, persist, ship the same model file to every shard — the
    // fleet's ranker-fingerprint check turns "same model everywhere" from
    // a hope into an invariant.
    println!("training the ordinal-regression model (size 960)...");
    let outcome =
        TrainingPipeline::new(PipelineConfig { training_size: 960, ..Default::default() }).run();
    let ranker_path = dir.join("model.json");
    outcome.ranker.save_json(&ranker_path).expect("persist model");
    println!("model persisted (fingerprint {:#018x})\n", outcome.ranker.fingerprint());

    // A fleet of three shard PROCESSES behind one router.
    let mut processes = std::collections::HashMap::new();
    let mut router = ShardRouter::new();
    for id in ["alpha", "beta", "gamma"] {
        let process = ShardProcess::spawn(&shardd, &ranker_path, None);
        println!("spawned shard `{id}` (pid {}, {})", process.child.id(), process.addr);
        router.add_shard(id, process.link()).unwrap();
        processes.insert(id.to_string(), process);
    }
    println!("fleet up: shards {:?}\n", router.shard_ids());

    // A workload of 18 distinct instances, queried twice each.
    let queries: Vec<StencilInstance> = (0..18u32)
        .map(|i| {
            if i % 3 == 2 {
                StencilInstance::new(StencilKernel::blur(), GridSize::square(512 + 64 * i))
            } else {
                StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(64 + 8 * i))
            }
            .unwrap()
        })
        .collect();
    for _ in 0..2 {
        for q in &queries {
            router.tune(q.clone(), 3).unwrap();
        }
    }
    println!("after 2 rounds over {} distinct instances:", queries.len());
    print_stats(&router);

    // Growth: a fourth process joins; its warm slice crosses the wire as
    // checksummed snapshot chunks.
    let process = ShardProcess::spawn(&shardd, &ranker_path, None);
    let report = router.add_shard("delta", process.link()).unwrap();
    processes.insert("delta".to_string(), process);
    println!(
        "\nshard process `delta` joined: {} decisions shipped to it over TCP ({} rejected)",
        report.shipped, report.rejected
    );
    for q in &queries {
        router.tune(q.clone(), 3).unwrap();
    }
    println!("after another round (remapped keys stayed warm):");
    print_stats(&router);

    // Crash and warm restart, across a real process boundary: persist
    // beta's cache, SIGKILL the process, spawn a fresh one from the file.
    let snapshot_path = dir.join("beta.cache.json");
    let snapshot = router.snapshot_shard("beta").unwrap();
    snapshot.save_json(&snapshot_path).unwrap();
    println!(
        "\npersisted beta's cache: {} decisions -> {}",
        snapshot.len(),
        snapshot_path.display()
    );
    processes.remove("beta").expect("beta is supervised").kill();
    router.detach_shard("beta").unwrap();
    println!("beta's process killed; fleet serves on with {:?}", router.shard_ids());

    // The survivors keep answering beta's keys (cold) during the outage.
    for q in queries.iter().take(6) {
        router.tune(q.clone(), 3).unwrap();
    }

    let reborn = ShardProcess::spawn(&shardd, &ranker_path, Some(&snapshot_path));
    println!("beta restarted warm (pid {}, {})", reborn.child.id(), reborn.addr);
    router.add_shard("beta", reborn.link()).unwrap();
    processes.insert("beta".to_string(), reborn);

    // The proof: repeats of beta-owned queries are cache hits, zero
    // scoring passes in the reborn process.
    let topo = router.topology();
    let betas: Vec<&StencilInstance> =
        queries.iter().filter(|q| topo.owner_of(&q.key()) == Some("beta")).collect();
    for q in &betas {
        router.tune((*q).clone(), 3).unwrap();
    }
    let stats: Vec<_> = router.stats();
    let beta_stats = stats.iter().find(|(id, _)| id == "beta").unwrap().1.clone().unwrap();
    println!(
        "\nreborn beta answered {} repeat queries: {} cache hits, {} scoring passes",
        betas.len(),
        beta_stats.cache_hits,
        beta_stats.scored_instances
    );
    assert_eq!(beta_stats.cache_hits, betas.len() as u64);
    assert_eq!(beta_stats.scored_instances, 0, "zero scoring passes on the reborn shard");
    println!("-> a killed shard PROCESS came back warm: not one decision was recomputed");

    // A torn snapshot cannot poison a restart: truncate the file and show
    // the daemon boots cold (rejecting it) rather than half-restored.
    let bytes = std::fs::read(&snapshot_path).unwrap();
    std::fs::write(&snapshot_path, &bytes[..bytes.len() / 2]).unwrap();
    let cold = ShardProcess::spawn(&shardd, &ranker_path, Some(&snapshot_path));
    let cold_link = cold.link();
    let cold_stats = stencil_autotune::shard::ShardTransport::stats(&cold_link).unwrap();
    assert_eq!(cold_stats.cache_entries, 0, "torn snapshot rejected, shard boots cold");
    println!("\na deliberately torn snapshot file was rejected on boot (shard started cold)");
    cold.kill();

    // Cleanly verify the snapshot loader agrees from the supervisor side.
    assert!(CacheSnapshot::load_json(&snapshot_path).is_err(), "torn file rejected everywhere");
    std::fs::remove_file(&snapshot_path).ok();
    std::fs::remove_file(&ranker_path).ok();

    // The exit scoreboard: one fleet_stats() sweep renders every shard
    // plus merged totals (what `sorl-top` shows live).
    let fleet = router.fleet_stats();
    println!("\nfinal fleet scoreboard:");
    print!("{}", fleet.summary_table());
    println!(
        "({}/{} shards reachable, hit-rate skew {:.1}%)",
        fleet.reachable(),
        router.len(),
        fleet.hit_rate_skew() * 100.0
    );
}

fn print_stats(router: &ShardRouter) {
    print!("{}", router.fleet_stats().summary_table());
}
