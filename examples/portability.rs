//! Performance portability: the paper's motivation that tuned
//! configurations do not carry across architectures, while the autotuner
//! does — it is simply retrained per machine (Section V-B: "this eases the
//! porting of our model to any system supported by the ... compiler").
//!
//! Three simulated machines (a 12-core Xeon, a 60-core wide-SIMD
//! accelerator, an embedded quad-core) each get their own trained model;
//! we then cross-apply every model's chosen configuration to every machine
//! and report the slowdown of mismatched pairs.
//!
//! ```sh
//! cargo run --release --example portability
//! ```

use stencil_autotune::machine::{Machine, MachineSpec, NoiseModel};
use stencil_autotune::model::{GridSize, StencilInstance, StencilKernel, TuningVector};
use stencil_autotune::sorl::experiments::measure_config;
use stencil_autotune::sorl::pipeline::{PipelineConfig, TrainingPipeline};
use stencil_autotune::sorl::tuner::StandaloneTuner;

fn main() {
    let machines: Vec<(&str, Machine)> = vec![
        ("xeon", Machine::new(MachineSpec::xeon_e5_2680_v3(), NoiseModel::default())),
        ("phi", Machine::new(MachineSpec::phi_like(), NoiseModel::default())),
        ("quad", Machine::new(MachineSpec::embedded_quad(), NoiseModel::default())),
    ];
    let q = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(256)).unwrap();

    // Retrain the model per machine (the whole point: the pipeline is
    // automatic, so porting = re-running it against the new target).
    println!("training one model per machine (size 3840 each)...\n");
    let choices: Vec<(&str, TuningVector)> = machines
        .iter()
        .map(|(name, machine)| {
            let out =
                TrainingPipeline::new(PipelineConfig { training_size: 3840, ..Default::default() })
                    .with_machine(machine.clone())
                    .run();
            let tuner = StandaloneTuner::new(out.ranker);
            let t = tuner.tune(&q).tuning;
            println!("  model[{name}] picks {t} for {q}");
            (*name, t)
        })
        .collect();

    // Cross-application matrix: rows = configuration source, cols = target.
    println!("\nruntime (ms) of each model's configuration on each machine:");
    print!("{:>14}", "config \\ on");
    for (name, _) in &machines {
        print!("{name:>10}");
    }
    println!();
    let mut native: Vec<f64> = vec![f64::INFINITY; machines.len()];
    let mut cross_worst: Vec<f64> = vec![0.0; machines.len()];
    for (src, tuning) in &choices {
        print!("{src:>14}");
        for (m, (tgt, machine)) in machines.iter().enumerate() {
            let ms = measure_config(machine, &q, *tuning) * 1e3;
            print!("{ms:>10.2}");
            if src == tgt {
                native[m] = ms;
            } else {
                cross_worst[m] = cross_worst[m].max(ms);
            }
        }
        println!();
    }

    println!("\nworst cross-machine slowdown vs. the natively tuned configuration:");
    for (m, (name, _)) in machines.iter().enumerate() {
        println!("  on {name:>5}: {:.2}x", cross_worst[m] / native[m]);
    }
    println!("\nretraining recovers the native configuration automatically;");
    println!("no feature of the model depends on the hardware (Section III-A).");
}
