//! The paper's Table I worked example: how raw runtimes of different
//! stencil instances become *partial rankings*, why cross-instance
//! comparisons are never generated, and how a ranking function trained on
//! those pairs reproduces the per-instance orderings.
//!
//! ```sh
//! cargo run --release --example ranking_basics
//! ```

use stencil_autotune::ranking::{kendall_tau, RankSvmTrainer, RankingDataset, TrainConfig};

fn main() {
    // Table I: 2 kernels x 2 input sizes = 4 instances q1..q4, each
    // executed with 3 tuning settings. Features here are a toy encoding of
    // (kernel, size, tuning) — in the real system the FeatureEncoder
    // produces them from the stencil model.
    #[rustfmt::skip]
    let rows: [(&str, [f64; 3], f64, u32); 12] = [
        // instance, [toy features],          runtime(ms), group
        ("q1 te1", [0.1, 0.1, 0.9], 12.0, 1),
        ("q1 te2", [0.1, 0.1, 0.5], 13.0, 1),
        ("q1 te3", [0.1, 0.1, 0.1], 20.0, 1),
        ("q2 te4", [0.1, 0.9, 0.9], 10.0, 2),
        ("q2 te5", [0.1, 0.9, 0.1], 36.0, 2),
        ("q2 te6", [0.1, 0.9, 0.4], 35.0, 2),
        ("q3 te7", [0.9, 0.1, 0.8], 30.0, 3),
        ("q3 te8", [0.9, 0.1, 0.5], 45.0, 3),
        ("q3 te9", [0.9, 0.1, 0.2], 47.0, 3),
        ("q4 te10", [0.9, 0.9, 0.2], 25.0, 4),
        ("q4 te11", [0.9, 0.9, 0.5], 21.0, 4),
        ("q4 te12", [0.9, 0.9, 0.9], 12.0, 4),
    ];

    println!("Table I: stencil instance executions");
    println!("{:<9} {:>12} {:>6}", "exec", "runtime(ms)", "rank");
    let mut ds = RankingDataset::new(3);
    for (name, features, runtime, group) in &rows {
        ds.push(features, *runtime, *group);
        let _ = name;
    }
    let ranks = ds.ranks();
    for (i, (name, _, runtime, _)) in rows.iter().enumerate() {
        println!("{:<9} {:>12.0} {:>6}", name, runtime, ranks[i] + 1);
    }

    // The partial-ranking pairs (paper Section IV-B): only within-instance
    // inequalities exist; te4 (10 ms) and te1 (12 ms) are NOT compared.
    let pairs = ds.pairs(0.0);
    println!("\n{} preference pairs (transitive closure of the paper's 8):", pairs.len());
    for (better, worse) in &pairs {
        println!("  {} < {}", rows[*better as usize].0, rows[*worse as usize].0);
    }
    assert!(!pairs.contains(&(3, 0)), "cross-instance pairs must not exist");

    // Train the ranking function r (Eq. 3) on those pairs.
    let (model, report) = RankSvmTrainer::new(TrainConfig::default().with_c(10.0)).train(&ds);
    println!(
        "\ntrained r(q, t): {} pairs, pairwise accuracy {:.0}%",
        report.pairs,
        report.train_pair_accuracy * 100.0
    );

    // r reproduces every per-instance ordering (Kendall tau = 1).
    for g in ds.group_ids() {
        let idx = ds.group_indices(g);
        let scores: Vec<f64> = idx.iter().map(|&i| model.score(ds.row(i))).collect();
        let neg_rt: Vec<f64> = idx.iter().map(|&i| -ds.target(i)).collect();
        let tau = kendall_tau(&scores, &neg_rt);
        println!("  instance q{g}: Kendall tau = {tau:+.2}");
    }
}
