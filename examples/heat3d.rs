//! Heat-equation solver: a time-stepped 3-D diffusion simulation (the PDE
//! workload class the paper's introduction motivates), with the stencil
//! sweep autotuned by the ordinal-regression model and verified against the
//! naive reference interpreter.
//!
//! ```sh
//! cargo run --release --example heat3d
//! ```

use stencil_autotune::exec::reference::reference_sweep;
use stencil_autotune::exec::{Engine, Grid, WeightedKernel};
use stencil_autotune::model::{DType, GridSize, StencilInstance, TuningVector};
use stencil_autotune::sorl::pipeline::{PipelineConfig, TrainingPipeline};
use stencil_autotune::sorl::tuner::StandaloneTuner;

const N: usize = 64;
const STEPS: usize = 20;
const ALPHA: f64 = 0.1; // diffusion coefficient * dt / dx^2

fn heat_kernel() -> WeightedKernel {
    // u' = u + alpha * (6-neighbour laplacian)
    WeightedKernel::new(
        "heat3d",
        vec![
            (0, 0, 0, 0, 1.0 - 6.0 * ALPHA),
            (1, 0, 0, 0, ALPHA),
            (-1, 0, 0, 0, ALPHA),
            (0, 1, 0, 0, ALPHA),
            (0, -1, 0, 0, ALPHA),
            (0, 0, 1, 0, ALPHA),
            (0, 0, -1, 0, ALPHA),
        ],
        1,
        DType::F64,
    )
    .expect("valid heat kernel")
}

fn hot_spot(x: i64, y: i64, z: i64) -> f64 {
    let c = (N / 2) as i64;
    let d2 = (x - c).pow(2) + (y - c).pow(2) + (z - c).pow(2);
    if d2 < 25 {
        100.0
    } else {
        0.0
    }
}

fn main() {
    let kernel = heat_kernel();
    let size = GridSize::cube(N as u32);
    let instance = StencilInstance::new(kernel.model().clone(), size).unwrap();

    // Autotune the sweep. The model has never seen this kernel; it ranks
    // the 8640 predefined configurations from its training on the corpus.
    println!("training the autotuner...");
    let outcome =
        TrainingPipeline::new(PipelineConfig { training_size: 1920, ..Default::default() }).run();
    let tuner = StandaloneTuner::new(outcome.ranker);
    let decision = tuner.tune(&instance);
    println!("autotuned {instance}: {}\n", decision.tuning);

    // Time-step the PDE with the real engine, ping-ponging two grids.
    let radius = (1, 1, 1);
    let mut u: Grid<f64> = Grid::for_size(size, radius);
    u.fill_with(hot_spot);
    let initial_heat: f64 = (0..N)
        .flat_map(|z| (0..N).flat_map(move |y| (0..N).map(move |x| (x, y, z))))
        .map(|(x, y, z)| u.get(x, y, z))
        .sum();
    let mut next: Grid<f64> = Grid::for_size(size, radius);

    let mut engine = Engine::with_default_threads();
    let t0 = std::time::Instant::now();
    for _ in 0..STEPS {
        engine.sweep(&kernel, &[&u], &mut next, &decision.tuning);
        std::mem::swap(&mut u, &mut next);
    }
    let tuned_time = t0.elapsed().as_secs_f64();

    // Verify the tuned run against the reference interpreter.
    let mut v: Grid<f64> = Grid::for_size(size, radius);
    v.fill_with(hot_spot);
    let mut vnext: Grid<f64> = Grid::for_size(size, radius);
    for _ in 0..STEPS {
        reference_sweep(&kernel, &[&v], &mut vnext);
        std::mem::swap(&mut v, &mut vnext);
    }
    let diff = u.max_abs_diff(&v);
    println!("verification vs. reference after {STEPS} steps: max |diff| = {diff:e}");
    assert_eq!(diff, 0.0, "tuned schedule must be bit-identical to the reference");

    // Compare against untuned code: a plain triple loop (one whole-domain
    // tile, so no parallel chunks either).
    let mut w: Grid<f64> = Grid::for_size(size, radius);
    w.fill_with(hot_spot);
    let mut wnext: Grid<f64> = Grid::for_size(size, radius);
    let baseline = TuningVector::new(1024, 1024, 1024, 0, 1);
    let t1 = std::time::Instant::now();
    for _ in 0..STEPS {
        engine.sweep(&kernel, &[&w], &mut wnext, &baseline);
        std::mem::swap(&mut w, &mut wnext);
    }
    let naive_time = t1.elapsed().as_secs_f64();

    // Energy conservation sanity: total heat is preserved by the scheme
    // away from the boundary (the halo is cold and the hot spot central).
    let total: f64 = (0..N)
        .flat_map(|z| (0..N).flat_map(move |y| (0..N).map(move |x| (x, y, z))))
        .map(|(x, y, z)| u.get(x, y, z))
        .sum();
    println!("total heat after {STEPS} steps: {total:.1} (initial {initial_heat:.1})");
    assert!((total - initial_heat).abs() / initial_heat < 1e-9, "heat must be conserved");

    println!("\n{STEPS} steps of {N}^3 heat diffusion on {} threads:", engine.threads());
    println!("  tuned   {}: {:7.2} ms", decision.tuning, tuned_time * 1e3);
    println!("  untuned {baseline}: {:7.2} ms", naive_time * 1e3);
    println!("  speedup: {:.2}x", naive_time / tuned_time);
}
