//! Overload soak: saturate a 2-shard TCP fleet well past capacity and
//! verify the admission-control contract end to end — the CI
//! `overload-soak` gate runs this for 30 seconds.
//!
//! The setup is a fleet built for trouble: two loopback `sorl-shard`
//! servers, each fronting a single-threaded `TuneService` with a small
//! bounded queue, driven by many unpaced client threads through one
//! `ShardRouter` — an offered load far beyond what the workers can drain.
//!
//! What must hold under that abuse (the process exits non-zero otherwise):
//!
//! 1. **Sheds are fast rejections, not timeouts** — every failed call is
//!    `Overloaded` (shed at the queue or the link), never a transport
//!    error or a stall; the p99 shed turnaround stays under 1ms of
//!    queueing on top of the raw wire round-trip.
//! 2. **No request is lost or double-answered** — every admitted request
//!    resolves exactly once with exactly the `k` entries it asked for,
//!    and the fleet's `requests` counters agree with the client-side
//!    answer count to the request.
//! 3. **The ledger balances** — client-observed sheds equal the services'
//!    shed counters plus the link-level rejections, and every queue is
//!    empty when the storm stops.
//! 4. **The metrics endpoint tells the same story** — each shard serves a
//!    Prometheus page that parses mid-storm (shed, queue-depth, SLO
//!    burn-rate and exemplar families present while the fleet is
//!    saturated), and the post-storm scrape agrees with the wire-level
//!    ledger counter for counter.
//! 5. **The flight recorder is reachable under fire** — a `TraceDump`
//!    request answered mid-storm parses and carries at least one
//!    slow-request exemplar over the configured threshold, so the
//!    evidence trail exists exactly when it is needed.
//!
//! ```sh
//! cargo run --release --example overload_demo          # ~3s soak
//! SORL_SOAK_SECS=30 cargo run --release --example overload_demo
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use stencil_autotune::model::{GridSize, StencilInstance, StencilKernel};
use stencil_autotune::serve::TuneService;
use stencil_autotune::serve::{ServeConfig, ServeError, ShedReason};
use stencil_autotune::shard::{
    synthetic_ranker, ShardError, ShardRouter, ShardServer, ShardServerConfig, ShardTransport,
    TcpShard,
};

/// Unpaced client threads. The floor matters: with two 4-deep queues, 16
/// synchronous callers guarantee more concurrent demand than the fleet
/// can even *queue*, so shedding is structural, not a scheduling accident.
fn client_threads() -> usize {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    (cores * 4).clamp(16, 32)
}

/// Distinct 3-D instances cycling a 64-wide set: with caches disabled every
/// request costs a real scoring pass, so the workers saturate honestly.
fn inst(i: u64) -> StencilInstance {
    StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(48 + (i % 64) as u32 * 4))
        .unwrap()
}

/// What one client thread observed during the soak.
#[derive(Default)]
struct Tally {
    answered: u64,
    shed: u64,
    /// Turnaround of each shed call, µs (sheds must be fast).
    shed_turnaround_us: Vec<u64>,
}

/// One blocking scrape of a metrics endpoint (the exact bytes `curl`
/// would see), returning the exposition body.
fn scrape(addr: std::net::SocketAddr) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("metrics endpoint reachable");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream.write_all(b"GET /metrics HTTP/1.0\r\nConnection: close\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("metrics endpoint answers");
    let (head, body) = response.split_once("\r\n\r\n").expect("an HTTP response has a body");
    assert!(head.starts_with("HTTP/1.0 200"), "metrics scrape failed: {head}");
    body.to_string()
}

/// Sums every sample of one metric family in an exposition body (labeled
/// samples like `sorl_serve_shed_total{reason="queue"} 3` included),
/// asserting each value parses.
fn family_sum(body: &str, family: &str) -> u64 {
    let mut sum = 0u64;
    let mut seen = false;
    for line in body.lines() {
        if !line.starts_with(family) || line.starts_with('#') {
            continue;
        }
        let rest = &line[family.len()..];
        // Exact family match: `sorl_serve_shed_total` must not also
        // swallow a hypothetical `sorl_serve_shed_total_foo`.
        if !(rest.starts_with(' ') || rest.starts_with('{')) {
            continue;
        }
        let value = line.rsplit(' ').next().unwrap_or_default();
        let value: f64 = value.parse().unwrap_or_else(|e| {
            panic!("unparseable sample for {family}: {line:?} ({e})");
        });
        sum += value as u64;
        seen = true;
    }
    assert!(seen, "metric family {family} missing from the scrape");
    sum
}

fn main() {
    let soak_secs: u64 =
        std::env::var("SORL_SOAK_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(3);
    let client_threads = client_threads();
    println!("overload soak: 2 TCP shards, {client_threads} unpaced clients, {soak_secs}s");

    // Single-threaded workers behind 4-deep queues: while a worker scores
    // one micro-batch (tens of ms), the unpaced callers pile onto its
    // queue, which admits 4 and fast-rejects the rest — saturation by
    // construction. The link in-flight cap stays above the client
    // concurrency so the *service* queue is what sheds (the balance check
    // below still counts both).
    let ranker = synthetic_ranker(0x0badc0de);
    let config = ServeConfig {
        threads: 1,
        max_batch: 8,
        gather_window: Duration::ZERO,
        adaptive_gather: false,
        cache_capacity: 0,
        max_queue: 4,
        // Under saturation nearly every served request clears 1ms, so the
        // exemplar store demonstrably fills; the bound keeps it cheap.
        exemplar_capacity: 8,
        exemplar_threshold: Duration::from_millis(1),
        ..Default::default()
    };
    let server_config = ShardServerConfig { max_in_flight: 1024 };
    let mut servers = Vec::new();
    let mut metrics = Vec::new();
    let mut router = ShardRouter::new();
    for id in ["alpha", "beta"] {
        let service = TuneService::spawn(ranker.clone(), config);
        let server =
            ShardServer::spawn_with(service, "127.0.0.1:0", server_config).expect("bind loopback");
        let shard = TcpShard::connect(server.local_addr()).expect("connect loopback");
        router.add_shard(id, shard).expect("join fleet");
        metrics.push(server.serve_metrics("127.0.0.1:0").expect("bind metrics endpoint"));
        servers.push(server);
    }
    let router = Arc::new(router);

    let stop = Arc::new(AtomicBool::new(false));
    let sequence = Arc::new(AtomicU64::new(0));
    let tallies: Vec<Mutex<Tally>> = (0..client_threads).map(|_| Mutex::default()).collect();
    let tallies = Arc::new(tallies);

    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..client_threads {
            let router = Arc::clone(&router);
            let stop = Arc::clone(&stop);
            let sequence = Arc::clone(&sequence);
            let tallies = Arc::clone(&tallies);
            scope.spawn(move || {
                let mut tally = Tally::default();
                while !stop.load(Ordering::Relaxed) {
                    let i = sequence.fetch_add(1, Ordering::Relaxed);
                    let k = (i % 4 + 1) as usize;
                    let call_started = Instant::now();
                    match router.tune(inst(i), k) {
                        Ok(top) => {
                            // Exactly once, exactly what was asked for: a
                            // crossed wire would hand this caller an
                            // answer with somebody else's k.
                            assert_eq!(
                                top.entries.len(),
                                k,
                                "request {i} answered with the wrong arity"
                            );
                            tally.answered += 1;
                        }
                        Err(ShardError::Transport {
                            source: ServeError::Overloaded(reason),
                            ..
                        }) => {
                            // The contract: overload is shed, not timed out.
                            assert!(
                                matches!(
                                    reason,
                                    ShedReason::QueueFull
                                        | ShedReason::BatchLatency
                                        | ShedReason::LinkInFlight
                                ),
                                "unknown shed reason {reason}"
                            );
                            tally.shed += 1;
                            tally
                                .shed_turnaround_us
                                .push(call_started.elapsed().as_micros() as u64);
                        }
                        Err(other) => panic!("request {i}: non-shed failure under load: {other}"),
                    }
                }
                *tallies[t].lock().unwrap() = tally;
            });
        }
        // Mid-storm scrape: the admission-control counters must be
        // present and parseable WHILE the fleet is saturated — an
        // endpoint that only answers an idle fleet is no endpoint.
        let half = Duration::from_millis(soak_secs * 1000 / 2);
        std::thread::sleep(half);
        for endpoint in &metrics {
            let body = scrape(endpoint.local_addr());
            family_sum(&body, "sorl_serve_shed_total");
            family_sum(&body, "sorl_serve_queue_depth");
            family_sum(&body, "sorl_serve_requests_total");
            // The burn-rate and exemplar families must render while the
            // budget is actually burning, not just on an idle fleet.
            family_sum(&body, "sorl_slo_fast_burn_rate");
            family_sum(&body, "sorl_slo_error_budget_remaining");
            family_sum(&body, "sorl_exemplar_captured_total");
            family_sum(&body, "sorl_exemplar_resident");
        }
        println!("  mid-soak metrics scrape: shed/queue/SLO/exemplar families present");
        // Mid-storm trace dump: the flight recorder and exemplar store
        // answer over the wire while the fleet is saturated, and the
        // evidence is real — at least one exemplar over the threshold,
        // carrying the span chain of a request that actually blew it.
        let probe = TcpShard::connect(servers[0].local_addr()).expect("probe link dials");
        let reply = probe.trace_dump(None).expect("trace dump answers mid-storm");
        assert!(!reply.dump.events.is_empty(), "a storming shard's flight recorder is never empty");
        assert!(
            !reply.exemplars.is_empty(),
            "a saturated shard holds at least one slow-request exemplar"
        );
        let slowest = &reply.exemplars[0];
        assert!(
            slowest.latency_us >= 1_000,
            "exemplars are genuinely over the 1ms threshold: {} µs",
            slowest.latency_us
        );
        println!(
            "  mid-soak trace dump: {} recorder events, {} exemplars, slowest {:.1} ms",
            reply.dump.events.len(),
            reply.exemplars.len(),
            slowest.latency_us as f64 / 1e3
        );
        std::thread::sleep(half);
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut answered = 0u64;
    let mut shed = 0u64;
    let mut turnarounds: Vec<u64> = Vec::new();
    for tally in tallies.iter() {
        let tally = tally.lock().unwrap();
        answered += tally.answered;
        shed += tally.shed;
        turnarounds.extend_from_slice(&tally.shed_turnaround_us);
    }
    let attempted = answered + shed;
    println!(
        "  {attempted} calls in {elapsed:.1}s: {answered} answered ({:.0}/s goodput), \
         {shed} shed ({:.0}/s)",
        answered as f64 / elapsed,
        shed as f64 / elapsed
    );

    // Saturation sanity: the offered load must actually have been at least
    // 2x what the fleet served — otherwise this soak proves nothing.
    assert!(
        attempted >= answered * 2,
        "fleet was not saturated: {attempted} offered vs {answered} served"
    );
    assert!(shed > 0, "a saturated fleet must shed");
    assert!(answered > 0, "a shedding fleet must still serve (goodput > 0)");

    // Shed latency: rejections are a fast path, never a timeout. The
    // median end-to-end shed turnaround (full TCP round trip included)
    // must stay under 1ms while the fleet is hammered; the tail is capped
    // too, but loosely — on an oversubscribed host the p99 measures the
    // OS scheduler (client threads waiting for a core while a worker
    // scores a 20ms batch), not the reject path, whose sub-µs cost the
    // `serve_overload` bench pins directly.
    turnarounds.sort_unstable();
    let p99 = turnarounds[(turnarounds.len() - 1) * 99 / 100];
    let median = turnarounds[turnarounds.len() / 2];
    println!("  shed turnaround: median {median} µs, p99 {p99} µs");
    assert!(median < 1_000, "median shed turnaround must stay under 1ms: {median} µs");
    assert!(
        p99 < 50_000,
        "shed tail looks like timeouts, not rejections: p99 {p99} µs (median {median} µs)"
    );

    // The ledger: what the clients saw must match what the services
    // counted, exactly. `requests` counts admitted-and-served requests, so
    // it equals the answered calls; service-side sheds are the queue/
    // latency counters; anything left over was rejected at the link cap.
    let fleet = router.fleet_stats();
    print!("{}", fleet.summary_table());
    for (id, stats) in &fleet.per_shard {
        let stats = stats.as_ref().expect("stats reachable after the storm");
        assert_eq!(stats.queue_depth, 0, "{id}: queue drains once the storm stops");
    }
    let served = fleet.merged.requests;
    let service_sheds = fleet.merged.sheds();
    assert_eq!(served, answered, "every answered call is counted exactly once");
    assert!(
        service_sheds <= shed,
        "services counted more sheds than clients observed: {service_sheds} vs {shed}"
    );
    let link_sheds = shed - service_sheds;
    println!(
        "  balance: {answered} answered == fleet requests; {shed} sheds = \
         {service_sheds} service + {link_sheds} link"
    );

    // The post-storm scrape must agree with the wire-level ledger counter
    // for counter: the Prometheus page and `stats()` are two views of the
    // same atomics.
    let mut scraped_requests = 0u64;
    let mut scraped_sheds = 0u64;
    let mut scraped_queue = 0u64;
    let mut scraped_exemplars = 0u64;
    let mut scraped_slo_bad = 0u64;
    for endpoint in &metrics {
        let body = scrape(endpoint.local_addr());
        scraped_requests += family_sum(&body, "sorl_serve_requests_total");
        scraped_sheds += family_sum(&body, "sorl_serve_shed_total");
        scraped_queue += family_sum(&body, "sorl_serve_queue_depth");
        scraped_exemplars += family_sum(&body, "sorl_exemplar_captured_total");
        scraped_slo_bad += family_sum(&body, "sorl_slo_bad_total");
        family_sum(&body, "sorl_slo_slow_burn_rate");
    }
    assert_eq!(scraped_requests, served, "scraped requests agree with the ledger");
    assert_eq!(scraped_sheds, service_sheds, "scraped sheds agree with the ledger");
    assert_eq!(scraped_queue, 0, "scraped queue depth agrees with the drained fleet");
    assert!(scraped_exemplars >= 1, "the storm left at least one captured exemplar");
    assert!(
        scraped_slo_bad >= service_sheds,
        "every service shed burned SLO budget: {scraped_slo_bad} bad vs {service_sheds} sheds"
    );
    println!(
        "  metrics endpoint agrees: {scraped_requests} requests, {scraped_sheds} sheds, \
         queue depth 0, {scraped_exemplars} exemplars, {scraped_slo_bad} SLO-bad"
    );

    drop(metrics);
    drop(router);
    drop(servers);
    println!("overload soak passed");
}
