//! Hybrid tuning (the paper's future-work direction, Section VII): use the
//! ranking model to seed an iterative search instead of replacing it.
//!
//! The experiment compares, on gradient 256^3, how many evaluations a
//! plain generational GA needs to reach a quality target versus a GA whose
//! initial population contains the model's top-ranked configurations.
//!
//! ```sh
//! cargo run --release --example hybrid_search
//! ```

use stencil_autotune::machine::Machine;
use stencil_autotune::model::{GridSize, StencilInstance, StencilKernel};
use stencil_autotune::search::SearchAlgorithm;
use stencil_autotune::sorl::experiments::best_in_predefined;
use stencil_autotune::sorl::hybrid::HybridTuner;
use stencil_autotune::sorl::objective::MachineObjective;
use stencil_autotune::sorl::pipeline::{PipelineConfig, TrainingPipeline};

const BUDGET: usize = 512;
const RUNS: u64 = 8;

fn main() {
    let machine = Machine::xeon_e5_2680_v3();
    let instance = StencilInstance::new(StencilKernel::gradient(), GridSize::cube(256)).unwrap();

    println!("training the ranking model...");
    let outcome =
        TrainingPipeline::new(PipelineConfig { training_size: 3840, ..Default::default() }).run();
    let hybrid = HybridTuner::new(outcome.ranker);

    // Quality target: within 10% of the best configuration in the
    // predefined set (a strong, search-independent reference).
    let (_, oracle) = best_in_predefined(&machine, &instance);
    let target = oracle * 1.10;
    println!("target: {:.3} ms (oracle {:.3} ms + 10%)\n", target * 1e3, oracle * 1e3);

    let mut plain_evals = Vec::new();
    let mut seeded_evals = Vec::new();
    for seed in 0..RUNS {
        // Plain GA.
        let mut obj = MachineObjective::new(&machine, instance.clone());
        let space = obj.search_space();
        let plain = hybrid.ga.run(&space, &mut obj, BUDGET, seed);
        plain_evals.push(evals_to_target(&plain.trace, target));

        // Ranker-seeded GA.
        let seeded = hybrid.search(&machine, &instance, BUDGET, seed);
        seeded_evals.push(evals_to_target(&seeded.trace, target));
    }

    println!("evaluations to reach the target ({} runs, budget {BUDGET}):", RUNS);
    println!("  plain GA : {}", render(&plain_evals));
    println!("  seeded GA: {}", render(&seeded_evals));
    let avg = |v: &[Option<usize>]| -> f64 {
        v.iter().map(|e| e.unwrap_or(BUDGET) as f64).sum::<f64>() / v.len() as f64
    };
    let (p, s) = (avg(&plain_evals), avg(&seeded_evals));
    println!("  mean (miss counts as {BUDGET}): plain {p:.0} vs seeded {s:.0}");
    if s < p {
        println!("  -> model seeding saved {:.0}% of the evaluations", 100.0 * (1.0 - s / p));
    }
}

fn evals_to_target(trace: &stencil_autotune::search::EvalTrace, target: f64) -> Option<usize> {
    trace.best_so_far().iter().position(|&b| b <= target).map(|i| i + 1)
}

fn render(evals: &[Option<usize>]) -> String {
    evals
        .iter()
        .map(|e| e.map(|n| n.to_string()).unwrap_or_else(|| "miss".into()))
        .collect::<Vec<_>>()
        .join(", ")
}
