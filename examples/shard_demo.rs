//! Sharded-fleet demo: route tuning traffic over three shards, kill one,
//! and bring it back *warm* from a persisted cache snapshot.
//!
//! Trains a model once, spawns a `ShardRouter` over three in-process
//! shards (each a `TuneService` with its own decision cache), and drives
//! a skewed workload through it. Then the fleet-operations tour:
//!
//! 1. every query routes deterministically to its owner (rendezvous
//!    hashing of the canonical `InstanceKey` fingerprint), so repeats are
//!    cache hits on *their* shard;
//! 2. a fourth shard joins — the router ships it exactly the cache slice
//!    it now owns, so remapped keys stay warm;
//! 3. one shard is killed without ceremony, and restarted from its last
//!    snapshot: the first repeat query after the restart is a cache hit,
//!    not a scoring pass.
//!
//! ```sh
//! cargo run --release --example shard_demo
//! ```

use stencil_autotune::model::{GridSize, StencilInstance, StencilKernel};
use stencil_autotune::serve::{CacheSnapshot, ServeConfig};
use stencil_autotune::shard::{LocalShard, ShardRouter};
use stencil_autotune::sorl::pipeline::{PipelineConfig, TrainingPipeline};

fn main() {
    // One-off training phase (small size: this demo is about the fleet).
    println!("training the ordinal-regression model (size 960)...");
    let outcome =
        TrainingPipeline::new(PipelineConfig { training_size: 960, ..Default::default() }).run();
    let ranker = outcome.ranker;
    let config = ServeConfig::default();

    // A fleet of three shards behind one router.
    let mut router = ShardRouter::new();
    for id in ["alpha", "beta", "gamma"] {
        router.add_shard(id, LocalShard::spawn(ranker.clone(), config)).unwrap();
    }
    println!("fleet up: shards {:?}\n", router.shard_ids());

    // A workload of 18 distinct instances, queried twice each.
    let queries: Vec<StencilInstance> = (0..18u32)
        .map(|i| {
            if i % 3 == 2 {
                StencilInstance::new(StencilKernel::blur(), GridSize::square(512 + 64 * i))
            } else {
                StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(64 + 8 * i))
            }
            .unwrap()
        })
        .collect();
    for round in 0..2 {
        for q in &queries {
            let top = router.tune(q.clone(), 3).unwrap();
            if round == 0 && top.entries.is_empty() {
                unreachable!("every query has candidates");
            }
        }
    }
    println!("after 2 rounds over {} distinct instances:", queries.len());
    print_stats(&router);

    // Growth: a fourth shard joins and receives its warm slice.
    let report = router.add_shard("delta", LocalShard::spawn(ranker.clone(), config)).unwrap();
    println!(
        "\nshard `delta` joined: {} decisions shipped to it ({} rejected)",
        report.shipped, report.rejected
    );
    for q in &queries {
        router.tune(q.clone(), 3).unwrap();
    }
    println!("after another round (remapped keys stayed warm):");
    print_stats(&router);

    // Crash and warm restart: persist beta's cache, kill it, revive it.
    let path = std::env::temp_dir().join("sorl-shard-demo.beta.cache.json");
    let snapshot = router.snapshot_shard("beta").unwrap();
    snapshot.save_json(&path).unwrap();
    println!(
        "\npersisted beta's cache: {} decisions (ranker {:#018x}) -> {}",
        snapshot.len(),
        snapshot.ranker_fingerprint,
        path.display()
    );
    router.detach_shard("beta").unwrap(); // the process is "gone"
    println!("beta killed; fleet serves on with {:?}", router.shard_ids());

    let loaded = CacheSnapshot::load_json(&path).unwrap();
    let (reborn, restored) = LocalShard::spawn_warm(ranker, config, loaded).unwrap();
    router.add_shard("beta", reborn).unwrap();
    println!("beta restarted warm: {restored} decisions restored");

    // The proof: repeats of beta-owned queries are cache hits, zero
    // scoring passes on the reborn shard.
    let topo = router.topology();
    let betas: Vec<&StencilInstance> =
        queries.iter().filter(|q| topo.owner_of(&q.key()) == Some("beta")).collect();
    for q in &betas {
        router.tune((*q).clone(), 3).unwrap();
    }
    let stats: Vec<_> = router.stats();
    let beta_stats = stats.iter().find(|(id, _)| id == "beta").unwrap().1.clone().unwrap();
    println!(
        "\nreborn beta answered {} repeat queries: {} cache hits, {} scoring passes",
        betas.len(),
        beta_stats.cache_hits,
        beta_stats.scored_instances
    );
    assert_eq!(beta_stats.cache_hits, betas.len() as u64);
    assert_eq!(beta_stats.scored_instances, 0);
    println!("-> a killed shard came back warm: not one decision was recomputed");
    std::fs::remove_file(&path).ok();
}

fn print_stats(router: &ShardRouter) {
    for (id, stats) in router.stats() {
        match stats {
            Ok(s) => println!("  {id}: {s}"),
            Err(e) => println!("  {id}: unreachable ({e})"),
        }
    }
}
