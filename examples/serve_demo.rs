//! Serving demo: a multi-tenant tuning service under concurrent clients.
//!
//! Trains a model once, spawns a `TuneService`, then drives it from four
//! client threads issuing a skewed workload (a few hot instances queried
//! again and again, plus a tail of unique ones — the shape of real tuning
//! traffic). Requests coalesce into micro-batches, duplicates are
//! deduplicated per batch, and repeats are answered from the decision
//! cache without any scoring at all.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```

use std::time::Instant;

use stencil_autotune::model::{GridSize, StencilInstance, StencilKernel};
use stencil_autotune::serve::{ServeConfig, TuneService};
use stencil_autotune::sorl::pipeline::{PipelineConfig, TrainingPipeline};

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 32;

fn main() {
    // One-off training phase (small size: this demo is about serving).
    println!("training the ordinal-regression model (size 960)...");
    let outcome =
        TrainingPipeline::new(PipelineConfig { training_size: 960, ..Default::default() }).run();

    // The service: one worker owning the session, the scoring pool and the
    // decision cache; every client gets a cheap cloneable handle.
    let service = TuneService::spawn(outcome.ranker, ServeConfig::default());
    println!(
        "service up: {CLIENTS} clients x {REQUESTS_PER_CLIENT} requests, top-3 answers each\n"
    );

    let t0 = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let client = service.client();
            std::thread::spawn(move || {
                let mut checksum = 0.0f64;
                for r in 0..REQUESTS_PER_CLIENT {
                    // Zipf-ish skew: half the traffic hits two hot sizes,
                    // the rest spreads over a tail of per-client sizes.
                    let q = match r % 4 {
                        0 => StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(128)),
                        1 => StencilInstance::new(StencilKernel::blur(), GridSize::square(1024)),
                        2 => StencilInstance::new(
                            StencilKernel::laplacian(),
                            GridSize::cube(64 + 16 * ((c + r) % 6) as u32),
                        ),
                        _ => StencilInstance::new(
                            StencilKernel::blur(),
                            GridSize::square(512 + 128 * ((c * 7 + r) % 5) as u32),
                        ),
                    }
                    .expect("valid instance");
                    let top = client.tune(q, 3).expect("service alive");
                    checksum += top.entries.first().map_or(0.0, |&(_, s)| s);
                }
                checksum
            })
        })
        .collect();

    let checksums: Vec<f64> = clients.into_iter().map(|h| h.join().unwrap()).collect();
    let wall = t0.elapsed().as_secs_f64();

    let total = CLIENTS * REQUESTS_PER_CLIENT;
    let stats = service.stats();
    println!("served {total} requests in {:.1} ms ({:.0} req/s)", wall * 1e3, total as f64 / wall);
    println!("  {stats}");
    println!(
        "  scoring passes avoided: {} of {} requests ({:.0}% via cache + batch dedup)",
        total as u64 - stats.scored_instances,
        total,
        (total as u64 - stats.scored_instances) as f64 / total as f64 * 100.0
    );
    println!("  per-client score checksums: {checksums:.3?}");

    // A peek at one answer: the 3 best configurations with their scores.
    let q = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(128)).unwrap();
    let top = service.client().tune(q.clone(), 3).expect("service alive");
    println!("\ntop-3 for {q} ({} candidates ranked):", top.candidates);
    for (rank, (t, score)) in top.entries.iter().enumerate() {
        println!("  #{} {t}  (score {score:+.4})", rank + 1);
    }
}
