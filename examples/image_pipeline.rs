//! Image-processing pipeline: blur then edge detection on a 2-D image
//! (the Halide-style workload the paper cites), each stage autotuned
//! independently — different shapes get different configurations.
//!
//! ```sh
//! cargo run --release --example image_pipeline
//! ```

use stencil_autotune::exec::{Blur, Edge, Engine, Grid, StencilFn};
use stencil_autotune::model::{GridSize, StencilInstance};
use stencil_autotune::sorl::pipeline::{PipelineConfig, TrainingPipeline};
use stencil_autotune::sorl::tuner::StandaloneTuner;

const W: usize = 1024;
const H: usize = 768;

/// A deterministic synthetic photograph: soft gradients plus hard edges.
fn synthetic_image(x: i64, y: i64) -> f32 {
    let fx = x as f32 / W as f32;
    let fy = y as f32 / H as f32;
    let soft = 0.5 + 0.3 * (fx * 6.3).sin() * (fy * 4.7).cos();
    let blocks = if ((x / 64) + (y / 64)) % 2 == 0 { 0.2 } else { 0.0 };
    soft + blocks
}

fn main() {
    println!("training the autotuner...");
    let outcome =
        TrainingPipeline::new(PipelineConfig { training_size: 1920, ..Default::default() }).run();
    let tuner = StandaloneTuner::new(outcome.ranker);

    let size = GridSize::d2(W as u32, H as u32);
    let blur = Blur::new();
    let edge = Edge::new();

    // Each stage is tuned for its own shape: the 5x5 blur and the 3x3 edge
    // kernel generally get different blockings.
    let blur_cfg = tuner.tune(&StencilInstance::new(blur.model().clone(), size).unwrap());
    let edge_cfg = tuner.tune(&StencilInstance::new(edge.model().clone(), size).unwrap());
    println!("blur 5x5  -> {}", blur_cfg.tuning);
    println!("edge 3x3  -> {}\n", edge_cfg.tuning);

    // Stage buffers: image -> blurred -> edges. Blur has radius 2, edge 1;
    // grids share the wider halo so the pipeline can chain.
    let radius = (2, 2, 0);
    let mut image: Grid<f32> = Grid::for_size(size, radius);
    image.fill_with(|x, y, _| synthetic_image(x, y));
    let mut blurred: Grid<f32> = Grid::for_size(size, radius);
    let mut edges: Grid<f32> = Grid::for_size(size, radius);

    let mut engine = Engine::with_default_threads();
    let t0 = std::time::Instant::now();
    engine.sweep(&blur, &[&image], &mut blurred, &blur_cfg.tuning);
    engine.sweep(&edge, &[&blurred], &mut edges, &edge_cfg.tuning);
    let elapsed = t0.elapsed().as_secs_f64();

    // Simple statistics stand in for writing an image file.
    let (mut strong, mut sum) = (0usize, 0.0f64);
    for y in 0..H {
        for x in 0..W {
            let e = edges.get(x, y, 0).abs();
            sum += e as f64;
            if e > 0.5 {
                strong += 1;
            }
        }
    }
    println!(
        "pipeline on {}x{} image: {:.2} ms total ({} threads)",
        W,
        H,
        elapsed * 1e3,
        engine.threads()
    );
    println!(
        "edge response: mean |e| = {:.4}, {} strong edge pixels ({:.2}%)",
        sum / (W * H) as f64,
        strong,
        100.0 * strong as f64 / (W * H) as f64
    );
    // The block pattern has predictable edge structure; sanity-check it.
    assert!(strong > 1000, "block boundaries must produce strong edges");
}
