//! Model lifecycle: train once, persist to JSON, reload in a "different
//! deployment" and verify the reloaded model makes identical decisions —
//! the knowledge-base workflow that lets the expensive pre-processing phase
//! be paid once per machine.
//!
//! ```sh
//! cargo run --release --example train_and_save
//! ```

use stencil_autotune::model::{GridSize, StencilInstance, StencilKernel};
use stencil_autotune::sorl::pipeline::{PipelineConfig, TrainingPipeline};
use stencil_autotune::sorl::ranker::StencilRanker;
use stencil_autotune::sorl::tuner::StandaloneTuner;

fn main() {
    let path = std::env::temp_dir().join("sorl-model.json");

    // Phase 1 (once per target machine): train and persist.
    println!("training (size 1920)...");
    let outcome =
        TrainingPipeline::new(PipelineConfig { training_size: 1920, ..Default::default() }).run();
    outcome.ranker.save_json(&path).expect("save model");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("saved model to {} ({} KiB)\n", path.display(), bytes / 1024);

    // Phase 2 (every compile): load and tune — no training data needed.
    let loaded = StencilRanker::load_json(&path).expect("load model");
    let tuner_fresh = StandaloneTuner::new(outcome.ranker);
    let tuner_loaded = StandaloneTuner::new(loaded);

    for kernel in [StencilKernel::laplacian(), StencilKernel::wave(), StencilKernel::blur()] {
        let size = if kernel.dim() == 2 { GridSize::square(1024) } else { GridSize::cube(128) };
        let q = StencilInstance::new(kernel, size).unwrap();
        let a = tuner_fresh.tune(&q);
        let b = tuner_loaded.tune(&q);
        assert_eq!(a.tuning, b.tuning, "reloaded model must decide identically");
        println!("{q:<28} -> {} ({:.2} ms)", b.tuning, b.seconds * 1e3);
    }
    println!("\nreloaded model reproduces every decision bit-for-bit.");
    std::fs::remove_file(&path).ok();
}
