//! Quickstart: train a ranking model, tune an unseen stencil, and verify
//! the choice both on the simulated machine and on the real execution
//! engine.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stencil_autotune::exec::{BenchmarkKernel, Engine, MeasureConfig};
use stencil_autotune::machine::Machine;
use stencil_autotune::model::{
    GridSize, StencilExecution, StencilInstance, StencilKernel, TuningVector,
};
use stencil_autotune::sorl::pipeline::{PipelineConfig, TrainingPipeline};
use stencil_autotune::sorl::tuner::StandaloneTuner;

fn main() {
    // 1. Pre-processing: generate the training corpus, "run" it on the
    //    simulated Xeon and fit the ranking SVM. Larger training sizes rank
    //    better; 3840 is a good default (see Fig. 7 of the paper).
    println!("training the ordinal-regression model (size 3840)...");
    let outcome =
        TrainingPipeline::new(PipelineConfig { training_size: 3840, ..Default::default() }).run();
    println!(
        "  {} samples, {} preference pairs, pair accuracy {:.3}, trained in {:.2}s\n",
        outcome.samples,
        outcome.report.pairs,
        outcome.report.train_pair_accuracy,
        outcome.timings.training_wall
    );

    // 2. Tune an unseen stencil: a 7-point laplacian on a 256^3 grid.
    let tuner = StandaloneTuner::new(outcome.ranker);
    let q = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(256)).unwrap();
    let decision = tuner.tune(&q);
    println!(
        "tuned {q}: {} (ranked {} candidates in {:.2} ms)",
        decision.tuning,
        decision.candidates,
        decision.seconds * 1e3
    );

    // 3. Compare against untuned code on the simulated machine. The
    //    untuned configuration is what a plain triple loop does: no
    //    blocking (one whole-domain tile), no unrolling, one chunk.
    let machine = Machine::xeon_e5_2680_v3();
    let default_tuning = TuningVector::new(1024, 1024, 1024, 0, 1);
    let tuned =
        machine.execute_median(&StencilExecution::new(q.clone(), decision.tuning).unwrap(), 5);
    let naive =
        machine.execute_median(&StencilExecution::new(q.clone(), default_tuning).unwrap(), 5);
    println!("\nsimulated Xeon E5-2680 v3:");
    println!(
        "  untuned {default_tuning}: {:8.2} ms  ({:.2} GFlop/s)",
        naive.seconds * 1e3,
        naive.gflops
    );
    println!(
        "  tuned   {}: {:8.2} ms  ({:.2} GFlop/s)",
        decision.tuning,
        tuned.seconds * 1e3,
        tuned.gflops
    );
    println!("  speedup: {:.2}x", naive.seconds / tuned.seconds);

    // 4. The tuning vector drives a *real* engine too: run both
    //    configurations on this machine (small grid, real threads).
    let size = GridSize::cube(96);
    let mut engine = Engine::with_default_threads();
    let cfg = MeasureConfig { warmup: 1, reps: 3 };
    let kernel = BenchmarkKernel::Laplacian;
    let t_tuned = kernel.measure(&mut engine, size, &decision.tuning, cfg);
    let t_naive = kernel.measure(&mut engine, size, &default_tuning, cfg);
    println!("\nreal engine on this machine ({} threads, {size} grid):", engine.threads());
    println!("  untuned: {:8.3} ms/sweep", t_naive * 1e3);
    println!("  tuned:   {:8.3} ms/sweep", t_tuned * 1e3);
}
