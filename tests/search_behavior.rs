//! Search-engine behaviour on the real (simulated-machine) tuning
//! objectives, beyond the synthetic functions of the unit tests.

use stencil_autotune::machine::Machine;
use stencil_autotune::model::{GridSize, StencilInstance, StencilKernel, TuningSpace};
use stencil_autotune::search::{paper_baselines, RandomSearch, SearchAlgorithm};
use stencil_autotune::sorl::objective::MachineObjective;

fn lap64() -> StencilInstance {
    StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(64)).unwrap()
}

#[test]
fn budgets_are_exact_on_machine_objectives() {
    let machine = Machine::xeon_e5_2680_v3();
    for algo in paper_baselines() {
        for budget in [1usize, 7, 32, 100] {
            let mut obj = MachineObjective::new(&machine, lap64());
            let space = obj.search_space();
            let res = algo.run(&space, &mut obj, budget, 5);
            assert_eq!(res.trace.len(), budget, "{} budget {budget}", algo.name());
            assert_eq!(obj.evals() as usize, budget, "{}", algo.name());
        }
    }
}

#[test]
fn traces_are_monotone_and_consistent() {
    let machine = Machine::xeon_e5_2680_v3();
    for algo in paper_baselines() {
        let mut obj = MachineObjective::new(&machine, lap64());
        let space = obj.search_space();
        let res = algo.run(&space, &mut obj, 200, 11);
        let best = res.trace.best_so_far();
        for w in best.windows(2) {
            assert!(w[1] <= w[0], "{}", algo.name());
        }
        assert_eq!(res.best_f, *best.last().unwrap(), "{}", algo.name());
        let min_val = res.trace.values().iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(res.best_f, min_val, "{}", algo.name());
    }
}

#[test]
fn searches_find_valid_and_good_configs() {
    let machine = Machine::xeon_e5_2680_v3();
    let space3 = TuningSpace::d3();
    // Random baseline for comparison.
    let mut robj = MachineObjective::new(&machine, lap64());
    let rspace = robj.search_space();
    let random = RandomSearch.run(&rspace, &mut robj, 256, 3);

    for algo in paper_baselines() {
        let mut obj = MachineObjective::new(&machine, lap64());
        let space = obj.search_space();
        let res = algo.run(&space, &mut obj, 256, 3);
        let tuning = space3.from_genome(&res.best_x).expect("decodable best");
        assert!(space3.contains(&tuning), "{}", algo.name());
        assert!(
            res.best_f <= random.best_f * 1.2,
            "{} ({}) should be competitive with random ({})",
            algo.name(),
            res.best_f,
            random.best_f
        );
    }
}

#[test]
fn search_results_are_reproducible_per_seed() {
    let machine = Machine::xeon_e5_2680_v3();
    for algo in paper_baselines() {
        let run = |seed: u64| {
            let mut obj = MachineObjective::new(&machine, lap64());
            let space = obj.search_space();
            algo.run(&space, &mut obj, 96, seed)
        };
        let a = run(21);
        let b = run(21);
        assert_eq!(a.best_x, b.best_x, "{}", algo.name());
        assert_eq!(a.trace.values(), b.trace.values(), "{}", algo.name());
        let c = run(22);
        assert_ne!(a.trace.values(), c.trace.values(), "{}", algo.name());
    }
}

#[test]
fn two_d_instances_search_a_four_gene_space() {
    let machine = Machine::xeon_e5_2680_v3();
    let blur = StencilInstance::new(StencilKernel::blur(), GridSize::square(512)).unwrap();
    for algo in paper_baselines() {
        let mut obj = MachineObjective::new(&machine, blur.clone());
        let space = obj.search_space();
        assert_eq!(space.len(), 4);
        let res = algo.run(&space, &mut obj, 64, 9);
        let t = TuningSpace::d2().from_genome(&res.best_x).unwrap();
        assert_eq!(t.bz, 1, "{}", algo.name());
    }
}
