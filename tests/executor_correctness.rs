//! The engine's blocked/unrolled/chunked parallel schedule must be exactly
//! equivalent to the naive reference interpreter, for every kernel and for
//! arbitrary (pattern, tuning, size) combinations.

use proptest::prelude::*;

use stencil_autotune::exec::reference::reference_sweep;
use stencil_autotune::exec::{BenchmarkKernel, Engine, Grid, WeightedKernel};
use stencil_autotune::model::{DType, GridSize, TuningVector};

#[test]
fn all_table3_kernels_match_reference_across_tunings() {
    let tunings_3d = [
        TuningVector::new(2, 2, 2, 0, 1),
        TuningVector::new(1024, 1024, 1024, 0, 1),
        TuningVector::new(7, 5, 3, 5, 3),
        TuningVector::new(16, 4, 8, 8, 256),
    ];
    let tunings_2d = [
        TuningVector::new(2, 2, 1, 0, 1),
        TuningVector::new(1024, 1024, 1, 0, 1),
        TuningVector::new(7, 5, 1, 5, 3),
        TuningVector::new(16, 4, 1, 8, 256),
    ];
    for k in BenchmarkKernel::ALL {
        let (size, tunings) = if k.model().dim() == 2 {
            (GridSize::d2(29, 23), &tunings_2d)
        } else {
            (GridSize::d3(13, 11, 9), &tunings_3d)
        };
        for t in tunings {
            let diff = k.verify(3, size, t);
            assert_eq!(diff, 0.0, "{k:?} with {t} diverged");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random linear stencils, random grids, random tunings, random thread
    /// counts: the engine must equal the reference bit for bit.
    #[test]
    fn random_weighted_kernels_match_reference(
        taps in prop::collection::vec(
            (-2i32..=2, -2i32..=2, -2i32..=2, 0usize..3, -2.0f64..2.0),
            1..12,
        ),
        nx in 4usize..24,
        ny in 4usize..16,
        nz in 1usize..10,
        bx in 1u32..32,
        by in 1u32..32,
        bz in 1u32..8,
        unroll in 0u32..=8,
        chunk in 1u32..16,
        threads in 1usize..5,
    ) {
        let kernel = WeightedKernel::new("prop", taps, 3, DType::F64).unwrap();
        let (rx, ry, rz) = kernel.model().pattern().radius_per_axis();
        let h = (rx as usize, ry as usize, rz as usize);
        let mk_input = |b: usize| {
            let mut g: Grid<f64> = Grid::new(nx, ny, nz, h.0, h.1, h.2);
            g.fill_with(|x, y, z| ((x * 3 + y * 7 + z * 11 + b as i64 * 13) % 17) as f64 * 0.25);
            g
        };
        let inputs: Vec<Grid<f64>> = (0..3).map(mk_input).collect();
        let refs: Vec<&Grid<f64>> = inputs.iter().collect();

        let mut expected: Grid<f64> = Grid::new(nx, ny, nz, h.0, h.1, h.2);
        reference_sweep(&kernel, &refs, &mut expected);

        let mut out: Grid<f64> = Grid::new(nx, ny, nz, h.0, h.1, h.2);
        let tuning = TuningVector::new(bx.max(2), by.max(2), bz.max(2).min(nz as u32).max(1), unroll, chunk);
        // bz must be >= 1; clamp to the grid's z extent when planar.
        let tuning = if nz == 1 { TuningVector::new(tuning.bx, tuning.by, 1, unroll, chunk) } else { tuning };
        let mut engine = Engine::new(threads);
        engine.sweep(&kernel, &refs, &mut out, &tuning);

        prop_assert_eq!(out.max_abs_diff(&expected), 0.0);
    }

    /// The measured sweep must be insensitive to the tuning in *values*:
    /// every tuning computes the same function.
    #[test]
    fn two_random_tunings_agree_with_each_other(
        bx1 in 2u32..64, by1 in 2u32..64, bz1 in 2u32..8,
        bx2 in 2u32..64, by2 in 2u32..64, bz2 in 2u32..8,
        u1 in 0u32..=8, u2 in 0u32..=8,
    ) {
        let kernel = WeightedKernel::new(
            "lap",
            vec![
                (0, 0, 0, 0, -6.0),
                (1, 0, 0, 0, 1.0), (-1, 0, 0, 0, 1.0),
                (0, 1, 0, 0, 1.0), (0, -1, 0, 0, 1.0),
                (0, 0, 1, 0, 1.0), (0, 0, -1, 0, 1.0),
            ],
            1,
            DType::F64,
        ).unwrap();
        let mut input: Grid<f64> = Grid::new(15, 13, 7, 1, 1, 1);
        input.fill_with(|x, y, z| (x + 2 * y + 3 * z) as f64 * 0.5);
        let mut engine = Engine::new(2);
        let mut a: Grid<f64> = Grid::new(15, 13, 7, 1, 1, 1);
        let mut b: Grid<f64> = Grid::new(15, 13, 7, 1, 1, 1);
        engine.sweep(&kernel, &[&input], &mut a, &TuningVector::new(bx1, by1, bz1, u1, 2));
        engine.sweep(&kernel, &[&input], &mut b, &TuningVector::new(bx2, by2, bz2, u2, 5));
        prop_assert_eq!(a.max_abs_diff(&b), 0.0);
    }
}
