//! End-to-end integration: training pipeline -> ranker -> tuners, across
//! crate boundaries.

use stencil_autotune::machine::Machine;
use stencil_autotune::model::{GridSize, StencilInstance, StencilKernel, TuningSpace};
use stencil_autotune::sorl::benchmarks::table3_benchmarks;
use stencil_autotune::sorl::experiments::measure_config;
use stencil_autotune::sorl::pipeline::{PipelineConfig, TrainingPipeline};
use stencil_autotune::sorl::ranker::StencilRanker;
use stencil_autotune::sorl::tuner::StandaloneTuner;

fn small_pipeline() -> stencil_autotune::sorl::pipeline::PipelineOutcome {
    TrainingPipeline::new(PipelineConfig { training_size: 960, ..Default::default() }).run()
}

#[test]
fn pipeline_to_tuner_produces_admissible_configs_for_all_benchmarks() {
    let out = small_pipeline();
    let tuner = StandaloneTuner::new(out.ranker);
    for b in table3_benchmarks() {
        let d = tuner.tune(&b.instance);
        let space = TuningSpace::for_dim(b.instance.dim()).unwrap();
        assert!(space.contains(&d.tuning), "{}: {}", b.name, d.tuning);
        let expected = if b.instance.dim() == 2 { 1600 } else { 8640 };
        assert_eq!(d.candidates, expected, "{}", b.name);
    }
}

#[test]
fn whole_experiment_stack_is_deterministic() {
    let machine = Machine::xeon_e5_2680_v3();
    let q = StencilInstance::new(StencilKernel::gradient(), GridSize::cube(128)).unwrap();

    let run = || {
        let out = small_pipeline();
        let tuner = StandaloneTuner::new(out.ranker);
        let d = tuner.tune(&q);
        (d.tuning, measure_config(&machine, &q, d.tuning))
    };
    let (t1, s1) = run();
    let (t2, s2) = run();
    assert_eq!(t1, t2);
    assert_eq!(s1, s2);
}

#[test]
fn tuned_configs_beat_the_median_random_config() {
    // The model's top-1 must be solidly better than a typical configuration
    // on every benchmark (a much weaker, but robust, version of Fig. 4).
    use rand::SeedableRng;
    let machine = Machine::xeon_e5_2680_v3();
    let out =
        TrainingPipeline::new(PipelineConfig { training_size: 1920, ..Default::default() }).run();
    let tuner = StandaloneTuner::new(out.ranker);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    for b in table3_benchmarks() {
        let tuned = measure_config(&machine, &b.instance, tuner.tune(&b.instance).tuning);
        let space = TuningSpace::for_dim(b.instance.dim()).unwrap();
        let mut randoms: Vec<f64> = (0..15)
            .map(|_| measure_config(&machine, &b.instance, space.random(&mut rng)))
            .collect();
        randoms.sort_by(f64::total_cmp);
        let median_random = randoms[randoms.len() / 2];
        assert!(
            tuned < median_random,
            "{}: tuned {tuned} not better than median random {median_random}",
            b.name
        );
    }
}

#[test]
fn model_persistence_survives_the_full_decision_path() {
    let out = small_pipeline();
    let dir = std::env::temp_dir().join("sorl-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    out.ranker.save_json(&path).unwrap();
    let loaded = StencilRanker::load_json(&path).unwrap();

    let a = StandaloneTuner::new(out.ranker);
    let b = StandaloneTuner::new(loaded);
    for bench in table3_benchmarks().into_iter().take(5) {
        assert_eq!(
            a.tune(&bench.instance).tuning,
            b.tune(&bench.instance).tuning,
            "{}",
            bench.name
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn phase_timings_are_sane() {
    let out = small_pipeline();
    let t = out.timings;
    // Compile model: the paper's corpus takes ~32 real hours.
    assert!(t.ts_compile_modelled > 3600.0 * 10.0);
    // Training-set generation: simulated minutes, real milliseconds.
    assert!(t.ts_generation_simulated > 1.0);
    assert!(t.ts_generation_wall < 60.0);
    // Training happens in (fractions of) seconds at size 960.
    assert!(t.training_wall < 30.0);
}

#[test]
fn hybrid_search_uses_and_respects_budget() {
    let machine = Machine::xeon_e5_2680_v3();
    let out = small_pipeline();
    let hybrid = stencil_autotune::sorl::hybrid::HybridTuner::new(out.ranker);
    let q = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(64)).unwrap();
    let res = hybrid.search(&machine, &q, 64, 3);
    assert_eq!(res.trace.len(), 64);
    let space = TuningSpace::d3();
    assert!(space.from_genome(&res.best_x).is_ok());
}
