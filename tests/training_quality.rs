//! Statistical quality of the learned ranking — the invariants behind
//! Figs. 6 and 7, asserted as tests so regressions in the learner, the
//! encoder or the simulator surface immediately.

use ranksvm::metrics::kendall_per_group;
use stencil_autotune::gen::TrainingSetBuilder;
use stencil_autotune::sorl::experiments::quartiles;
use stencil_autotune::sorl::pipeline::{PipelineConfig, TrainingPipeline};

fn taus_for_size(size: usize) -> Vec<f64> {
    let config = PipelineConfig { training_size: size, ..Default::default() };
    let out = TrainingPipeline::new(config).run();
    let ts = TrainingSetBuilder::paper().with_seed(config.seed).build_size(size);
    kendall_per_group(&ts.dataset, out.ranker.model()).into_iter().map(|(_, t)| t).collect()
}

#[test]
fn ranking_quality_is_far_above_chance() {
    let taus = taus_for_size(1920);
    let q = quartiles(&taus);
    // Chance would be ~0; the paper's medians sit well above it.
    assert!(q.median > 0.5, "median tau {}", q.median);
    assert!(q.q1 > 0.2, "q1 tau {}", q.q1);
}

#[test]
fn larger_training_sets_shrink_tau_variance() {
    // The Fig. 7 observation: the interquartile range narrows with size.
    let small = quartiles(&taus_for_size(960));
    let large = quartiles(&taus_for_size(6720));
    let iqr_small = small.q3 - small.q1;
    let iqr_large = large.q3 - large.q1;
    assert!(iqr_large < iqr_small, "iqr did not shrink: {iqr_small:.3} -> {iqr_large:.3}");
    // And the worst instances improve markedly.
    assert!(large.min > small.min);
}

#[test]
fn per_instance_groups_cover_the_whole_corpus() {
    let ts = TrainingSetBuilder::paper().build_size(960);
    let groups = ts.dataset.group_ids();
    assert_eq!(groups.len(), 200, "every corpus instance contributes a partial ranking");
}

#[test]
fn training_report_is_consistent_with_dataset() {
    let config = PipelineConfig { training_size: 960, ..Default::default() };
    let out = TrainingPipeline::new(config).run();
    let ts = TrainingSetBuilder::paper().with_seed(config.seed).build_size(960);
    assert_eq!(out.samples, ts.dataset.len());
    assert_eq!(out.report.samples, ts.dataset.len());
    // Pair count matches an independent recomputation.
    assert_eq!(out.report.pairs, ts.dataset.pairs(1e-4).len());
}

#[test]
fn holdout_tunings_rank_above_chance_too() {
    // Generalization: evaluate on fresh tuning draws for the same
    // instances (a different sampling seed), not just the training draws.
    let config = PipelineConfig { training_size: 3840, ..Default::default() };
    let out = TrainingPipeline::new(config).run();
    let holdout = TrainingSetBuilder::paper().with_seed(999).build_size(1920);
    let taus: Vec<f64> = kendall_per_group(&holdout.dataset, out.ranker.model())
        .into_iter()
        .map(|(_, t)| t)
        .collect();
    let q = quartiles(&taus);
    assert!(q.median > 0.5, "holdout median tau {}", q.median);
}
