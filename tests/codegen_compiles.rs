//! The PATUS-like C emitter must produce code a real C compiler accepts.
//! Skipped silently when no `gcc` is on the PATH.

use std::io::Write;
use std::process::Command;

use stencil_autotune::gen::emit_c_kernel;
use stencil_autotune::model::{StencilKernel, TuningVector};

fn gcc_available() -> bool {
    Command::new("gcc").arg("--version").output().map(|o| o.status.success()).unwrap_or(false)
}

fn check_compiles(code: &str, name: &str) {
    let dir = std::env::temp_dir().join("sorl-codegen-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}.c"));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(code.as_bytes()).unwrap();
    drop(f);
    let out = Command::new("gcc")
        .args(["-fsyntax-only", "-fopenmp", "-std=c11", "-Wall", "-Werror"])
        .arg(&path)
        .output()
        .expect("gcc runs");
    assert!(
        out.status.success(),
        "gcc rejected {name}:\n{}\n--- code ---\n{code}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn emitted_c_compiles_for_all_table3_kernels() {
    if !gcc_available() {
        eprintln!("gcc not found; skipping codegen compile test");
        return;
    }
    for kernel in StencilKernel::table3_kernels() {
        let tuning = if kernel.dim() == 2 {
            TuningVector::new(128, 8, 1, 4, 2)
        } else {
            TuningVector::new(64, 16, 8, 4, 2)
        };
        let code = emit_c_kernel(&kernel, &tuning);
        check_compiles(&code, kernel.name());
    }
}

#[test]
fn emitted_c_compiles_across_tuning_extremes() {
    if !gcc_available() {
        eprintln!("gcc not found; skipping codegen compile test");
        return;
    }
    let kernel = StencilKernel::laplacian6();
    for (i, tuning) in [
        TuningVector::new(2, 2, 2, 0, 1),
        TuningVector::new(1024, 1024, 1024, 8, 256),
        TuningVector::new(3, 1024, 2, 1, 7),
    ]
    .iter()
    .enumerate()
    {
        let code = emit_c_kernel(&kernel, tuning);
        check_compiles(&code, &format!("extreme{i}"));
    }
}
