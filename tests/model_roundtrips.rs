//! Property tests for the modeling layer: the feature encoding is a true
//! embedding (invertible, normalized), and all auxiliary mappings
//! round-trip.

use proptest::prelude::*;

use stencil_autotune::model::{
    DType, FeatureEncoder, GridSize, Offset, StencilExecution, StencilInstance, StencilKernel,
    StencilPattern, TuningSpace, TuningVector,
};

/// Strategy: a valid non-empty 3-D pattern within radius 3.
fn pattern_3d() -> impl Strategy<Value = StencilPattern> {
    prop::collection::vec(((-3i32..=3), (-3i32..=3), (-3i32..=3)), 1..24).prop_map(|pts| {
        let mut p = StencilPattern::from_points(pts);
        // Guarantee non-planarity so instances pair with 3-D sizes.
        p.add(Offset::new(0, 0, 1));
        p
    })
}

fn tuning_3d() -> impl Strategy<Value = TuningVector> {
    (2u32..=1024, 2u32..=1024, 2u32..=1024, 0u32..=8, 1u32..=256)
        .prop_map(|(bx, by, bz, u, c)| TuningVector::new(bx, by, bz, u, c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn encode_decode_roundtrip(
        pattern in pattern_3d(),
        buffers in 1u8..=4,
        is_double in any::<bool>(),
        size_exp in 4u32..=9, // 16 .. 512 per axis
        tuning in tuning_3d(),
    ) {
        let dtype = if is_double { DType::F64 } else { DType::F32 };
        let kernel = StencilKernel::new("prop", pattern, buffers, dtype).unwrap();
        let size = GridSize::cube(1 << size_exp);
        let q = StencilInstance::new(kernel, size).unwrap();
        let exec = StencilExecution::new(q, tuning).unwrap();

        for encoder in [FeatureEncoder::paper_concat(), FeatureEncoder::default_interaction()] {
            let f = encoder.encode(&exec);
            prop_assert_eq!(f.len(), encoder.dim());
            prop_assert!(f.iter().all(|v| (0.0..=1.0).contains(v)));

            let back = encoder.decode(&f).unwrap();
            prop_assert_eq!(back.instance().kernel().pattern(), exec.instance().kernel().pattern());
            prop_assert_eq!(back.instance().kernel().buffers(), exec.instance().kernel().buffers());
            prop_assert_eq!(back.instance().kernel().dtype(), exec.instance().kernel().dtype());
            prop_assert_eq!(back.instance().size(), exec.instance().size());
            prop_assert_eq!(back.tuning(), exec.tuning());
        }
    }

    #[test]
    fn dense_pattern_roundtrip(pattern in pattern_3d()) {
        let dense = pattern.dense(3).unwrap();
        let back = StencilPattern::from_dense(&dense, 3).unwrap();
        prop_assert_eq!(back, pattern);
    }

    #[test]
    fn genome_roundtrip(tuning in tuning_3d()) {
        let space = TuningSpace::d3();
        let g = space.to_genome(&tuning);
        prop_assert_eq!(space.from_genome(&g).unwrap(), tuning);
    }

    #[test]
    fn clamp_is_idempotent_and_containing(
        bx in 0u32..5000, by in 0u32..5000, bz in 0u32..5000,
        u in 0u32..50, c in 0u32..5000,
    ) {
        let space = TuningSpace::d3();
        let t = TuningVector::new(bx, by, bz, u, c);
        let clamped = space.clamp(&t);
        prop_assert!(space.contains(&clamped));
        prop_assert_eq!(space.clamp(&clamped), clamped);
    }

    #[test]
    fn execution_geometry_invariants(
        pattern in pattern_3d(),
        tuning in tuning_3d(),
        size_exp in 4u32..=8,
    ) {
        let kernel = StencilKernel::new("geom", pattern, 1, DType::F32).unwrap();
        let size = GridSize::cube(1 << size_exp);
        let q = StencilInstance::new(kernel, size).unwrap();
        let exec = StencilExecution::new(q, tuning).unwrap();

        // Tiles cover the domain: tiles * max_tile_points >= points.
        let (bx, by, bz) = exec.effective_blocks();
        let max_tile = bx as u64 * by as u64 * bz as u64;
        prop_assert!(exec.tile_count() * max_tile >= size.points());
        // Chunks cover tiles.
        prop_assert!(exec.chunk_count() * tuning.c as u64 >= exec.tile_count());
        // Effective blocks never exceed the grid.
        prop_assert!(bx <= size.x && by <= size.y && bz <= size.z);
    }

    #[test]
    fn pattern_sum_is_commutative_and_count_additive(
        a in pattern_3d(),
        b in pattern_3d(),
    ) {
        let ab = a.sum(&b);
        let ba = b.sum(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.total_accesses(), a.total_accesses() + b.total_accesses());
    }
}
