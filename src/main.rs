//! `stencil-autotune` — command-line interface to the SORL autotuner.
//!
//! ```text
//! stencil-autotune train --size 3840 --out model.json
//! stencil-autotune tune  --model model.json --kernel laplacian --grid 256x256x256
//! stencil-autotune codegen --kernel blur --grid 1024x1024 --bx 128 --by 8 --u 4 --c 2
//! stencil-autotune inspect --kernel tricubic
//! stencil-autotune bench --kernel laplacian --grid 96x96x96 --bx 64 --by 16 --bz 8
//! ```
//!
//! `tune` picks a configuration for an unseen stencil in milliseconds;
//! `bench` actually runs the kernel on this machine with the real engine.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

use stencil_autotune::exec::{BenchmarkKernel, Engine, MeasureConfig};
use stencil_autotune::gen::emit_c_kernel;
use stencil_autotune::model::{GridSize, StencilInstance, StencilKernel, TuningVector};
use stencil_autotune::sorl::pipeline::{PipelineConfig, TrainingPipeline};
use stencil_autotune::sorl::ranker::StencilRanker;
use stencil_autotune::sorl::tuner::StandaloneTuner;

const USAGE: &str = "\
stencil-autotune: ordinal-regression autotuner for stencil computations

USAGE:
    stencil-autotune <COMMAND> [--flag value]...

COMMANDS:
    train     train a ranking model            --size N  --out FILE [--seed N]
    tune      pick a tuning for a stencil      --model FILE --kernel NAME --grid XxY[xZ]
    codegen   emit the C code of a variant     --kernel NAME --grid XxY[xZ]
                                               [--bx N --by N --bz N --u N --c N]
    inspect   describe a kernel's model        --kernel NAME
    bench     run a variant with the engine    --kernel NAME --grid XxY[xZ]
                                               [--bx N --by N --bz N --u N --c N] [--threads N]
    kernels   list the built-in kernels

Built-in kernels: blur, edge, game-of-life, wave, tricubic, divergence,
gradient, laplacian, laplacian6.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("missing command".into());
    };
    let flags = parse_flags(&args[1..])?;
    match command.as_str() {
        "train" => cmd_train(&flags),
        "tune" => cmd_tune(&flags),
        "codegen" => cmd_codegen(&flags),
        "inspect" => cmd_inspect(&flags),
        "bench" => cmd_bench(&flags),
        "kernels" => {
            for k in StencilKernel::table3_kernels() {
                println!("{k}");
            }
            Ok(())
        }
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected --flag, got `{flag}`"));
        };
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match flags.get(name) {
        Some(v) => v.parse().map_err(|_| format!("invalid value for --{name}: `{v}`")),
        None => Ok(default),
    }
}

fn require<'a>(flags: &'a Flags, name: &str) -> Result<&'a str, String> {
    flags.get(name).map(String::as_str).ok_or_else(|| format!("--{name} is required"))
}

fn parse_grid(s: &str) -> Result<GridSize, String> {
    let parts: Vec<u32> = s
        .split('x')
        .map(|p| p.parse().map_err(|_| format!("invalid grid `{s}`")))
        .collect::<Result<_, _>>()?;
    match parts.as_slice() {
        [x, y] => Ok(GridSize::d2(*x, *y)),
        [x, y, z] => Ok(GridSize::d3(*x, *y, *z)),
        _ => Err(format!("grid must be XxY or XxYxZ, got `{s}`")),
    }
}

fn parse_kernel(name: &str) -> Result<StencilKernel, String> {
    StencilKernel::table3_kernels()
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| format!("unknown kernel `{name}` (see `stencil-autotune kernels`)"))
}

fn tuning_from_flags(flags: &Flags, dim: u8) -> Result<TuningVector, String> {
    Ok(TuningVector::new(
        get(flags, "bx", 64)?,
        get(flags, "by", 16)?,
        if dim == 2 { 1 } else { get(flags, "bz", 8)? },
        get(flags, "u", 0)?,
        get(flags, "c", 1)?,
    ))
}

fn cmd_train(flags: &Flags) -> Result<(), String> {
    let size: usize = get(flags, "size", 3840)?;
    let seed: u64 = get(flags, "seed", 0x534F_524C)?;
    let out: PathBuf = PathBuf::from(require(flags, "out")?);
    eprintln!("training on the simulated Xeon E5-2680 v3 ({size} samples)...");
    let outcome =
        TrainingPipeline::new(PipelineConfig { training_size: size, seed, ..Default::default() })
            .run();
    eprintln!(
        "  {} samples, {} pairs, pair accuracy {:.3}, trained in {:.2}s",
        outcome.samples,
        outcome.report.pairs,
        outcome.report.train_pair_accuracy,
        outcome.timings.training_wall
    );
    outcome.ranker.save_json(&out).map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!("model written to {}", out.display());
    Ok(())
}

fn cmd_tune(flags: &Flags) -> Result<(), String> {
    let model_path = PathBuf::from(require(flags, "model")?);
    let kernel = parse_kernel(require(flags, "kernel")?)?;
    let grid = parse_grid(require(flags, "grid")?)?;
    let instance = StencilInstance::new(kernel, grid).map_err(|e| e.to_string())?;
    let ranker = StencilRanker::load_json(&model_path)
        .map_err(|e| format!("loading {}: {e}", model_path.display()))?;
    let tuner = StandaloneTuner::new(ranker);
    let d = tuner.tune(&instance);
    println!(
        "{instance}: {} (ranked {} candidates in {:.2} ms)",
        d.tuning,
        d.candidates,
        d.seconds * 1e3
    );
    Ok(())
}

fn cmd_codegen(flags: &Flags) -> Result<(), String> {
    let kernel = parse_kernel(require(flags, "kernel")?)?;
    let grid = flags.get("grid").map(|g| parse_grid(g)).transpose()?;
    let dim = kernel.dim();
    let tuning = tuning_from_flags(flags, dim)?;
    if let Some(grid) = grid {
        StencilInstance::new(kernel.clone(), grid).map_err(|e| e.to_string())?;
    }
    print!("{}", emit_c_kernel(&kernel, &tuning));
    Ok(())
}

fn cmd_inspect(flags: &Flags) -> Result<(), String> {
    let kernel = parse_kernel(require(flags, "kernel")?)?;
    let p = kernel.pattern();
    println!("{kernel}");
    println!("  pattern:          {p}");
    println!("  distinct points:  {}", p.len());
    println!("  total accesses:   {}", p.total_accesses());
    println!("  radius (x,y,z):   {:?}", p.radius_per_axis());
    println!("  reads centre:     {}", p.reads_center());
    println!("  density:          {:.3}", p.density());
    println!("  flops per point:  {}", kernel.flops_per_point());
    println!("  bytes read/point: {}", kernel.bytes_read_per_point());
    Ok(())
}

fn cmd_bench(flags: &Flags) -> Result<(), String> {
    let name = require(flags, "kernel")?;
    let kernel =
        BenchmarkKernel::from_name(name).ok_or_else(|| format!("unknown kernel `{name}`"))?;
    let grid = parse_grid(require(flags, "grid")?)?;
    StencilInstance::new(kernel.model(), grid).map_err(|e| e.to_string())?;
    let tuning = tuning_from_flags(flags, kernel.model().dim())?;
    let threads: usize =
        get(flags, "threads", std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))?;
    let mut engine = Engine::new(threads);
    let secs = kernel.measure(&mut engine, grid, &tuning, MeasureConfig { warmup: 1, reps: 5 });
    let instance = StencilInstance::new(kernel.model(), grid).map_err(|e| e.to_string())?;
    println!(
        "{instance} @ {tuning}: {:.3} ms/sweep ({:.2} GFlop/s, {} threads)",
        secs * 1e3,
        instance.total_flops() as f64 / secs / 1e9,
        threads
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing() {
        let flags =
            parse_flags(&["--size".into(), "960".into(), "--out".into(), "m.json".into()]).unwrap();
        assert_eq!(get::<usize>(&flags, "size", 0).unwrap(), 960);
        assert_eq!(require(&flags, "out").unwrap(), "m.json");
        assert!(require(&flags, "missing").is_err());
        assert!(parse_flags(&["size".into()]).is_err());
        assert!(parse_flags(&["--size".into()]).is_err());
    }

    #[test]
    fn grid_parsing() {
        assert_eq!(parse_grid("1024x768").unwrap(), GridSize::d2(1024, 768));
        assert_eq!(parse_grid("64x32x16").unwrap(), GridSize::d3(64, 32, 16));
        assert!(parse_grid("64").is_err());
        assert!(parse_grid("axb").is_err());
    }

    #[test]
    fn kernel_lookup() {
        assert!(parse_kernel("laplacian").is_ok());
        assert!(parse_kernel("game-of-life").is_ok());
        assert!(parse_kernel("nope").is_err());
    }

    #[test]
    fn unknown_command_is_reported() {
        assert!(run(&["frobnicate".into()]).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn kernels_and_inspect_commands_work() {
        run(&["kernels".into()]).unwrap();
        let mut flags = Flags::new();
        flags.insert("kernel".into(), "tricubic".into());
        cmd_inspect(&flags).unwrap();
    }

    #[test]
    fn codegen_command_emits_c() {
        let mut flags = Flags::new();
        flags.insert("kernel".into(), "blur".into());
        flags.insert("bx".into(), "128".into());
        cmd_codegen(&flags).unwrap();
    }
}
