//! # stencil-autotune
//!
//! A complete Rust implementation of *"Autotuning Stencil Computations with
//! Structural Ordinal Regression Learning"* (Cosenza, Durillo, Ermon,
//! Juurlink — IPDPS 2017): a machine-learning autotuner that learns to
//! *rank* stencil code variants and picks high-performance loop-blocking /
//! unrolling / thread-chunking configurations for unseen stencils without
//! executing a single candidate.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`model`]   | `stencil-model`   | patterns, kernels, instances, tuning vectors, feature encoding |
//! | [`exec`]    | `stencil-exec`    | real multi-threaded tiled execution engine |
//! | [`machine`] | `stencil-machine` | simulated Xeon E5 testbed (cost model + noise) |
//! | [`ranking`] | `ranksvm`         | linear ranking SVM, Kendall τ, baseline learners |
//! | [`search`]  | `stencil-search`  | GA, steady-state GA, differential evolution, ES |
//! | [`gen`]     | `stencil-gen`     | training corpus, C emitter, training-set builder |
//! | [`sorl`]    | `sorl`            | the autotuner: pipeline, ranker, tuners, benchmarks |
//! | [`serve`]   | `sorl-serve`      | multi-tenant tuning service: micro-batching, top-k, decision cache |
//! | [`shard`]   | `sorl-shard`      | fingerprint-sharded fleet: rendezvous routing, warm cache shipping |
//! | [`obs`]     | `sorl-obs`        | observability: traces, flight recorder, Prometheus metrics |
//!
//! ## Quickstart
//!
//! ```no_run
//! use stencil_autotune::sorl::pipeline::{PipelineConfig, TrainingPipeline};
//! use stencil_autotune::sorl::tuner::StandaloneTuner;
//! use stencil_autotune::model::{GridSize, StencilInstance, StencilKernel};
//!
//! // One-off training phase (pre-processing; seconds on the simulator).
//! let outcome = TrainingPipeline::new(PipelineConfig::default()).run();
//! let tuner = StandaloneTuner::new(outcome.ranker);
//!
//! // Tune any unseen stencil instantly.
//! let q = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(256)).unwrap();
//! let decision = tuner.tune(&q);
//! println!("{} -> {} ({} candidates in {:.2} ms)",
//!          q, decision.tuning, decision.candidates, decision.seconds * 1e3);
//! ```
//!
//! When tuning sits on a hot path (many instances, repeated queries), use
//! [`sorl::session::TuningSession`] instead of `StandaloneTuner`: it
//! caches the predefined candidate sets, reuses scratch buffers (zero
//! per-candidate heap allocation in steady state) and optionally fans
//! candidate chunks across a persistent thread pool.
//!
//! When many *concurrent* callers tune many (often repeated) instances,
//! run a [`serve::TuneService`]: queued requests are micro-batched through
//! one pipelined scoring pass, answers are the top-k configurations with
//! scores, and a decision cache keyed on the canonical
//! [`model::InstanceKey`] absorbs repeated traffic entirely (see
//! `examples/serve_demo.rs`).
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for
//! the binaries regenerating every table and figure of the paper.

pub use sorl;
pub use sorl_obs as obs;
pub use sorl_serve as serve;
pub use sorl_shard as shard;
pub use stencil_exec as exec;
pub use stencil_gen as gen;
pub use stencil_machine as machine;
pub use stencil_model as model;
pub use stencil_search as search;

/// The learning-to-rank machinery (re-exported under a clearer name).
pub use ranksvm as ranking;
