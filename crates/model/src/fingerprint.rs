//! Pinned, stream-style FNV-1a hashing for cross-process fingerprints.
//!
//! Several layers of the workspace need a 64-bit digest whose value is
//! *stable across builds, toolchains and hosts*: [`InstanceKey`] fingerprints
//! route queries between shards, ranker-weight fingerprints version
//! persisted decision-cache snapshots, and both end up in logs and on
//! disk. `std::hash::DefaultHasher` is explicitly unspecified and may
//! change between Rust releases, so the algorithm is pinned here instead:
//! FNV-1a over a canonical little-endian byte stream.
//!
//! [`Fnv1a`] is deliberately *not* a `std::hash::Hasher` — implementing the
//! trait would invite accidental use through derived `Hash` impls, whose
//! byte streams (discriminants, lengths, padding) are themselves
//! unspecified. Callers feed fields explicitly, in a documented order, and
//! that order is part of the fingerprint's contract.
//!
//! [`InstanceKey`]: crate::InstanceKey

/// A streaming FNV-1a hasher with a pinned 64-bit state.
///
/// ```
/// use stencil_model::fingerprint::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.write_i64(42);
/// h.write_f64(1.5);
/// let a = h.finish();
/// // Same stream, same digest — on every build, toolchain and host.
/// let mut h = Fnv1a::new();
/// h.write_i64(42);
/// h.write_f64(1.5);
/// assert_eq!(h.finish(), a);
/// ```
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a { state: OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ b as u64).wrapping_mul(PRIME);
        }
    }

    /// Absorbs a signed integer as 8 little-endian bytes.
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs an unsigned integer as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a float via its IEEE-754 bit pattern (so `-0.0` and `0.0`
    /// hash differently, and NaN payloads are preserved — fingerprints
    /// track *representation*, not numeric equivalence).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The current digest (the hasher remains usable).
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_pinned() {
        // The FNV-1a test vector for the empty input is the offset basis;
        // a one-byte input is one xor-multiply round. Pinning both locks
        // the constants.
        assert_eq!(Fnv1a::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn field_order_matters() {
        let mut ab = Fnv1a::new();
        ab.write_i64(1);
        ab.write_i64(2);
        let mut ba = Fnv1a::new();
        ba.write_i64(2);
        ba.write_i64(1);
        assert_ne!(ab.finish(), ba.finish());
    }

    #[test]
    fn floats_hash_their_bit_patterns() {
        let mut pos = Fnv1a::new();
        pos.write_f64(0.0);
        let mut neg = Fnv1a::new();
        neg.write_f64(-0.0);
        assert_ne!(pos.finish(), neg.finish(), "signed zeros are distinct representations");
        let mut nan = Fnv1a::new();
        nan.write_f64(f64::NAN);
        let mut nan2 = Fnv1a::new();
        nan2.write_f64(f64::NAN);
        assert_eq!(nan.finish(), nan2.finish(), "same NaN payload, same digest");
    }

    #[test]
    fn finish_does_not_consume() {
        let mut h = Fnv1a::new();
        h.write_u64(7);
        let first = h.finish();
        assert_eq!(first, h.finish());
        h.write_u64(8);
        assert_ne!(first, h.finish());
    }
}
