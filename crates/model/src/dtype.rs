//! Buffer element types.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Element type of the stencil buffers.
///
/// The paper assumes homogeneous buffers (all buffers of a kernel share one
/// type) and encodes the type as a single binary feature: 0 for `float`,
/// 1 for `double`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit IEEE float (`float`).
    F32,
    /// 64-bit IEEE float (`double`).
    F64,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn bytes(&self) -> u32 {
        match self {
            DType::F32 => 4,
            DType::F64 => 8,
        }
    }

    /// The paper's binary feature value.
    pub const fn feature(&self) -> f64 {
        match self {
            DType::F32 => 0.0,
            DType::F64 => 1.0,
        }
    }

    /// Inverse of [`feature`](Self::feature) with midpoint rounding.
    pub fn from_feature(v: f64) -> DType {
        if v >= 0.5 {
            DType::F64
        } else {
            DType::F32
        }
    }

    /// SIMD lanes for a given vector register width in bytes (e.g. 32 for AVX2).
    pub const fn lanes(&self, vector_bytes: u32) -> u32 {
        vector_bytes / self.bytes()
    }

    /// C type name, used by the code emitter.
    pub const fn c_name(&self) -> &'static str {
        match self {
            DType::F32 => "float",
            DType::F64 => "double",
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.c_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_features() {
        assert_eq!(DType::F32.bytes(), 4);
        assert_eq!(DType::F64.bytes(), 8);
        assert_eq!(DType::F32.feature(), 0.0);
        assert_eq!(DType::F64.feature(), 1.0);
    }

    #[test]
    fn feature_roundtrip() {
        for d in [DType::F32, DType::F64] {
            assert_eq!(DType::from_feature(d.feature()), d);
        }
    }

    #[test]
    fn avx2_lanes() {
        assert_eq!(DType::F32.lanes(32), 8);
        assert_eq!(DType::F64.lanes(32), 4);
    }

    #[test]
    fn c_names() {
        assert_eq!(DType::F32.to_string(), "float");
        assert_eq!(DType::F64.to_string(), "double");
    }
}
