//! Canonical, hashable identity of a stencil instance.
//!
//! Serving layers cache tuning decisions per *instance*, but
//! [`StencilInstance`] deliberately carries a human-readable kernel name
//! that plays no role in feature encoding: two kernels named differently
//! but with identical pattern, buffer count and element type encode to the
//! same features, rank identically, and must share a cache entry. An
//! [`InstanceKey`] is the projection of an instance onto exactly the fields
//! the [`FeatureEncoder`](crate::FeatureEncoder) reads — pattern, buffers,
//! dtype and grid size — with `Eq`/`Hash`, so it can key hash maps.

use serde::{Deserialize, Serialize};

use crate::dtype::DType;
use crate::instance::StencilInstance;
use crate::pattern::StencilPattern;
use crate::size::GridSize;

/// The feature-relevant identity of a [`StencilInstance`].
///
/// Two instances with equal keys are indistinguishable to the ranking
/// pipeline: every feature the encoder emits (and hence every score and
/// every ranking) is a function of the key alone. The kernel *name* is
/// intentionally excluded.
///
/// ```
/// use stencil_model::{GridSize, InstanceKey, StencilInstance, StencilKernel};
///
/// let a = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(128)).unwrap();
/// let b = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(128)).unwrap();
/// assert_eq!(InstanceKey::of(&a), InstanceKey::of(&b));
///
/// let c = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(256)).unwrap();
/// assert_ne!(InstanceKey::of(&a), InstanceKey::of(&c));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InstanceKey {
    pattern: StencilPattern,
    buffers: u8,
    dtype: DType,
    size: GridSize,
}

impl InstanceKey {
    /// Projects `instance` onto its feature-relevant fields.
    pub fn of(instance: &StencilInstance) -> Self {
        let k = instance.kernel();
        InstanceKey {
            pattern: k.pattern().clone(),
            buffers: k.buffers(),
            dtype: k.dtype(),
            size: instance.size(),
        }
    }

    /// Reassembles a key from its projected fields. This is the inverse of
    /// field access for wire decoders that transport keys in non-serde
    /// encodings; it performs no validation beyond what the field types
    /// already guarantee.
    pub fn from_parts(pattern: StencilPattern, buffers: u8, dtype: DType, size: GridSize) -> Self {
        InstanceKey { pattern, buffers, dtype, size }
    }

    /// The instance's grid size.
    pub fn size(&self) -> GridSize {
        self.size
    }

    /// The stencil access pattern of the keyed kernel.
    pub fn pattern(&self) -> &StencilPattern {
        &self.pattern
    }

    /// Number of distinct input buffers the keyed kernel reads.
    pub fn buffers(&self) -> u8 {
        self.buffers
    }

    /// Element type of the keyed kernel.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Dimensionality of the keyed instance (2 or 3).
    pub fn dim(&self) -> u8 {
        self.pattern.dim()
    }

    /// A stable 64-bit fingerprint of the key: FNV-1a
    /// ([`fingerprint::Fnv1a`](crate::fingerprint::Fnv1a)) over the
    /// canonical field encoding, pinned (not `DefaultHasher`, whose
    /// algorithm is unspecified and may change between Rust releases) so
    /// the value is reproducible across builds, toolchains and hosts —
    /// this is the routing key of cross-process sharding and safe for
    /// logging. *Not* a substitute for `Eq` in collision-sensitive maps.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::fingerprint::Fnv1a::new();
        // Pattern cells in canonical (BTreeMap) order, then the scalars.
        for (o, c) in self.pattern.iter() {
            h.write_i64(o.dx as i64);
            h.write_i64(o.dy as i64);
            h.write_i64(o.dz as i64);
            h.write_i64(c as i64);
        }
        h.write_i64(self.buffers as i64);
        h.write_i64(self.dtype.bytes() as i64);
        h.write_i64(self.size.x as i64);
        h.write_i64(self.size.y as i64);
        h.write_i64(self.size.z as i64);
        h.finish()
    }
}

impl From<&StencilInstance> for InstanceKey {
    fn from(instance: &StencilInstance) -> Self {
        InstanceKey::of(instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::StencilKernel;
    use std::collections::HashMap;

    fn lap(n: u32) -> StencilInstance {
        StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(n)).unwrap()
    }

    #[test]
    fn kernel_name_does_not_affect_the_key() {
        // Same pattern/buffers/dtype under two names: identical keys.
        let k = StencilKernel::laplacian();
        let renamed =
            StencilKernel::new("totally-different", k.pattern().clone(), k.buffers(), k.dtype())
                .unwrap();
        let a = StencilInstance::new(k, GridSize::cube(64)).unwrap();
        let b = StencilInstance::new(renamed, GridSize::cube(64)).unwrap();
        assert_ne!(a.id(), b.id());
        assert_eq!(InstanceKey::of(&a), InstanceKey::of(&b));
        assert_eq!(InstanceKey::of(&a).fingerprint(), InstanceKey::of(&b).fingerprint());
    }

    #[test]
    fn feature_relevant_fields_all_discriminate() {
        let base = InstanceKey::of(&lap(64));
        // Size.
        assert_ne!(base, InstanceKey::of(&lap(65)));
        // Pattern.
        let wider = StencilInstance::new(StencilKernel::laplacian6(), GridSize::cube(64)).unwrap();
        assert_ne!(base, InstanceKey::of(&wider));
        // Buffers and dtype (gradient: same laplacian-family shape family,
        // different buffers/dtype than tricubic).
        let k = StencilKernel::laplacian();
        let more_buffers =
            StencilKernel::new("laplacian", k.pattern().clone(), 2, k.dtype()).unwrap();
        let q = StencilInstance::new(more_buffers, GridSize::cube(64)).unwrap();
        assert_ne!(base, InstanceKey::of(&q));
        let as_f32 =
            StencilKernel::new("laplacian", k.pattern().clone(), k.buffers(), DType::F32).unwrap();
        let q = StencilInstance::new(as_f32, GridSize::cube(64)).unwrap();
        assert_ne!(base, InstanceKey::of(&q));
    }

    #[test]
    fn keys_work_as_hash_map_keys() {
        let mut m: HashMap<InstanceKey, u32> = HashMap::new();
        m.insert(InstanceKey::of(&lap(64)), 1);
        m.insert(InstanceKey::of(&lap(128)), 2);
        m.insert(InstanceKey::of(&lap(64)), 3); // overwrite, not a new entry
        assert_eq!(m.len(), 2);
        assert_eq!(m[&lap(64).key()], 3);
    }

    #[test]
    fn accessors_report_the_projected_fields() {
        let key = InstanceKey::of(&lap(96));
        assert_eq!(key.size(), GridSize::cube(96));
        assert_eq!(key.dim(), 3);
        let blur =
            StencilInstance::new(StencilKernel::blur(), GridSize::square(512)).unwrap().key();
        assert_eq!(blur.dim(), 2);
    }

    #[test]
    fn fingerprint_is_pinned_across_builds() {
        // The fingerprint feeds logging and (future) cross-process
        // sharding, so its value must never drift between toolchains or
        // releases. This pins one concrete value; if this test ever fails,
        // the hash changed and every sharded deployment would re-shuffle.
        let fp = InstanceKey::of(&lap(128)).fingerprint();
        assert_eq!(fp, PINNED_LAP128_FINGERPRINT);
        // And it discriminates (probabilistically) between keys.
        assert_ne!(fp, InstanceKey::of(&lap(129)).fingerprint());
    }

    const PINNED_LAP128_FINGERPRINT: u64 = 0x2fea_583f_93a3_3344;

    #[test]
    fn instance_key_method_matches_of() {
        let q = lap(80);
        assert_eq!(q.key(), InstanceKey::of(&q));
        assert_eq!(q.key(), InstanceKey::from(&q));
    }
}
