//! Error type shared by the modeling layer.

use std::fmt;

/// Errors produced while constructing or validating stencil model objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A stencil pattern violated a structural requirement.
    InvalidPattern(String),
    /// A kernel/size/tuning combination is dimensionally inconsistent
    /// (e.g. a 2-D kernel paired with a 3-D grid).
    DimMismatch { expected: u8, found: u8 },
    /// A scalar parameter fell outside its admissible range.
    OutOfRange { what: &'static str, value: i64, lo: i64, hi: i64 },
    /// A feature vector could not be decoded back into a stencil execution.
    DecodeError(String),
    /// One candidate of a batch was inadmissible for the queried instance.
    /// Carries the candidate's index in the batch so callers can point at
    /// the offending entry.
    InadmissibleCandidate { index: usize, source: Box<ModelError> },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidPattern(msg) => write!(f, "invalid stencil pattern: {msg}"),
            ModelError::DimMismatch { expected, found } => {
                write!(f, "dimensionality mismatch: expected {expected}-D, found {found}-D")
            }
            ModelError::OutOfRange { what, value, lo, hi } => {
                write!(f, "{what} = {value} outside [{lo}, {hi}]")
            }
            ModelError::DecodeError(msg) => write!(f, "feature decode error: {msg}"),
            ModelError::InadmissibleCandidate { index, source } => {
                write!(f, "candidate #{index} is inadmissible: {source}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = ModelError::InvalidPattern("empty".into());
        assert!(e.to_string().contains("empty"));
        let e = ModelError::DimMismatch { expected: 2, found: 3 };
        assert!(e.to_string().contains("expected 2-D"));
        let e = ModelError::OutOfRange { what: "bx", value: 4096, lo: 2, hi: 1024 };
        assert!(e.to_string().contains("bx"));
        assert!(e.to_string().contains("4096"));
        let e = ModelError::DecodeError("bad".into());
        assert!(e.to_string().contains("bad"));
        let e = ModelError::InadmissibleCandidate {
            index: 17,
            source: Box::new(ModelError::OutOfRange { what: "bz", value: 8, lo: 1, hi: 1 }),
        };
        assert!(e.to_string().contains("#17"));
        assert!(e.to_string().contains("bz"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ModelError::InvalidPattern("x".into()));
    }
}
