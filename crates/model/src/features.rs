//! Feature encoding of stencil executions (paper Section III).
//!
//! A [`StencilExecution`] `(k, s, t)` is mapped to a real vector whose
//! components are all normalized to `[0, 1]`:
//!
//! * the dense pattern occupancy matrix of side `2R + 1` (R = maximum
//!   supported offset, 3 by default, giving `7^3 = 343` cells) with per-cell
//!   access counts,
//! * the buffer count and the element type,
//! * the input size (log2-scaled per axis),
//! * the five tuning parameters.
//!
//! This *concatenated* layout is the paper's encoding
//! ([`EncodingKind::PaperConcat`]) and is invertible ([`FeatureEncoder::decode`]).
//!
//! With a linear ranking function, concatenated features give every stencil
//! instance the same induced ordering over tunings (instance features are
//! constant within an instance, so they cancel in pairwise comparisons).
//! [`EncodingKind::Interaction`] therefore additionally emits the outer
//! product of a compact instance descriptor with a tuning descriptor — the
//! standard joint feature map of structural SVMs (and of the click-through
//! ranking work the paper builds on), which lets a *linear* model express
//! instance-conditional tuning preferences. `Interaction` is the default;
//! `PaperConcat` is kept for the ablation experiment.

use serde::{Deserialize, Serialize};

use crate::dtype::DType;
use crate::error::ModelError;
use crate::execution::StencilExecution;
use crate::instance::StencilInstance;
use crate::kernel::StencilKernel;
use crate::size::GridSize;
use crate::tuning::{TuningSpace, TuningVector};

/// Which feature layout to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EncodingKind {
    /// The paper's flat concatenation: pattern + buffers + dtype + size + tuning.
    PaperConcat,
    /// `PaperConcat` plus instance/tuning interaction terms (default).
    Interaction,
}

/// Normalization constants and layout choices of the encoder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Maximum representable neighbour offset (pattern box side `2R + 1`).
    pub max_offset: u32,
    /// Feature layout.
    pub encoding: EncodingKind,
    /// Normalization cap for per-cell access counts.
    pub count_cap: u16,
    /// Normalization cap for the buffer count.
    pub max_buffers: u8,
    /// `log2` of the largest representable grid extent.
    pub size_log2_max: f64,
    /// `log2` of the largest blocking size.
    pub block_log2_max: f64,
    /// `log2` of the largest chunk size.
    pub chunk_log2_max: f64,
    /// Largest unroll factor.
    pub unroll_max: u32,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            max_offset: 3,
            encoding: EncodingKind::Interaction,
            count_cap: 8,
            max_buffers: 4,
            size_log2_max: 12.0,  // up to 4096 per axis
            block_log2_max: 10.0, // up to 1024
            chunk_log2_max: 8.0,  // up to 256
            unroll_max: 8,
        }
    }
}

impl FeatureConfig {
    /// The paper-faithful configuration (concatenated layout).
    pub fn paper() -> Self {
        FeatureConfig { encoding: EncodingKind::PaperConcat, ..Default::default() }
    }
}

/// Number of components in the instance descriptor `sigma`.
const SIGMA_LEN: usize = 13;
/// Number of components in the tuning descriptor `pi`.
const PI_LEN: usize = 14;

/// Encodes stencil executions into normalized feature vectors and decodes
/// them back.
///
/// ```
/// use stencil_model::*;
///
/// let encoder = FeatureEncoder::paper_concat();
/// let q = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(128)).unwrap();
/// let exec = StencilExecution::new(q, TuningVector::new(64, 16, 8, 2, 4)).unwrap();
///
/// let features = encoder.encode(&exec);
/// assert!(features.iter().all(|v| (0.0..=1.0).contains(v)));
///
/// // The encoding is invertible (paper Section III).
/// let back = encoder.decode(&features).unwrap();
/// assert_eq!(back.tuning(), exec.tuning());
/// assert_eq!(back.instance().size(), exec.instance().size());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureEncoder {
    config: FeatureConfig,
}

impl FeatureEncoder {
    /// Creates an encoder for the given configuration.
    pub fn new(config: FeatureConfig) -> Self {
        FeatureEncoder { config }
    }

    /// Encoder with the default (interaction) configuration.
    pub fn default_interaction() -> Self {
        Self::new(FeatureConfig::default())
    }

    /// Encoder with the paper's concatenated configuration.
    pub fn paper_concat() -> Self {
        Self::new(FeatureConfig::paper())
    }

    /// The active configuration.
    pub fn config(&self) -> &FeatureConfig {
        &self.config
    }

    /// Side of the dense pattern box.
    fn pattern_side(&self) -> usize {
        (2 * self.config.max_offset + 1) as usize
    }

    /// Number of pattern cells in the flat block.
    fn pattern_cells(&self) -> usize {
        let s = self.pattern_side();
        s * s * s
    }

    /// Length of the concatenated (paper) block.
    fn concat_len(&self) -> usize {
        // pattern + buffers + dtype + size (3) + tuning (5)
        self.pattern_cells() + 1 + 1 + 3 + 5
    }

    /// Total feature dimensionality for this configuration.
    pub fn dim(&self) -> usize {
        match self.config.encoding {
            EncodingKind::PaperConcat => self.concat_len(),
            EncodingKind::Interaction => self.concat_len() + SIGMA_LEN * PI_LEN,
        }
    }

    /// Encodes `exec` into a fresh vector.
    pub fn encode(&self, exec: &StencilExecution) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.dim());
        self.encode_into(exec, &mut out);
        out
    }

    /// Encodes `exec`, reusing `out` (cleared first). Every emitted value is
    /// clamped to `[0, 1]`.
    pub fn encode_into(&self, exec: &StencilExecution, out: &mut Vec<f64>) {
        out.clear();
        let q = exec.instance();
        let t = exec.tuning();
        self.write_instance_prefix(q, out);
        self.write_tuning_block(t, out);
        if self.config.encoding == EncodingKind::Interaction {
            let sigma = self.instance_descriptor(q);
            let pi = self.tuning_descriptor(
                q.size(),
                q.kernel().pattern().radius_per_axis(),
                q.kernel().buffers(),
                q.kernel().dtype(),
                t,
            );
            write_interactions(&sigma, &pi, out);
        }
        debug_assert_eq!(out.len(), self.dim());
        debug_assert!(out.iter().all(|v| (0.0..=1.0).contains(v)), "feature out of [0,1]");
    }

    /// Precomputes everything about `q` that candidate encoding needs:
    /// the instance feature prefix, the `sigma` descriptor and the scalar
    /// kernel/size facts feeding the per-tuning `pi` descriptor. Build this
    /// once per query, then call [`encode_candidate`](Self::encode_candidate)
    /// per tuning vector — the batch hot path pays neither a
    /// [`StencilInstance`] clone nor a [`TuningSpace`] construction per
    /// candidate.
    pub fn query_features(&self, q: &StencilInstance) -> QueryFeatures {
        let mut prefix = Vec::with_capacity(self.concat_len() - 5);
        self.write_instance_prefix(q, &mut prefix);
        QueryFeatures {
            prefix,
            sigma: self.instance_descriptor(q),
            size: q.size(),
            radius: q.kernel().pattern().radius_per_axis(),
            buffers: q.kernel().buffers(),
            dtype: q.kernel().dtype(),
            space: TuningSpace::for_dim(q.dim()).expect("instances are 2-D or 3-D"),
        }
    }

    /// Completes a precomputed query block with one tuning vector, reusing
    /// `out` (cleared first). Bit-for-bit identical to
    /// [`encode_into`](Self::encode_into) on `StencilExecution::new(q, t)`.
    ///
    /// Admissibility is *not* checked here — validate the batch up front
    /// with [`QueryFeatures::space`].
    pub fn encode_candidate(&self, qf: &QueryFeatures, t: TuningVector, out: &mut Vec<f64>) {
        out.clear();
        self.append_candidate(qf, t, out);
    }

    /// Like [`encode_candidate`](Self::encode_candidate) but appends to
    /// `out` instead of clearing it — the building block for row-major
    /// feature matrices handed to `LinearRanker::score_batch`.
    pub fn append_candidate(&self, qf: &QueryFeatures, t: TuningVector, out: &mut Vec<f64>) {
        out.extend_from_slice(&qf.prefix);
        self.write_tuning_block(t, out);
        if self.config.encoding == EncodingKind::Interaction {
            let pi = self.tuning_descriptor(qf.size, qf.radius, qf.buffers, qf.dtype, t);
            write_interactions(&qf.sigma, &pi, out);
        }
    }

    /// Writes the instance-dependent concat prefix: pattern occupancy block,
    /// buffer count, element type and (log2-normalized) grid size.
    fn write_instance_prefix(&self, q: &StencilInstance, out: &mut Vec<f64>) {
        let k = q.kernel();
        let cfg = &self.config;

        // Pattern block. Patterns wider than the supported offset are
        // clipped per-cell (the paper constrains patterns to the considered
        // offset up front; clipping keeps the encoder total).
        let r = cfg.max_offset as i32;
        let side = self.pattern_side();
        let start = out.len();
        out.resize(start + self.pattern_cells(), 0.0);
        for (o, c) in k.pattern().iter() {
            if o.dx.abs() > r || o.dy.abs() > r || o.dz.abs() > r {
                continue;
            }
            let ix = (o.dx + r) as usize;
            let iy = (o.dy + r) as usize;
            let iz = (o.dz + r) as usize;
            out[start + (iz * side + iy) * side + ix] =
                (c.min(cfg.count_cap) as f64) / cfg.count_cap as f64;
        }

        // Buffers and dtype.
        out.push((k.buffers().min(cfg.max_buffers) as f64) / cfg.max_buffers as f64);
        out.push(k.dtype().feature());

        // Size (log2-normalized; sz = 1 encodes to 0 for 2-D stencils).
        for extent in q.size().as_array() {
            out.push(norm_log2(extent, cfg.size_log2_max));
        }
    }

    /// Writes the five normalized tuning components.
    fn write_tuning_block(&self, t: TuningVector, out: &mut Vec<f64>) {
        let cfg = &self.config;
        out.push(norm_log2(t.bx, cfg.block_log2_max));
        out.push(norm_log2(t.by, cfg.block_log2_max));
        out.push(norm_log2(t.bz, cfg.block_log2_max));
        out.push(t.u.min(cfg.unroll_max) as f64 / cfg.unroll_max as f64);
        out.push(norm_log2(t.c, cfg.chunk_log2_max));
    }

    /// Compact per-instance descriptor `sigma` (constant within an instance).
    fn instance_descriptor(&self, q: &StencilInstance) -> [f64; SIGMA_LEN] {
        let k = q.kernel();
        let p = k.pattern();
        let (rx, ry, rz) = p.radius_per_axis();
        let rmax = self.config.max_offset as f64;
        let s = q.size();
        let log_points = (s.points() as f64).log2() / 33.0; // 2048^3 = 2^33
        [
            1.0,
            (p.len() as f64 / 64.0).min(1.0),
            rx as f64 / rmax,
            ry as f64 / rmax,
            rz as f64 / rmax,
            p.density().min(1.0),
            (k.buffers().min(self.config.max_buffers) as f64) / self.config.max_buffers as f64,
            k.dtype().feature(),
            if s.is_2d() { 0.0 } else { 1.0 },
            log_points.clamp(0.0, 1.0),
            norm_log2(s.x, self.config.size_log2_max),
            norm_log2(s.y, self.config.size_log2_max),
            norm_log2(s.z, self.config.size_log2_max),
        ]
    }

    /// Compact per-execution tuning descriptor `pi`. All components are
    /// static functions of `(k, s, t)`; none requires running the stencil.
    /// Takes the kernel/size facts as scalars so the batch path can feed it
    /// from a [`QueryFeatures`] without touching the instance.
    fn tuning_descriptor(
        &self,
        size: GridSize,
        radius: (u32, u32, u32),
        buffers: u8,
        dtype: DType,
        t: TuningVector,
    ) -> [f64; PI_LEN] {
        let cfg = &self.config;
        let (rx, ry, rz) = radius;
        // Effective blocks / tile count / chunk count mirror the arithmetic
        // of `StencilExecution` exactly (bit-for-bit), clipping each block
        // to the grid.
        let (bx, by, bz) = (t.bx.min(size.x), t.by.min(size.y), t.bz.min(size.z));
        let tiles_of = |n: u32, b: u32| n.div_ceil(b) as u64;
        let tile_count = tiles_of(size.x, bx) * tiles_of(size.y, by) * tiles_of(size.z, bz);
        let chunk_count = tile_count.div_ceil(t.c as u64);

        let tile_volume = bx as f64 * by as f64 * bz as f64;
        // Redundant halo loads per tile relative to its interior, total and
        // per axis (the per-axis terms let a linear model penalize thin
        // tiles along exactly the axes where the stencil is wide).
        let halo_x = 1.0 + 2.0 * rx as f64 / bx as f64;
        let halo_y = 1.0 + 2.0 * ry as f64 / by as f64;
        let halo_z = 1.0 + 2.0 * rz as f64 / bz as f64;
        let halo_ratio = halo_x * halo_y * halo_z;
        // Tile working set vs. a 256 KiB L2 (the paper's testbed), log-scaled.
        let bytes = dtype.bytes() as f64;
        let ws = bytes
            * (buffers as f64
                * (bx as f64 + 2.0 * rx as f64)
                * (by as f64 + 2.0 * ry as f64)
                * (bz as f64 + 2.0 * rz as f64)
                + tile_volume);
        let ws_ratio = ((ws / (256.0 * 1024.0)).log2() + 10.0) / 20.0;

        let tiles = tile_count as f64;
        let chunks = chunk_count as f64;
        let tiles_per_thread = ((tiles / (12.0 * t.c as f64)) + 1.0).log2() / 20.0;
        let chunk_balance = ((chunks / 12.0).log2() + 8.0) / 20.0;
        // Vector/unroll cleanup pressure on short x blocks.
        let cleanup = ((t.u + 1) as f64 * 8.0 / bx as f64).min(1.0);

        [
            norm_log2(t.bx, cfg.block_log2_max),
            norm_log2(t.by, cfg.block_log2_max),
            norm_log2(t.bz, cfg.block_log2_max),
            t.u.min(cfg.unroll_max) as f64 / cfg.unroll_max as f64,
            norm_log2(t.c, cfg.chunk_log2_max),
            (tile_volume.log2() / 30.0).clamp(0.0, 1.0),
            ((halo_ratio - 1.0) / 7.0).clamp(0.0, 1.0),
            ((halo_x - 1.0) / 2.0).clamp(0.0, 1.0),
            ((halo_y - 1.0) / 2.0).clamp(0.0, 1.0),
            ((halo_z - 1.0) / 2.0).clamp(0.0, 1.0),
            ws_ratio.clamp(0.0, 1.0),
            tiles_per_thread.clamp(0.0, 1.0),
            chunk_balance.clamp(0.0, 1.0),
            cleanup,
        ]
    }

    /// Reconstructs a stencil execution from a feature vector (the inverse
    /// mapping the paper requires of its framework). Works on the
    /// concatenated prefix, so vectors from either encoding decode. The
    /// kernel name is not part of the features and is synthesized.
    pub fn decode(&self, features: &[f64]) -> Result<StencilExecution, ModelError> {
        if features.len() < self.concat_len() {
            return Err(ModelError::DecodeError(format!(
                "need at least {} features, got {}",
                self.concat_len(),
                features.len()
            )));
        }
        let cfg = &self.config;
        let cells = self.pattern_cells();
        let mut dense = vec![0u16; cells];
        for (i, d) in dense.iter_mut().enumerate() {
            *d = (features[i].clamp(0.0, 1.0) * cfg.count_cap as f64).round() as u16;
        }
        let pattern = crate::pattern::StencilPattern::from_dense(&dense, cfg.max_offset)?;
        let mut idx = cells;
        let mut next = || {
            let v = features[idx];
            idx += 1;
            v
        };
        let buffers = ((next() * cfg.max_buffers as f64).round() as u8).clamp(1, cfg.max_buffers);
        let dtype = DType::from_feature(next());
        let sx = denorm_log2(next(), cfg.size_log2_max);
        let sy = denorm_log2(next(), cfg.size_log2_max);
        let sz = denorm_log2(next(), cfg.size_log2_max);
        let size = GridSize { x: sx, y: sy, z: sz };
        let bx = denorm_log2(next(), cfg.block_log2_max);
        let by = denorm_log2(next(), cfg.block_log2_max);
        let bz = denorm_log2(next(), cfg.block_log2_max);
        let u = (next() * cfg.unroll_max as f64).round() as u32;
        let c = denorm_log2(next(), cfg.chunk_log2_max);

        let kernel = StencilKernel::new("decoded", pattern, buffers, dtype)
            .map_err(|e| ModelError::DecodeError(e.to_string()))?;
        let instance = StencilInstance::new(kernel, size)
            .map_err(|e| ModelError::DecodeError(e.to_string()))?;
        let space = TuningSpace::for_dim(instance.dim())
            .map_err(|e| ModelError::DecodeError(e.to_string()))?;
        let tuning = space.clamp(&TuningVector::new(bx, by, bz, u, c));
        StencilExecution::new(instance, tuning).map_err(|e| ModelError::DecodeError(e.to_string()))
    }
}

/// Precomputed per-instance encoding state: the concat feature prefix plus
/// the scalar facts the per-candidate completion needs. Produced by
/// [`FeatureEncoder::query_features`]; consumed by
/// [`FeatureEncoder::encode_candidate`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryFeatures {
    /// Instance-dependent concat prefix (pattern + buffers + dtype + size).
    prefix: Vec<f64>,
    /// Instance descriptor `sigma` (only used by the interaction layout).
    sigma: [f64; SIGMA_LEN],
    size: GridSize,
    radius: (u32, u32, u32),
    buffers: u8,
    dtype: DType,
    space: TuningSpace,
}

impl QueryFeatures {
    /// The tuning space of the instance's dimensionality — borrow this for
    /// per-candidate admissibility checks instead of constructing a fresh
    /// space (or a [`StencilExecution`]) in the loop.
    pub fn space(&self) -> &TuningSpace {
        &self.space
    }

    /// Dimensionality of the underlying instance (2 or 3).
    pub fn dim(&self) -> u8 {
        self.space.dim
    }

    /// Whether `t` is admissible for the underlying instance.
    pub fn is_admissible(&self, t: &TuningVector) -> bool {
        self.space.contains(t)
    }

    /// The grid size of the underlying instance.
    pub fn size(&self) -> GridSize {
        self.size
    }
}

/// Appends the `sigma x pi` outer product, clamped to `[0, 1]`.
fn write_interactions(sigma: &[f64; SIGMA_LEN], pi: &[f64; PI_LEN], out: &mut Vec<f64>) {
    for &sv in sigma {
        for &pv in pi {
            out.push((sv * pv).clamp(0.0, 1.0));
        }
    }
}

/// `log2(v) / log2max`, clamped to `[0, 1]`; `v = 1` maps to 0.
fn norm_log2(v: u32, log2max: f64) -> f64 {
    if v <= 1 {
        return 0.0;
    }
    ((v as f64).log2() / log2max).clamp(0.0, 1.0)
}

/// Inverse of [`norm_log2`] with integer rounding.
fn denorm_log2(f: f64, log2max: f64) -> u32 {
    (f.clamp(0.0, 1.0) * log2max).exp2().round() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn executions_for_tests() -> Vec<StencilExecution> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let mut out = Vec::new();
        for k in StencilKernel::table3_kernels() {
            let sizes: Vec<GridSize> = if k.dim() == 2 {
                vec![GridSize::square(512), GridSize::d2(1024, 768)]
            } else {
                vec![GridSize::cube(64), GridSize::cube(128)]
            };
            let space = TuningSpace::for_dim(k.dim()).unwrap();
            for s in sizes {
                let q = StencilInstance::new(k.clone(), s).unwrap();
                for _ in 0..5 {
                    let t = space.random(&mut rng);
                    out.push(StencilExecution::new(q.clone(), t).unwrap());
                }
            }
        }
        out
    }

    #[test]
    fn dims_match_layouts() {
        let paper = FeatureEncoder::paper_concat();
        assert_eq!(paper.dim(), 343 + 1 + 1 + 3 + 5);
        let inter = FeatureEncoder::default_interaction();
        assert_eq!(inter.dim(), 353 + 13 * 14);
    }

    #[test]
    fn encode_len_matches_dim_and_range() {
        for enc in [FeatureEncoder::paper_concat(), FeatureEncoder::default_interaction()] {
            for e in executions_for_tests() {
                let f = enc.encode(&e);
                assert_eq!(f.len(), enc.dim());
                for (i, v) in f.iter().enumerate() {
                    assert!((0.0..=1.0).contains(v), "feature {i} = {v} out of range for {e}");
                }
            }
        }
    }

    #[test]
    fn interaction_prefix_equals_paper_concat() {
        let paper = FeatureEncoder::paper_concat();
        let inter = FeatureEncoder::default_interaction();
        for e in executions_for_tests().into_iter().take(20) {
            let fp = paper.encode(&e);
            let fi = inter.encode(&e);
            assert_eq!(&fi[..fp.len()], &fp[..]);
        }
    }

    #[test]
    fn decode_roundtrips_table3_executions() {
        for enc in [FeatureEncoder::paper_concat(), FeatureEncoder::default_interaction()] {
            for e in executions_for_tests() {
                let f = enc.encode(&e);
                let back = enc.decode(&f).unwrap();
                assert_eq!(back.instance().kernel().pattern(), e.instance().kernel().pattern());
                assert_eq!(back.instance().kernel().buffers(), e.instance().kernel().buffers());
                assert_eq!(back.instance().kernel().dtype(), e.instance().kernel().dtype());
                assert_eq!(back.instance().size(), e.instance().size());
                assert_eq!(back.tuning(), e.tuning(), "tuning mismatch for {e}");
            }
        }
    }

    #[test]
    fn decode_rejects_short_vectors() {
        let enc = FeatureEncoder::paper_concat();
        assert!(enc.decode(&[0.0; 10]).is_err());
    }

    #[test]
    fn decode_rejects_empty_pattern() {
        let enc = FeatureEncoder::paper_concat();
        let f = vec![0.0; enc.dim()];
        assert!(enc.decode(&f).is_err());
    }

    #[test]
    fn within_instance_only_tuning_features_vary_in_concat() {
        let enc = FeatureEncoder::paper_concat();
        let q = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(64)).unwrap();
        let a = enc
            .encode(&StencilExecution::new(q.clone(), TuningVector::new(8, 8, 8, 0, 1)).unwrap());
        let b = enc.encode(&StencilExecution::new(q, TuningVector::new(64, 16, 4, 4, 8)).unwrap());
        let tuning_start = enc.dim() - 5;
        assert_eq!(&a[..tuning_start], &b[..tuning_start]);
        assert_ne!(&a[tuning_start..], &b[tuning_start..]);
    }

    #[test]
    fn interaction_features_vary_within_instance() {
        let enc = FeatureEncoder::default_interaction();
        let q = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(64)).unwrap();
        let a = enc
            .encode(&StencilExecution::new(q.clone(), TuningVector::new(8, 8, 8, 0, 1)).unwrap());
        let b = enc.encode(&StencilExecution::new(q, TuningVector::new(64, 16, 4, 4, 8)).unwrap());
        let ndiff = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        // Tuning block (5) plus a healthy share of the 143 interaction terms.
        assert!(ndiff > 40, "only {ndiff} features vary");
    }

    #[test]
    fn norm_log2_properties() {
        assert_eq!(norm_log2(1, 10.0), 0.0);
        assert_eq!(norm_log2(0, 10.0), 0.0);
        assert!((norm_log2(1024, 10.0) - 1.0).abs() < 1e-12);
        assert!((norm_log2(32, 10.0) - 0.5).abs() < 1e-12);
        // Clamps above the max.
        assert_eq!(norm_log2(4096, 10.0), 1.0);
    }

    #[test]
    fn denorm_log2_inverts_norm_for_all_block_sizes() {
        for b in 2..=1024u32 {
            let f = norm_log2(b, 10.0);
            assert_eq!(denorm_log2(f, 10.0), b, "block {b}");
        }
    }

    #[test]
    fn encode_into_reuses_buffer() {
        let enc = FeatureEncoder::default_interaction();
        let execs = executions_for_tests();
        let mut buf = Vec::new();
        enc.encode_into(&execs[0], &mut buf);
        let first = buf.clone();
        enc.encode_into(&execs[1], &mut buf);
        assert_eq!(buf.len(), enc.dim());
        enc.encode_into(&execs[0], &mut buf);
        assert_eq!(buf, first);
    }

    #[test]
    fn encode_candidate_matches_encode_into_bit_for_bit() {
        for enc in [FeatureEncoder::paper_concat(), FeatureEncoder::default_interaction()] {
            for e in executions_for_tests() {
                let qf = enc.query_features(e.instance());
                let mut fast = Vec::new();
                enc.encode_candidate(&qf, e.tuning(), &mut fast);
                assert_eq!(fast, enc.encode(&e), "mismatch for {e}");
            }
        }
    }

    #[test]
    fn append_candidate_builds_row_major_matrices() {
        let enc = FeatureEncoder::default_interaction();
        let q = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(64)).unwrap();
        let qf = enc.query_features(&q);
        let cands = [TuningVector::new(8, 8, 8, 0, 1), TuningVector::new(64, 16, 4, 4, 8)];
        let mut matrix = Vec::new();
        for &t in &cands {
            enc.append_candidate(&qf, t, &mut matrix);
        }
        assert_eq!(matrix.len(), 2 * enc.dim());
        for (i, &t) in cands.iter().enumerate() {
            let exec = StencilExecution::new(q.clone(), t).unwrap();
            assert_eq!(&matrix[i * enc.dim()..(i + 1) * enc.dim()], &enc.encode(&exec)[..]);
        }
    }

    #[test]
    fn query_features_admissibility_matches_space() {
        let enc = FeatureEncoder::default_interaction();
        let q2 = StencilInstance::new(StencilKernel::blur(), GridSize::square(512)).unwrap();
        let qf = enc.query_features(&q2);
        assert_eq!(qf.dim(), 2);
        assert!(qf.is_admissible(&TuningVector::new(8, 8, 1, 0, 1)));
        assert!(!qf.is_admissible(&TuningVector::new(8, 8, 8, 0, 1)));
        assert_eq!(*qf.space(), TuningSpace::d2());
        assert_eq!(qf.size(), GridSize::square(512));
    }

    #[test]
    fn random_generic_patterns_encode_in_range() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        let enc = FeatureEncoder::default_interaction();
        for _ in 0..50 {
            let npts = rng.random_range(1..=30);
            let mut pat = crate::pattern::StencilPattern::new();
            pat.add(crate::pattern::Offset::ORIGIN);
            for _ in 0..npts {
                pat.add(crate::pattern::Offset::new(
                    rng.random_range(-3..=3),
                    rng.random_range(-3..=3),
                    rng.random_range(-3..=3),
                ));
            }
            let k = StencilKernel::new("rnd", pat, rng.random_range(1..=4), DType::F64).unwrap();
            let q = StencilInstance::new(k, GridSize::cube(rng.random_range(16..=256))).unwrap();
            let space = TuningSpace::d3();
            let t = space.random(&mut rng);
            let f = enc.encode(&StencilExecution::new(q, t).unwrap());
            assert!(f.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }
}
