//! Tuning vectors and the tuning parameter space (paper Section V).
//!
//! The PATUS transformations exposed by the paper are loop blocking
//! (`bx`, `by`, `bz`, each in `[2, 1024]`), innermost-loop unrolling
//! (`u` in `[0, 8]`) and the multi-threading chunk size (`c`, the number of
//! consecutive tiles assigned to one thread). The tuning vector is
//! `t = (bx, by, bz, u, c)`; for 2-D kernels `bz` is fixed to 1.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// A concrete setting of the five tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TuningVector {
    /// Blocking size along x.
    pub bx: u32,
    /// Blocking size along y.
    pub by: u32,
    /// Blocking size along z (1 for 2-D stencils).
    pub bz: u32,
    /// Innermost-loop unroll factor (0 = no unrolling).
    pub u: u32,
    /// Chunk size: consecutive tiles assigned to the same thread.
    pub c: u32,
}

impl TuningVector {
    /// Creates a tuning vector without range checking (use
    /// [`TuningSpace::contains`] to validate against a space).
    pub const fn new(bx: u32, by: u32, bz: u32, u: u32, c: u32) -> Self {
        TuningVector { bx, by, bz, u, c }
    }

    /// The five components in canonical order.
    pub fn as_array(&self) -> [u32; 5] {
        [self.bx, self.by, self.bz, self.u, self.c]
    }

    /// Tile volume `bx * by * bz` in points.
    pub fn tile_points(&self) -> u64 {
        self.bx as u64 * self.by as u64 * self.bz as u64
    }
}

impl fmt::Display for TuningVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(bx={}, by={}, bz={}, u={}, c={})", self.bx, self.by, self.bz, self.u, self.c)
    }
}

/// The admissible ranges of the tuning parameters for a given dimensionality.
///
/// ```
/// use stencil_model::{TuningSpace, TuningVector};
///
/// let space = TuningSpace::d3();
/// assert!(space.contains(&TuningVector::new(64, 16, 8, 4, 2)));
/// // The paper's predefined candidate set: 8640 power-of-two combinations.
/// assert_eq!(space.predefined_set().len(), 8640);
/// // 2-D stencils pin bz = 1 and search four parameters.
/// assert_eq!(TuningSpace::d2().genome_len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TuningSpace {
    /// Dimensionality of the stencils this space tunes (2 or 3).
    pub dim: u8,
    /// Smallest admissible blocking size.
    pub block_min: u32,
    /// Largest admissible blocking size.
    pub block_max: u32,
    /// Largest admissible unroll factor (minimum is 0).
    pub unroll_max: u32,
    /// Smallest admissible chunk size.
    pub chunk_min: u32,
    /// Largest admissible chunk size.
    pub chunk_max: u32,
}

impl TuningSpace {
    /// The paper's space for a given dimensionality: blocks in `[2, 1024]`,
    /// unroll in `[0, 8]`, chunks in `[1, 256]`.
    pub fn for_dim(dim: u8) -> Result<Self, ModelError> {
        if !(2..=3).contains(&dim) {
            return Err(ModelError::DimMismatch { expected: 3, found: dim });
        }
        Ok(TuningSpace {
            dim,
            block_min: 2,
            block_max: 1024,
            unroll_max: 8,
            chunk_min: 1,
            chunk_max: 256,
        })
    }

    /// Convenience constructor for 2-D stencils.
    pub fn d2() -> Self {
        Self::for_dim(2).unwrap()
    }

    /// Convenience constructor for 3-D stencils.
    pub fn d3() -> Self {
        Self::for_dim(3).unwrap()
    }

    /// Number of free parameters: 4 in 2-D (`bz` is pinned to 1), 5 in 3-D.
    pub fn genome_len(&self) -> usize {
        if self.dim == 2 {
            4
        } else {
            5
        }
    }

    /// Whether `t` lies inside this space.
    pub fn contains(&self, t: &TuningVector) -> bool {
        self.validate(t).is_ok()
    }

    /// Checks `t` against this space, naming the first offending field and
    /// its actual admissible bounds in the error.
    pub fn validate(&self, t: &TuningVector) -> Result<(), ModelError> {
        let block = |what: &'static str, v: u32| {
            if (self.block_min..=self.block_max).contains(&v) {
                Ok(())
            } else {
                Err(ModelError::OutOfRange {
                    what,
                    value: v as i64,
                    lo: self.block_min as i64,
                    hi: self.block_max as i64,
                })
            }
        };
        block("blocking size bx", t.bx)?;
        block("blocking size by", t.by)?;
        if self.dim == 2 {
            if t.bz != 1 {
                return Err(ModelError::OutOfRange {
                    what: "blocking size bz (pinned to 1 for 2-D stencils)",
                    value: t.bz as i64,
                    lo: 1,
                    hi: 1,
                });
            }
        } else {
            block("blocking size bz", t.bz)?;
        }
        if t.u > self.unroll_max {
            return Err(ModelError::OutOfRange {
                what: "unroll factor u",
                value: t.u as i64,
                lo: 0,
                hi: self.unroll_max as i64,
            });
        }
        if !(self.chunk_min..=self.chunk_max).contains(&t.c) {
            return Err(ModelError::OutOfRange {
                what: "chunk size c",
                value: t.c as i64,
                lo: self.chunk_min as i64,
                hi: self.chunk_max as i64,
            });
        }
        Ok(())
    }

    /// Clamps every component of `t` into the space.
    pub fn clamp(&self, t: &TuningVector) -> TuningVector {
        let cb = |b: u32| b.clamp(self.block_min, self.block_max);
        TuningVector {
            bx: cb(t.bx),
            by: cb(t.by),
            bz: if self.dim == 2 { 1 } else { cb(t.bz) },
            u: t.u.min(self.unroll_max),
            c: t.c.clamp(self.chunk_min, self.chunk_max),
        }
    }

    /// Draws a uniform random tuning vector. Block and chunk sizes are drawn
    /// log-uniformly (so that small and large tiles are equally likely), the
    /// unroll factor uniformly, mirroring how the paper's training tuning
    /// vectors are "randomly generated".
    pub fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> TuningVector {
        let log_uniform = |rng: &mut R, lo: u32, hi: u32| -> u32 {
            let (llo, lhi) = ((lo as f64).ln(), (hi as f64).ln());
            let v = (rng.random_range(llo..=lhi)).exp().round() as u32;
            v.clamp(lo, hi)
        };
        TuningVector {
            bx: log_uniform(rng, self.block_min, self.block_max),
            by: log_uniform(rng, self.block_min, self.block_max),
            bz: if self.dim == 2 { 1 } else { log_uniform(rng, self.block_min, self.block_max) },
            u: rng.random_range(0..=self.unroll_max),
            c: log_uniform(rng, self.chunk_min, self.chunk_max),
        }
    }

    /// The predefined, hierarchically sampled configuration set the paper
    /// ranks with the ordinal-regression model: all combinations of
    /// power-of-two parameter values, sized 1600 for 2-D stencils and 8640
    /// for 3-D ones (Section VI-A).
    pub fn predefined_set(&self) -> Vec<TuningVector> {
        fn pow2s(lo: u32, hi: u32) -> Vec<u32> {
            let mut v = Vec::new();
            let mut p = 1u32;
            while p < lo {
                p *= 2;
            }
            while p <= hi {
                v.push(p);
                p *= 2;
            }
            v
        }
        let unrolls = [0u32, 2, 4, 8];
        let chunks = [1u32, 4, 16, 64];
        let mut out = Vec::new();
        if self.dim == 2 {
            // 10 x 10 x 4 x 4 = 1600 combinations.
            for &bx in &pow2s(2, 1024) {
                for &by in &pow2s(2, 1024) {
                    for &u in &unrolls {
                        for &c in &chunks {
                            out.push(TuningVector::new(bx, by, 1, u, c));
                        }
                    }
                }
            }
        } else {
            // 10 x 9 x 6 x 4 x 4 = 8640 combinations: inner blocks get the
            // full range, outer blocks a progressively narrower one, which
            // is the "hierarchical" sampling the paper describes.
            for &bx in &pow2s(2, 1024) {
                for &by in &pow2s(2, 512) {
                    for &bz in &pow2s(2, 64) {
                        for &u in &unrolls {
                            for &c in &chunks {
                                out.push(TuningVector::new(bx, by, bz, u, c));
                            }
                        }
                    }
                }
            }
        }
        out
    }

    // ---- Genome mapping (used by the search engines) -----------------------

    /// Per-gene inclusive bounds in the integer search domain.
    pub fn genome_bounds(&self) -> Vec<(i64, i64)> {
        let b = (self.block_min as i64, self.block_max as i64);
        let mut v = vec![b, b];
        if self.dim == 3 {
            v.push(b);
        }
        v.push((0, self.unroll_max as i64));
        v.push((self.chunk_min as i64, self.chunk_max as i64));
        v
    }

    /// Per-gene flag: should mutation/recombination act on a log scale?
    pub fn genome_log_scaled(&self) -> Vec<bool> {
        let mut v = vec![true, true];
        if self.dim == 3 {
            v.push(true);
        }
        v.push(false); // unroll factor is small and linear
        v.push(true); // chunk size
        v
    }

    /// Encodes a tuning vector as a search genome.
    pub fn to_genome(&self, t: &TuningVector) -> Vec<i64> {
        let mut g = vec![t.bx as i64, t.by as i64];
        if self.dim == 3 {
            g.push(t.bz as i64);
        }
        g.push(t.u as i64);
        g.push(t.c as i64);
        g
    }

    /// Decodes a search genome back into a (clamped) tuning vector.
    pub fn from_genome(&self, g: &[i64]) -> Result<TuningVector, ModelError> {
        if g.len() != self.genome_len() {
            return Err(ModelError::DecodeError(format!(
                "genome length {} does not match space ({})",
                g.len(),
                self.genome_len()
            )));
        }
        let cast = |v: i64| v.clamp(0, u32::MAX as i64) as u32;
        let t = if self.dim == 2 {
            TuningVector::new(cast(g[0]), cast(g[1]), 1, cast(g[2]), cast(g[3]))
        } else {
            TuningVector::new(cast(g[0]), cast(g[1]), cast(g[2]), cast(g[3]), cast(g[4]))
        };
        Ok(self.clamp(&t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> impl Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn paper_space_bounds() {
        let s = TuningSpace::d3();
        assert_eq!(s.block_min, 2);
        assert_eq!(s.block_max, 1024);
        assert_eq!(s.unroll_max, 8);
        assert!(TuningSpace::for_dim(4).is_err());
        assert!(TuningSpace::for_dim(1).is_err());
    }

    #[test]
    fn contains_and_clamp() {
        let s = TuningSpace::d3();
        assert!(s.contains(&TuningVector::new(2, 1024, 64, 8, 1)));
        assert!(!s.contains(&TuningVector::new(1, 1024, 64, 8, 1)));
        assert!(!s.contains(&TuningVector::new(2, 2048, 64, 8, 1)));
        assert!(!s.contains(&TuningVector::new(2, 4, 4, 9, 1)));
        assert!(!s.contains(&TuningVector::new(2, 4, 4, 0, 0)));
        let clamped = s.clamp(&TuningVector::new(1, 4096, 0, 99, 0));
        assert!(s.contains(&clamped));
        assert_eq!(clamped, TuningVector::new(2, 1024, 2, 8, 1));
    }

    #[test]
    fn validate_names_the_offending_field() {
        let s3 = TuningSpace::d3();
        let err = |t: TuningVector| s3.validate(&t).unwrap_err().to_string();
        assert!(err(TuningVector::new(1, 8, 8, 0, 1)).contains("bx"));
        assert!(err(TuningVector::new(8, 2048, 8, 0, 1)).contains("by"));
        assert!(err(TuningVector::new(8, 8, 2048, 0, 1)).contains("bz"));
        assert!(err(TuningVector::new(8, 8, 8, 9, 1)).contains("unroll factor u"));
        assert!(err(TuningVector::new(8, 8, 8, 0, 0)).contains("chunk size c"));
        assert!(err(TuningVector::new(8, 8, 8, 0, 300)).contains("chunk size c"));
        // Bounds in the message are the actual admissible range.
        assert!(err(TuningVector::new(1, 8, 8, 0, 1)).contains("[2, 1024]"));
        assert!(err(TuningVector::new(8, 8, 8, 9, 1)).contains("[0, 8]"));

        let s2 = TuningSpace::d2();
        let msg = s2.validate(&TuningVector::new(8, 8, 8, 0, 1)).unwrap_err().to_string();
        assert!(msg.contains("bz"), "2-D bz error must name bz: {msg}");
        assert!(msg.contains("[1, 1]"), "2-D bz error must show its pinned bounds: {msg}");
        assert!(s2.validate(&TuningVector::new(8, 8, 1, 0, 1)).is_ok());
        assert!(s3.validate(&TuningVector::new(8, 8, 8, 0, 1)).is_ok());
    }

    #[test]
    fn two_d_space_pins_bz() {
        let s = TuningSpace::d2();
        assert!(s.contains(&TuningVector::new(4, 4, 1, 0, 1)));
        assert!(!s.contains(&TuningVector::new(4, 4, 2, 0, 1)));
        assert_eq!(s.clamp(&TuningVector::new(4, 4, 64, 0, 1)).bz, 1);
    }

    #[test]
    fn random_samples_stay_inside() {
        let mut r = rng();
        for space in [TuningSpace::d2(), TuningSpace::d3()] {
            for _ in 0..500 {
                let t = space.random(&mut r);
                assert!(space.contains(&t), "{t} outside {space:?}");
            }
        }
    }

    #[test]
    fn random_samples_cover_small_and_large_blocks() {
        let mut r = rng();
        let space = TuningSpace::d3();
        let mut small = 0;
        let mut large = 0;
        for _ in 0..1000 {
            let t = space.random(&mut r);
            if t.bx <= 8 {
                small += 1;
            }
            if t.bx >= 256 {
                large += 1;
            }
        }
        // Log-uniform sampling should hit both ends of the range often.
        assert!(small > 100, "small blocks undersampled: {small}");
        assert!(large > 100, "large blocks undersampled: {large}");
    }

    #[test]
    fn predefined_set_sizes_match_paper() {
        assert_eq!(TuningSpace::d2().predefined_set().len(), 1600);
        assert_eq!(TuningSpace::d3().predefined_set().len(), 8640);
    }

    #[test]
    fn predefined_set_is_valid_and_unique() {
        for space in [TuningSpace::d2(), TuningSpace::d3()] {
            let set = space.predefined_set();
            let mut dedup = set.clone();
            dedup.sort_by_key(|t| t.as_array());
            dedup.dedup();
            assert_eq!(dedup.len(), set.len(), "duplicates in predefined set");
            for t in &set {
                assert!(space.contains(t), "{t}");
                assert!(t.bx.is_power_of_two());
                assert!(t.by.is_power_of_two());
            }
        }
    }

    #[test]
    fn genome_roundtrip() {
        let mut r = rng();
        for space in [TuningSpace::d2(), TuningSpace::d3()] {
            for _ in 0..200 {
                let t = space.random(&mut r);
                let g = space.to_genome(&t);
                assert_eq!(g.len(), space.genome_len());
                let back = space.from_genome(&g).unwrap();
                assert_eq!(back, t);
            }
        }
    }

    #[test]
    fn genome_length_mismatch_is_error() {
        let s = TuningSpace::d3();
        assert!(s.from_genome(&[2, 2, 2]).is_err());
    }

    #[test]
    fn genome_bounds_align_with_genome_len() {
        for space in [TuningSpace::d2(), TuningSpace::d3()] {
            assert_eq!(space.genome_bounds().len(), space.genome_len());
            assert_eq!(space.genome_log_scaled().len(), space.genome_len());
        }
    }

    #[test]
    fn from_genome_clamps_out_of_range_values() {
        let s = TuningSpace::d3();
        let t = s.from_genome(&[-5, 1 << 40, 3, 100, 0]).unwrap();
        assert!(s.contains(&t));
    }

    #[test]
    fn tile_points() {
        assert_eq!(TuningVector::new(16, 8, 4, 0, 1).tile_points(), 512);
    }
}
