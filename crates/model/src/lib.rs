//! Stencil modeling framework (paper Section III).
//!
//! This crate defines the algebraic representation of a stencil computation
//! used throughout the workspace:
//!
//! * [`StencilPattern`] — the geometric access pattern (*shape*) of a stencil,
//!   a sparse occupancy map of neighbour offsets with access counts,
//! * [`StencilKernel`] — pattern + number of input buffers + element type,
//! * [`GridSize`] / [`StencilInstance`] — a kernel applied to a concrete
//!   input size `q = (k, s)`,
//! * [`TuningVector`] / [`TuningSpace`] — the PATUS-style transformation
//!   parameters `t = (bx, by, bz, u, c)` and their admissible ranges,
//! * [`StencilExecution`] — the triple `(k, s, t)`,
//! * [`InstanceKey`] — the canonical hashable projection of an instance onto
//!   its feature-relevant fields (what serving-layer decision caches key on),
//! * [`FeatureEncoder`] — the invertible mapping from an execution to a
//!   real-valued feature vector normalized to `[0, 1]`, which enables the
//!   structural (ordinal-regression) learning of the paper.
//!
//! Everything here is pure data modeling: no code is executed and no
//! hardware is touched. The execution engine lives in `stencil-exec`, the
//! simulated testbed in `stencil-machine`.

pub mod dtype;
pub mod error;
pub mod execution;
pub mod features;
pub mod fingerprint;
pub mod instance;
pub mod kernel;
pub mod key;
pub mod matrix;
pub mod pattern;
pub mod shape;
pub mod size;
pub mod stats;
pub mod tuning;

pub use dtype::DType;
pub use error::ModelError;
pub use execution::StencilExecution;
pub use features::{EncodingKind, FeatureConfig, FeatureEncoder, QueryFeatures};
pub use instance::StencilInstance;
pub use kernel::StencilKernel;
pub use key::InstanceKey;
pub use matrix::CandidateMatrix;
pub use pattern::{Offset, StencilPattern};
pub use shape::ShapeFamily;
pub use size::GridSize;
pub use tuning::{TuningSpace, TuningVector};
