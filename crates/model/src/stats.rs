//! Small measurement statistics shared by every layer that reports
//! runtimes (the execution engine, the simulated machine, the perf
//! snapshot emitter).

/// Median of an already sorted sample: the middle element for odd lengths,
/// the mean of the two middle elements for even lengths. Taking only the
/// upper-middle element (a common off-by-one) biases even-length
/// measurement samples high.
///
/// # Panics
/// Panics on an empty sample.
pub fn median_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    assert!(n > 0, "median of an empty sample");
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_lengths_take_the_middle() {
        assert_eq!(median_sorted(&[7.0]), 7.0);
        assert_eq!(median_sorted(&[1.0, 2.0, 9.0]), 2.0);
    }

    #[test]
    fn even_lengths_average_the_middle_pair() {
        assert_eq!(median_sorted(&[1.0, 3.0]), 2.0);
        assert_eq!(median_sorted(&[1.0, 2.0, 4.0, 9.0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        median_sorted(&[]);
    }
}
