//! Packed, lane-padded candidate feature matrices.
//!
//! The scoring hot loop sweeps thousands of encoded candidate rows per
//! query. Historically those rows lived in an ad-hoc `Vec<f64>` paired with
//! an out-of-band `dim`, re-grown per batch and with no layout guarantees.
//! [`CandidateMatrix`] makes the layout explicit: a row-major buffer whose
//! rows are padded to a multiple of the SIMD lane width ([`LANE_WIDTH`]),
//! with the first row placed on a 32-byte boundary when the allocator
//! cooperates (best effort only — consumers must never *rely* on
//! alignment; vector kernels use unaligned loads).
//!
//! Padding cells are always `0.0`, but scoring kernels deliberately compute
//! over `dim` columns only: including the pad lanes would change the
//! grouping of the four-accumulator reduction and therefore the rounding of
//! the result, breaking the workspace's bit-for-bit scalar/SIMD guarantee
//! (and `-0.0` rows could flip sign through `+ 0.0`).
//!
//! The matrix is designed for reuse: [`clear`](CandidateMatrix::clear)
//! drops the rows but keeps the allocation, so a steady-state scoring loop
//! that encodes a block, scores it and clears it performs zero allocations
//! after warm-up.

/// Number of `f64` lanes in one 256-bit SIMD register; rows are padded to a
/// multiple of this.
pub const LANE_WIDTH: usize = 4;

/// A reusable row-major feature matrix with lane-padded rows.
///
/// Rows are appended through [`push_row_with`](Self::push_row_with), which
/// hands the writer the underlying buffer — so encoders like
/// [`FeatureEncoder::append_candidate`](crate::FeatureEncoder::append_candidate)
/// write their features straight into the matrix with no intermediate row
/// vector.
///
/// ```
/// use stencil_model::CandidateMatrix;
///
/// let mut m = CandidateMatrix::new(3);
/// m.push_row_with(|out| out.extend_from_slice(&[1.0, 2.0, 3.0]));
/// m.push_row_with(|out| out.extend_from_slice(&[4.0, 5.0, 6.0]));
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.stride(), 4); // 3 padded up to the lane width
/// assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
/// assert_eq!(m.rows_data()[3], 0.0); // padding cell
/// ```
#[derive(Debug, Clone)]
pub struct CandidateMatrix {
    /// Backing storage: `lead` alignment cells, then `rows * stride` values.
    buf: Vec<f64>,
    /// Logical row width (feature dimensionality).
    dim: usize,
    /// Physical row width: `dim` rounded up to a multiple of [`LANE_WIDTH`].
    stride: usize,
    /// Leading pad (0..LANE_WIDTH cells) aligning row 0 to 32 bytes,
    /// recomputed whenever the matrix restarts from empty.
    lead: usize,
    rows: usize,
}

impl CandidateMatrix {
    /// An empty matrix for `dim`-wide feature rows.
    ///
    /// # Panics
    /// Panics when `dim` is zero — a zero-width row matrix cannot
    /// distinguish "no rows" from "many empty rows".
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "candidate matrix dimension must be positive");
        CandidateMatrix {
            buf: Vec::new(),
            dim,
            stride: dim.next_multiple_of(LANE_WIDTH),
            lead: 0,
            rows: 0,
        }
    }

    /// An empty matrix with capacity pre-reserved for `rows` rows, so the
    /// first block of pushes performs a single allocation (and the
    /// alignment pad computed against it stays valid).
    pub fn with_row_capacity(dim: usize, rows: usize) -> Self {
        let mut m = CandidateMatrix::new(dim);
        m.reserve_rows(rows);
        m
    }

    /// Ensures capacity for at least `rows` further rows.
    pub fn reserve_rows(&mut self, rows: usize) {
        self.buf.reserve((LANE_WIDTH - 1) + rows * self.stride);
    }

    /// Logical row width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Physical row width (`dim` rounded up to the lane width). Every row
    /// starts at a `stride` multiple inside [`rows_data`](Self::rows_data).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of rows currently held.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True when no rows are held.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The packed rows: exactly `rows() * stride()` values, row `i`
    /// occupying `[i * stride, i * stride + dim)` with zero padding after.
    pub fn rows_data(&self) -> &[f64] {
        &self.buf[self.lead..]
    }

    /// The `i`-th logical row (padding excluded).
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of range ({} rows)", self.rows);
        let start = self.lead + i * self.stride;
        &self.buf[start..start + self.dim]
    }

    /// Appends one row by handing `write` the backing buffer; the writer
    /// must append exactly `dim` values. The row is then padded with zeros
    /// to the stride.
    ///
    /// # Panics
    /// Panics when the writer appends anything other than `dim` values.
    pub fn push_row_with<F: FnOnce(&mut Vec<f64>)>(&mut self, write: F) {
        if self.rows == 0 {
            // Restarting from empty: re-derive the leading pad against the
            // current allocation so row 0 lands on a 32-byte boundary. A
            // later reallocation can shift this — alignment is best effort.
            self.buf.clear();
            let addr = self.buf.as_ptr() as usize;
            self.lead = (addr.next_multiple_of(32) - addr) / std::mem::size_of::<f64>();
            self.buf.resize(self.lead, 0.0);
        }
        let start = self.buf.len();
        write(&mut self.buf);
        let written = self.buf.len() - start;
        assert_eq!(
            written, self.dim,
            "row writer appended {written} values, matrix rows are {} wide",
            self.dim
        );
        self.buf.resize(start + self.stride, 0.0);
        self.rows += 1;
    }

    /// Drops all rows but keeps the allocation for reuse.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.rows = 0;
        self.lead = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_padded_to_the_lane_width() {
        let mut m = CandidateMatrix::new(5);
        assert_eq!(m.stride(), 8);
        m.push_row_with(|out| out.extend_from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]));
        assert_eq!(m.rows(), 1);
        assert_eq!(m.rows_data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 0.0, 0.0, 0.0]);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn lane_multiple_dims_get_no_padding() {
        let mut m = CandidateMatrix::new(4);
        assert_eq!(m.stride(), 4);
        m.push_row_with(|out| out.extend_from_slice(&[1.0, 2.0, 3.0, 4.0]));
        m.push_row_with(|out| out.extend_from_slice(&[5.0, 6.0, 7.0, 8.0]));
        assert_eq!(m.rows_data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn row_starts_land_on_stride_multiples() {
        let mut m = CandidateMatrix::new(3);
        for r in 0..7 {
            m.push_row_with(|out| out.extend_from_slice(&[r as f64, 0.5, -1.0]));
        }
        assert_eq!(m.rows_data().len(), 7 * m.stride());
        for r in 0..7 {
            let row = &m.rows_data()[r * m.stride()..r * m.stride() + 3];
            assert_eq!(row, &[r as f64, 0.5, -1.0]);
            assert_eq!(m.rows_data()[r * m.stride() + 3], 0.0);
        }
    }

    #[test]
    fn first_row_is_32_byte_aligned_without_reallocation() {
        // With capacity reserved up front the buffer never reallocates, so
        // the alignment pad computed at the first push stays valid.
        let mut m = CandidateMatrix::with_row_capacity(5, 16);
        for _ in 0..16 {
            m.push_row_with(|out| out.extend_from_slice(&[1.0; 5]));
        }
        assert_eq!(m.rows_data().as_ptr() as usize % 32, 0);
    }

    #[test]
    fn clear_keeps_the_allocation_and_allows_reuse() {
        let mut m = CandidateMatrix::with_row_capacity(3, 8);
        for _ in 0..8 {
            m.push_row_with(|out| out.extend_from_slice(&[1.0, 2.0, 3.0]));
        }
        let cap = {
            m.clear();
            assert!(m.is_empty());
            assert!(m.rows_data().is_empty());
            m.buf.capacity()
        };
        for _ in 0..8 {
            m.push_row_with(|out| out.extend_from_slice(&[4.0, 5.0, 6.0]));
        }
        assert_eq!(m.rows(), 8);
        assert_eq!(m.row(7), &[4.0, 5.0, 6.0]);
        assert_eq!(m.buf.capacity(), cap, "reuse must not reallocate");
    }

    #[test]
    #[should_panic(expected = "appended 2 values")]
    fn short_rows_are_rejected() {
        let mut m = CandidateMatrix::new(3);
        m.push_row_with(|out| out.extend_from_slice(&[1.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "matrix rows are 3 wide")]
    fn long_rows_are_rejected() {
        let mut m = CandidateMatrix::new(3);
        m.push_row_with(|out| out.extend_from_slice(&[1.0, 2.0, 3.0, 4.0]));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dim_is_rejected() {
        CandidateMatrix::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_access_is_bounds_checked() {
        let m = CandidateMatrix::new(2);
        let _ = m.row(0);
    }
}
