//! Stencil access patterns (*shapes*).
//!
//! A pattern records, relative to the updated point, which neighbouring grid
//! points a stencil reads and how many times. The paper represents a pattern
//! as a binary occupancy matrix of side `2R + 1` per dimension (`R` being the
//! maximum neighbour offset) and, when a stencil reads several buffers with
//! different shapes, as the *sum* of the per-buffer access matrices (its
//! `divergence` benchmark is the one case where counts exceed one).

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// A relative neighbour coordinate `(dx, dy, dz)`.
///
/// Two-dimensional stencils are embedded in 3-D space on the `dz = 0` plane,
/// exactly as the paper maps all kernels into one feature space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Offset {
    pub dx: i32,
    pub dy: i32,
    pub dz: i32,
}

impl Offset {
    /// Creates an offset.
    pub const fn new(dx: i32, dy: i32, dz: i32) -> Self {
        Offset { dx, dy, dz }
    }

    /// The origin (the point being updated).
    pub const ORIGIN: Offset = Offset::new(0, 0, 0);

    /// Chebyshev norm: the largest absolute component.
    pub fn radius(&self) -> u32 {
        self.dx.unsigned_abs().max(self.dy.unsigned_abs()).max(self.dz.unsigned_abs())
    }

    /// Whether the offset lies in the `dz = 0` plane.
    pub fn is_planar(&self) -> bool {
        self.dz == 0
    }
}

impl fmt::Display for Offset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.dx, self.dy, self.dz)
    }
}

/// A sparse stencil access pattern: neighbour offsets with access counts.
///
/// The map is kept sorted so that iteration order, equality, hashing of the
/// dense form, and feature encoding are all deterministic.
///
/// ```
/// use stencil_model::StencilPattern;
///
/// // The paper's running example: a 2-D five-point laplacian.
/// let p = StencilPattern::from_points([(0, -1, 0), (-1, 0, 0), (0, 0, 0), (1, 0, 0), (0, 1, 0)]);
/// assert_eq!(p.len(), 5);
/// assert_eq!(p.radius(), 1);
/// assert!(p.is_planar());
/// // Its dense radius-1 occupancy matrix has the familiar cross shape:
/// let z0 = &p.dense(1).unwrap()[9..18];
/// assert_eq!(z0, &[0, 1, 0, 1, 1, 1, 0, 1, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct StencilPattern {
    #[serde(with = "cells_as_pairs")]
    cells: BTreeMap<Offset, u16>,
}

/// Serializes the cell map as a sequence of `(offset, count)` pairs so that
/// formats with string-only map keys (JSON) can represent patterns.
mod cells_as_pairs {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(
        cells: &BTreeMap<Offset, u16>,
        ser: S,
    ) -> Result<S::Ok, S::Error> {
        let pairs: Vec<(Offset, u16)> = cells.iter().map(|(&o, &c)| (o, c)).collect();
        serde::Serialize::serialize(&pairs, ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> Result<BTreeMap<Offset, u16>, D::Error> {
        let pairs: Vec<(Offset, u16)> = serde::Deserialize::deserialize(de)?;
        Ok(pairs.into_iter().collect())
    }
}

impl StencilPattern {
    /// An empty pattern. Note that an empty pattern is not a valid kernel
    /// shape; [`StencilKernel`](crate::kernel::StencilKernel) validates this.
    pub fn new() -> Self {
        StencilPattern { cells: BTreeMap::new() }
    }

    /// Builds a pattern from unit-count offsets. Duplicate offsets accumulate.
    pub fn from_offsets<I: IntoIterator<Item = Offset>>(offsets: I) -> Self {
        let mut p = StencilPattern::new();
        for o in offsets {
            p.add(o);
        }
        p
    }

    /// Builds a pattern from `(dx, dy, dz)` triples. Duplicates accumulate.
    pub fn from_points<I: IntoIterator<Item = (i32, i32, i32)>>(points: I) -> Self {
        Self::from_offsets(points.into_iter().map(|(x, y, z)| Offset::new(x, y, z)))
    }

    /// Registers one more access to `offset`.
    pub fn add(&mut self, offset: Offset) {
        *self.cells.entry(offset).or_insert(0) += 1;
    }

    /// Registers `count` accesses to `offset`.
    pub fn add_count(&mut self, offset: Offset, count: u16) {
        if count > 0 {
            *self.cells.entry(offset).or_insert(0) += count;
        }
    }

    /// Number of *distinct* accessed points.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no point is accessed.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total number of accesses (counts summed over all points); for a
    /// single-buffer stencil this equals [`len`](Self::len).
    pub fn total_accesses(&self) -> u32 {
        self.cells.values().map(|&c| c as u32).sum()
    }

    /// Access count at `offset` (0 when not accessed).
    pub fn count(&self, offset: Offset) -> u16 {
        self.cells.get(&offset).copied().unwrap_or(0)
    }

    /// Whether `offset` is accessed at all.
    pub fn contains(&self, offset: Offset) -> bool {
        self.cells.contains_key(&offset)
    }

    /// Whether the updated point itself is read.
    pub fn reads_center(&self) -> bool {
        self.contains(Offset::ORIGIN)
    }

    /// Iterates over `(offset, count)` pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (Offset, u16)> + '_ {
        self.cells.iter().map(|(&o, &c)| (o, c))
    }

    /// Iterates over the distinct offsets in deterministic order.
    pub fn offsets(&self) -> impl Iterator<Item = Offset> + '_ {
        self.cells.keys().copied()
    }

    /// Maximum Chebyshev radius over all accessed points.
    pub fn radius(&self) -> u32 {
        self.cells.keys().map(|o| o.radius()).max().unwrap_or(0)
    }

    /// Per-axis maximum absolute offset `(rx, ry, rz)`.
    pub fn radius_per_axis(&self) -> (u32, u32, u32) {
        let mut r = (0u32, 0u32, 0u32);
        for o in self.cells.keys() {
            r.0 = r.0.max(o.dx.unsigned_abs());
            r.1 = r.1.max(o.dy.unsigned_abs());
            r.2 = r.2.max(o.dz.unsigned_abs());
        }
        r
    }

    /// Per-axis `(min, max)` offsets; `(0, 0)` per axis for an empty pattern.
    pub fn extents(&self) -> [(i32, i32); 3] {
        let mut e = [(0i32, 0i32); 3];
        let mut first = true;
        for o in self.cells.keys() {
            let c = [o.dx, o.dy, o.dz];
            for d in 0..3 {
                if first {
                    e[d] = (c[d], c[d]);
                } else {
                    e[d].0 = e[d].0.min(c[d]);
                    e[d].1 = e[d].1.max(c[d]);
                }
            }
            first = false;
        }
        e
    }

    /// True when all accesses lie on the `dz = 0` plane (a 2-D pattern).
    pub fn is_planar(&self) -> bool {
        self.cells.keys().all(|o| o.is_planar())
    }

    /// Geometric dimensionality: 2 when planar, 3 otherwise.
    pub fn dim(&self) -> u8 {
        if self.is_planar() {
            2
        } else {
            3
        }
    }

    /// Fraction of occupied cells within the bounding box of side `2R + 1`
    /// (per active dimension). Used as a derived learning feature.
    pub fn density(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let r = self.radius().max(1) as f64;
        let side = 2.0 * r + 1.0;
        let volume = if self.is_planar() { side * side } else { side * side * side };
        self.len() as f64 / volume
    }

    /// Element-wise sum of two patterns; this is how the paper combines the
    /// per-buffer access shapes of multi-buffer stencils.
    pub fn sum(&self, other: &StencilPattern) -> StencilPattern {
        let mut out = self.clone();
        for (o, c) in other.iter() {
            out.add_count(o, c);
        }
        out
    }

    /// Dense row-major occupancy matrix of side `2 * radius + 1` in each
    /// dimension (z-major, then y, then x), with the access count per cell.
    ///
    /// Fails when the requested radius cannot contain the pattern.
    pub fn dense(&self, radius: u32) -> Result<Vec<u16>, ModelError> {
        if self.radius() > radius {
            return Err(ModelError::InvalidPattern(format!(
                "pattern radius {} exceeds requested dense radius {}",
                self.radius(),
                radius
            )));
        }
        let side = (2 * radius + 1) as usize;
        let mut m = vec![0u16; side * side * side];
        let r = radius as i32;
        for (o, c) in self.iter() {
            let ix = (o.dx + r) as usize;
            let iy = (o.dy + r) as usize;
            let iz = (o.dz + r) as usize;
            m[(iz * side + iy) * side + ix] = c;
        }
        Ok(m)
    }

    /// Rebuilds a pattern from a dense matrix produced by [`dense`](Self::dense).
    pub fn from_dense(matrix: &[u16], radius: u32) -> Result<StencilPattern, ModelError> {
        let side = (2 * radius + 1) as usize;
        if matrix.len() != side * side * side {
            return Err(ModelError::InvalidPattern(format!(
                "dense matrix has {} cells, expected {}",
                matrix.len(),
                side * side * side
            )));
        }
        let r = radius as i32;
        let mut p = StencilPattern::new();
        for iz in 0..side {
            for iy in 0..side {
                for ix in 0..side {
                    let c = matrix[(iz * side + iy) * side + ix];
                    if c > 0 {
                        p.add_count(Offset::new(ix as i32 - r, iy as i32 - r, iz as i32 - r), c);
                    }
                }
            }
        }
        Ok(p)
    }

    /// A short structural fingerprint, e.g. `"7pt r1 3D"`.
    pub fn summary(&self) -> String {
        format!("{}pt r{} {}D", self.len(), self.radius(), self.dim())
    }
}

impl fmt::Display for StencilPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (o, c)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if c == 1 {
                write!(f, "{o}")?;
            } else {
                write!(f, "{o}x{c}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn five_point() -> StencilPattern {
        StencilPattern::from_points([(0, -1, 0), (-1, 0, 0), (0, 0, 0), (1, 0, 0), (0, 1, 0)])
    }

    #[test]
    fn five_point_laplacian_basics() {
        let p = five_point();
        assert_eq!(p.len(), 5);
        assert_eq!(p.total_accesses(), 5);
        assert_eq!(p.radius(), 1);
        assert_eq!(p.radius_per_axis(), (1, 1, 0));
        assert!(p.is_planar());
        assert_eq!(p.dim(), 2);
        assert!(p.reads_center());
    }

    #[test]
    fn duplicate_offsets_accumulate() {
        let p = StencilPattern::from_points([(1, 0, 0), (1, 0, 0), (0, 0, 0)]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.total_accesses(), 3);
        assert_eq!(p.count(Offset::new(1, 0, 0)), 2);
    }

    #[test]
    fn add_count_zero_is_noop() {
        let mut p = StencilPattern::new();
        p.add_count(Offset::ORIGIN, 0);
        assert!(p.is_empty());
        assert!(!p.contains(Offset::ORIGIN));
    }

    #[test]
    fn extents_cover_asymmetric_pattern() {
        // A 4-wide (tricubic-like) asymmetric span on x: offsets -1..=2.
        let p = StencilPattern::from_points([(-1, 0, 0), (0, 0, 0), (1, 0, 0), (2, 0, 0)]);
        assert_eq!(p.extents()[0], (-1, 2));
        assert_eq!(p.extents()[1], (0, 0));
        assert_eq!(p.radius(), 2);
    }

    #[test]
    fn sum_merges_counts() {
        let a = StencilPattern::from_points([(1, 0, 0), (0, 0, 0)]);
        let b = StencilPattern::from_points([(0, 1, 0), (0, 0, 0)]);
        let s = a.sum(&b);
        assert_eq!(s.len(), 3);
        assert_eq!(s.count(Offset::ORIGIN), 2);
        assert_eq!(s.total_accesses(), 4);
    }

    #[test]
    fn dense_roundtrip_five_point() {
        let p = five_point();
        let m = p.dense(1).unwrap();
        assert_eq!(m.len(), 27);
        // Paper's example matrix (z = 0 slice of radius-1 box):
        //   0 1 0
        //   1 1 1
        //   0 1 0
        let z0: Vec<u16> = m[9..18].to_vec();
        assert_eq!(z0, vec![0, 1, 0, 1, 1, 1, 0, 1, 0]);
        let back = StencilPattern::from_dense(&m, 1).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn dense_rejects_too_small_radius() {
        let p = StencilPattern::from_points([(3, 0, 0)]);
        assert!(p.dense(2).is_err());
        assert!(p.dense(3).is_ok());
    }

    #[test]
    fn from_dense_rejects_wrong_length() {
        assert!(StencilPattern::from_dense(&[0u16; 26], 1).is_err());
    }

    #[test]
    fn dense_larger_radius_embeds() {
        let p = five_point();
        let m = p.dense(3).unwrap();
        assert_eq!(m.len(), 343);
        let back = StencilPattern::from_dense(&m, 3).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn density_of_full_box_is_one() {
        let mut pts = Vec::new();
        for dz in -1..=1 {
            for dy in -1..=1 {
                for dx in -1..=1 {
                    pts.push((dx, dy, dz));
                }
            }
        }
        let p = StencilPattern::from_points(pts);
        assert!((p.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn planar_density_uses_2d_volume() {
        // Full 3x3 2-D box has density 1 even though embedded in 3-D space.
        let mut pts = Vec::new();
        for dy in -1..=1 {
            for dx in -1..=1 {
                pts.push((dx, dy, 0));
            }
        }
        let p = StencilPattern::from_points(pts);
        assert!((p.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_pattern_properties() {
        let p = StencilPattern::new();
        assert!(p.is_empty());
        assert_eq!(p.radius(), 0);
        assert_eq!(p.density(), 0.0);
        assert_eq!(p.extents(), [(0, 0); 3]);
        assert_eq!(p.dense(0).unwrap(), vec![0u16]);
    }

    #[test]
    fn display_is_compact() {
        let p = StencilPattern::from_points([(0, 0, 0), (0, 0, 0)]);
        assert_eq!(p.to_string(), "{(0,0,0)x2}");
    }

    #[test]
    fn offset_radius_is_chebyshev() {
        assert_eq!(Offset::new(-3, 2, 1).radius(), 3);
        assert_eq!(Offset::ORIGIN.radius(), 0);
    }

    #[test]
    fn iteration_order_is_deterministic() {
        let a = StencilPattern::from_points([(1, 0, 0), (-1, 0, 0), (0, 1, 0)]);
        let b = StencilPattern::from_points([(0, 1, 0), (1, 0, 0), (-1, 0, 0)]);
        let oa: Vec<_> = a.offsets().collect();
        let ob: Vec<_> = b.offsets().collect();
        assert_eq!(oa, ob);
    }
}
