//! Stencil kernels `k = (s, b, d)`: a pattern, a buffer count and an element
//! type, as defined in paper Section III-A.
//!
//! The constructors for the nine evaluation kernels of Table III live here so
//! that the execution engine, the simulated machine and the experiment
//! harness all agree on their shapes:
//!
//! | kernel      | type | shape                                | buffers | type  |
//! |-------------|------|--------------------------------------|---------|-------|
//! | blur        | 2-D  | 5x5 hypercube                        | 1       | float |
//! | edge        | 2-D  | 3x3 hypercube                        | 1       | float |
//! | game-of-life| 2-D  | 3x3 hypercube                        | 1       | float |
//! | wave        | 3-D  | 13-pt laplacian + 1                  | 1 (+1)  | float |
//! | tricubic    | 3-D  | 4x4x4 hypercube                      | 3       | float |
//! | divergence  | 3-D  | 6-pt laplacian (centre not read)     | 3       | double|
//! | gradient    | 3-D  | 6-pt laplacian (centre not read)     | 1       | double|
//! | laplacian   | 3-D  | 7-pt laplacian                       | 1       | double|
//! | laplacian6  | 3-D  | 19-pt laplacian                      | 1       | double|

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::dtype::DType;
use crate::error::ModelError;
use crate::pattern::{Offset, StencilPattern};
use crate::shape::{Axis, ShapeFamily};

/// A stencil kernel: the static part of a stencil computation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StencilKernel {
    name: String,
    pattern: StencilPattern,
    buffers: u8,
    dtype: DType,
}

impl StencilKernel {
    /// Creates a kernel, validating that the pattern is non-empty and the
    /// buffer count is at least one.
    pub fn new(
        name: impl Into<String>,
        pattern: StencilPattern,
        buffers: u8,
        dtype: DType,
    ) -> Result<Self, ModelError> {
        if pattern.is_empty() {
            return Err(ModelError::InvalidPattern("kernel pattern must be non-empty".into()));
        }
        if buffers == 0 {
            return Err(ModelError::OutOfRange { what: "buffers", value: 0, lo: 1, hi: 8 });
        }
        Ok(StencilKernel { name: name.into(), pattern, buffers, dtype })
    }

    /// Kernel identifier (unique within a corpus).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The combined access pattern.
    pub fn pattern(&self) -> &StencilPattern {
        &self.pattern
    }

    /// Number of input buffers read per update.
    pub fn buffers(&self) -> u8 {
        self.buffers
    }

    /// Element type of all buffers.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Geometric dimensionality of the kernel (2 or 3).
    pub fn dim(&self) -> u8 {
        self.pattern.dim()
    }

    /// Floating point operations per updated grid point. We count one
    /// multiply and one add per access (a fused multiply-add pair), the same
    /// accounting PATUS uses for its GFlop/s reports.
    pub fn flops_per_point(&self) -> u64 {
        2 * self.pattern.total_accesses() as u64
    }

    /// Bytes of input data nominally read per point (before caching).
    pub fn bytes_read_per_point(&self) -> u64 {
        self.pattern.total_accesses() as u64 * self.dtype.bytes() as u64
    }

    // ---- Table III kernels -------------------------------------------------

    /// 2-D 5x5 box blur, 1 float buffer.
    pub fn blur() -> Self {
        Self::new("blur", ShapeFamily::Hypercube.build(2, 2).unwrap(), 1, DType::F32).unwrap()
    }

    /// 2-D 3x3 edge detection (convolution), 1 float buffer.
    pub fn edge() -> Self {
        Self::new("edge", ShapeFamily::Hypercube.build(2, 1).unwrap(), 1, DType::F32).unwrap()
    }

    /// Conway's game of life on a float grid, 3x3 neighbourhood.
    pub fn game_of_life() -> Self {
        Self::new("game-of-life", ShapeFamily::Hypercube.build(2, 1).unwrap(), 1, DType::F32)
            .unwrap()
    }

    /// 3-D wave equation: 13-point laplacian on `u(t)` plus the centre point
    /// of `u(t-1)`; the paper counts it as one read buffer ("+1").
    pub fn wave() -> Self {
        let mut p = ShapeFamily::Laplacian.build(3, 2).unwrap();
        p.add(Offset::ORIGIN); // the u(t-1) centre access
        Self::new("wave", p, 1, DType::F32).unwrap()
    }

    /// Tricubic interpolation: 4x4x4 neighbourhood (offsets -1..=2), 3 float
    /// buffers.
    pub fn tricubic() -> Self {
        let mut p = StencilPattern::new();
        for dz in -1..=2 {
            for dy in -1..=2 {
                for dx in -1..=2 {
                    p.add(Offset::new(dx, dy, dz));
                }
            }
        }
        Self::new("tricubic", p, 3, DType::F32).unwrap()
    }

    /// Divergence operator: three buffers each read along one axis; the
    /// combined pattern is the 6-point star without the centre, with each
    /// buffer contributing a 2-point line.
    pub fn divergence() -> Self {
        let mut p = StencilPattern::new();
        for axis in Axis::ALL {
            p.add(axis.offset(1));
            p.add(axis.offset(-1));
        }
        Self::new("divergence", p, 3, DType::F64).unwrap()
    }

    /// Gradient magnitude: 6-point star without the centre, 1 double buffer.
    pub fn gradient() -> Self {
        let mut p = StencilPattern::new();
        for axis in Axis::ALL {
            p.add(axis.offset(1));
            p.add(axis.offset(-1));
        }
        Self::new("gradient", p, 1, DType::F64).unwrap()
    }

    /// Classic 7-point laplacian, 1 double buffer.
    pub fn laplacian() -> Self {
        Self::new("laplacian", ShapeFamily::Laplacian.build(3, 1).unwrap(), 1, DType::F64).unwrap()
    }

    /// 6th-order 19-point laplacian, 1 double buffer.
    pub fn laplacian6() -> Self {
        Self::new("laplacian6", ShapeFamily::Laplacian.build(3, 3).unwrap(), 1, DType::F64).unwrap()
    }

    /// All nine Table III kernels in paper order.
    pub fn table3_kernels() -> Vec<StencilKernel> {
        vec![
            Self::blur(),
            Self::edge(),
            Self::game_of_life(),
            Self::wave(),
            Self::tricubic(),
            Self::divergence(),
            Self::gradient(),
            Self::laplacian(),
            Self::laplacian6(),
        ]
    }
}

impl fmt::Display for StencilKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} | {} buffer(s) | {}]",
            self.name,
            self.pattern.summary(),
            self.buffers,
            self.dtype
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_empty_pattern_and_zero_buffers() {
        assert!(StencilKernel::new("x", StencilPattern::new(), 1, DType::F32).is_err());
        let p = StencilPattern::from_points([(0, 0, 0)]);
        assert!(StencilKernel::new("x", p, 0, DType::F32).is_err());
    }

    #[test]
    fn table3_shapes_match_paper() {
        assert_eq!(StencilKernel::blur().pattern().len(), 25);
        assert_eq!(StencilKernel::blur().dim(), 2);
        assert_eq!(StencilKernel::edge().pattern().len(), 9);
        assert_eq!(StencilKernel::game_of_life().pattern().len(), 9);
        // 13-point laplacian + 1 extra centre access.
        let wave = StencilKernel::wave();
        assert_eq!(wave.pattern().len(), 13);
        assert_eq!(wave.pattern().total_accesses(), 14);
        assert_eq!(StencilKernel::tricubic().pattern().len(), 64);
        assert_eq!(StencilKernel::tricubic().buffers(), 3);
        let div = StencilKernel::divergence();
        assert_eq!(div.pattern().len(), 6);
        assert!(!div.pattern().reads_center());
        assert_eq!(div.buffers(), 3);
        assert_eq!(div.dtype(), DType::F64);
        let grad = StencilKernel::gradient();
        assert_eq!(grad.pattern().len(), 6);
        assert!(!grad.pattern().reads_center());
        assert_eq!(grad.buffers(), 1);
        assert_eq!(StencilKernel::laplacian().pattern().len(), 7);
        assert_eq!(StencilKernel::laplacian6().pattern().len(), 19);
        assert_eq!(StencilKernel::laplacian6().pattern().radius(), 3);
    }

    #[test]
    fn table3_has_nine_kernels_with_unique_names() {
        let ks = StencilKernel::table3_kernels();
        assert_eq!(ks.len(), 9);
        let mut names: Vec<_> = ks.iter().map(|k| k.name().to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn flops_counting() {
        // 7-point laplacian: 14 flops/point (7 FMA pairs).
        assert_eq!(StencilKernel::laplacian().flops_per_point(), 14);
        // Wave counts its extra centre access: 14 accesses -> 28 flops.
        assert_eq!(StencilKernel::wave().flops_per_point(), 28);
    }

    #[test]
    fn bytes_read_depends_on_dtype() {
        assert_eq!(StencilKernel::laplacian().bytes_read_per_point(), 7 * 8);
        assert_eq!(StencilKernel::edge().bytes_read_per_point(), 9 * 4);
    }

    #[test]
    fn display_mentions_name_and_shape() {
        let s = StencilKernel::laplacian().to_string();
        assert!(s.contains("laplacian"));
        assert!(s.contains("7pt"));
        assert!(s.contains("double"));
    }

    #[test]
    fn serde_roundtrip() {
        let k = StencilKernel::tricubic();
        let json = serde_json::to_string(&k).unwrap();
        let back: StencilKernel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, k);
    }
}
