//! Stencil instances `q = (k, s)`: a kernel bound to a concrete input size.
//!
//! An instance is the *query* of the ranking problem: executions of the same
//! instance are comparable (they form a partial ranking); executions of
//! different instances are not.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::kernel::StencilKernel;
use crate::size::GridSize;

/// A stencil kernel together with an input size.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StencilInstance {
    kernel: StencilKernel,
    size: GridSize,
}

impl StencilInstance {
    /// Binds `kernel` to `size`, checking dimensional consistency: a 2-D
    /// kernel requires a planar grid, a 3-D kernel a volumetric one, and the
    /// grid must be strictly larger than the stencil footprint on every axis.
    pub fn new(kernel: StencilKernel, size: GridSize) -> Result<Self, ModelError> {
        size.validate()?;
        if kernel.dim() == 2 && !size.is_2d() {
            return Err(ModelError::DimMismatch { expected: 2, found: 3 });
        }
        if kernel.dim() == 3 && size.is_2d() {
            return Err(ModelError::DimMismatch { expected: 3, found: 2 });
        }
        let (rx, ry, rz) = kernel.pattern().radius_per_axis();
        let min_extent = |r: u32| 2 * r + 1;
        if size.x < min_extent(rx) || size.y < min_extent(ry) || size.z < min_extent(rz) {
            return Err(ModelError::InvalidPattern(format!(
                "grid {} too small for pattern radius ({rx},{ry},{rz})",
                size
            )));
        }
        Ok(StencilInstance { kernel, size })
    }

    /// The kernel `k`.
    pub fn kernel(&self) -> &StencilKernel {
        &self.kernel
    }

    /// The input size `s`.
    pub fn size(&self) -> GridSize {
        self.size
    }

    /// Dimensionality of the computation (2 or 3).
    pub fn dim(&self) -> u8 {
        self.kernel.dim()
    }

    /// Total floating-point work of one sweep over the grid.
    pub fn total_flops(&self) -> u64 {
        self.kernel.flops_per_point() * self.size.points()
    }

    /// A stable identifier such as `"laplacian/128x128x128"`, used to group
    /// executions into partial rankings.
    pub fn id(&self) -> String {
        format!("{}/{}", self.kernel.name(), self.size)
    }

    /// The canonical feature-relevant identity of this instance (everything
    /// the encoder reads; the kernel name is excluded). Instances with equal
    /// keys score and rank identically — the serving layer's decision cache
    /// keys on this.
    pub fn key(&self) -> crate::key::InstanceKey {
        crate::key::InstanceKey::of(self)
    }
}

impl fmt::Display for StencilInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_consistency_is_enforced() {
        assert!(StencilInstance::new(StencilKernel::blur(), GridSize::cube(64)).is_err());
        assert!(StencilInstance::new(StencilKernel::laplacian(), GridSize::square(512)).is_err());
        assert!(StencilInstance::new(StencilKernel::blur(), GridSize::square(512)).is_ok());
        assert!(StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(64)).is_ok());
    }

    #[test]
    fn grid_must_exceed_footprint() {
        // laplacian6 has radius 3 -> needs at least 7 points per axis.
        assert!(StencilInstance::new(StencilKernel::laplacian6(), GridSize::cube(6)).is_err());
        assert!(StencilInstance::new(StencilKernel::laplacian6(), GridSize::cube(7)).is_ok());
    }

    #[test]
    fn total_flops() {
        let q = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(64)).unwrap();
        assert_eq!(q.total_flops(), 14 * 64 * 64 * 64);
    }

    #[test]
    fn id_is_stable() {
        let q = StencilInstance::new(StencilKernel::blur(), GridSize::d2(1024, 768)).unwrap();
        assert_eq!(q.id(), "blur/1024x768");
        assert_eq!(q.to_string(), "blur/1024x768");
    }

    #[test]
    fn zero_size_rejected() {
        assert!(StencilInstance::new(StencilKernel::blur(), GridSize::d2(0, 5)).is_err());
    }
}
