//! Grid sizes.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// The extent of the computed field `s = (sx, sy, sz)`.
///
/// Two-dimensional computations use `sz = 1` (the paper treats a 2-D stencil
/// as a 3-D one confined to the `z = 0` plane).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridSize {
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

impl GridSize {
    /// A 2-D size `(x, y, 1)`.
    pub const fn d2(x: u32, y: u32) -> Self {
        GridSize { x, y, z: 1 }
    }

    /// A 3-D size.
    pub const fn d3(x: u32, y: u32, z: u32) -> Self {
        GridSize { x, y, z }
    }

    /// A cubic 3-D size.
    pub const fn cube(n: u32) -> Self {
        GridSize { x: n, y: n, z: n }
    }

    /// A square 2-D size.
    pub const fn square(n: u32) -> Self {
        GridSize { x: n, y: n, z: 1 }
    }

    /// Validates that every extent is at least one.
    pub fn validate(&self) -> Result<(), ModelError> {
        for (what, v) in [("sx", self.x), ("sy", self.y), ("sz", self.z)] {
            if v == 0 {
                return Err(ModelError::OutOfRange { what, value: 0, lo: 1, hi: i64::MAX });
            }
        }
        Ok(())
    }

    /// Total number of grid points.
    pub fn points(&self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }

    /// Whether this is a planar (2-D) size.
    pub fn is_2d(&self) -> bool {
        self.z == 1
    }

    /// Geometric dimensionality: 2 or 3.
    pub fn dim(&self) -> u8 {
        if self.is_2d() {
            2
        } else {
            3
        }
    }

    /// Extents as an array `[x, y, z]`.
    pub fn as_array(&self) -> [u32; 3] {
        [self.x, self.y, self.z]
    }

    /// The training input sizes used by the paper for 3-D kernels.
    pub const TRAINING_3D: [GridSize; 3] =
        [GridSize::cube(64), GridSize::cube(128), GridSize::cube(256)];

    /// The training input sizes used by the paper for 2-D kernels.
    pub const TRAINING_2D: [GridSize; 4] = [
        GridSize::square(256),
        GridSize::square(512),
        GridSize::square(1024),
        GridSize::square(2048),
    ];
}

impl fmt::Display for GridSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_2d() {
            write!(f, "{}x{}", self.x, self.y)
        } else {
            write!(f, "{}x{}x{}", self.x, self.y, self.z)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_points() {
        assert_eq!(GridSize::d2(1024, 768).points(), 1024 * 768);
        assert_eq!(GridSize::cube(128).points(), 128 * 128 * 128);
        assert_eq!(GridSize::square(512), GridSize::d2(512, 512));
    }

    #[test]
    fn dimensionality() {
        assert!(GridSize::d2(8, 8).is_2d());
        assert_eq!(GridSize::d2(8, 8).dim(), 2);
        assert!(!GridSize::cube(8).is_2d());
        assert_eq!(GridSize::cube(8).dim(), 3);
    }

    #[test]
    fn validation() {
        assert!(GridSize::d3(0, 4, 4).validate().is_err());
        assert!(GridSize::d3(4, 0, 4).validate().is_err());
        assert!(GridSize::d3(4, 4, 0).validate().is_err());
        assert!(GridSize::d2(4, 4).validate().is_ok());
    }

    #[test]
    fn training_sizes_match_paper() {
        assert_eq!(GridSize::TRAINING_3D.len(), 3);
        assert_eq!(GridSize::TRAINING_2D.len(), 4);
        assert_eq!(GridSize::TRAINING_3D[0], GridSize::cube(64));
        assert_eq!(GridSize::TRAINING_2D[3], GridSize::square(2048));
    }

    #[test]
    fn display_elides_unit_z() {
        assert_eq!(GridSize::d2(1024, 768).to_string(), "1024x768");
        assert_eq!(GridSize::cube(128).to_string(), "128x128x128");
    }

    #[test]
    fn points_do_not_overflow_u32_product() {
        // 2048^3 > u32::MAX; make sure arithmetic is u64.
        assert_eq!(GridSize::cube(2048).points(), 8_589_934_592u64);
    }
}
