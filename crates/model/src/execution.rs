//! Stencil executions: the triple `(k, s, t)`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::instance::StencilInstance;
use crate::tuning::{TuningSpace, TuningVector};

/// A fully specified stencil run: an instance plus the tuning applied to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StencilExecution {
    instance: StencilInstance,
    tuning: TuningVector,
}

impl StencilExecution {
    /// Pairs an instance with a tuning vector, enforcing that the tuning is
    /// admissible for the instance's dimensionality (in particular `bz = 1`
    /// for 2-D stencils).
    pub fn new(instance: StencilInstance, tuning: TuningVector) -> Result<Self, ModelError> {
        let space = TuningSpace::for_dim(instance.dim())?;
        space.validate(&tuning)?;
        Ok(StencilExecution { instance, tuning })
    }

    /// The instance `q = (k, s)`.
    pub fn instance(&self) -> &StencilInstance {
        &self.instance
    }

    /// The tuning vector `t`.
    pub fn tuning(&self) -> TuningVector {
        self.tuning
    }

    /// Effective block extents after clipping each block to the grid: a
    /// 1024-wide block on a 256-wide axis behaves like a 256 block.
    pub fn effective_blocks(&self) -> (u32, u32, u32) {
        let s = self.instance.size();
        (self.tuning.bx.min(s.x), self.tuning.by.min(s.y), self.tuning.bz.min(s.z))
    }

    /// Number of tiles the blocked iteration space decomposes into.
    pub fn tile_count(&self) -> u64 {
        let s = self.instance.size();
        let (bx, by, bz) = self.effective_blocks();
        let t = |n: u32, b: u32| n.div_ceil(b) as u64;
        t(s.x, bx) * t(s.y, by) * t(s.z, bz)
    }

    /// Number of chunks handed to the thread pool (`ceil(tiles / c)`).
    pub fn chunk_count(&self) -> u64 {
        self.tile_count().div_ceil(self.tuning.c as u64)
    }

    /// Total floating point work of the execution.
    pub fn total_flops(&self) -> u64 {
        self.instance.total_flops()
    }

    /// GFlop/s achieved for a measured/simulated runtime in seconds.
    pub fn gflops(&self, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            return 0.0;
        }
        self.total_flops() as f64 / seconds / 1e9
    }
}

impl fmt::Display for StencilExecution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.instance, self.tuning)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::StencilKernel;
    use crate::size::GridSize;

    fn lap128() -> StencilInstance {
        StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(128)).unwrap()
    }

    #[test]
    fn rejects_inadmissible_tuning() {
        // bz must be 1 for a 2-D stencil.
        let blur = StencilInstance::new(StencilKernel::blur(), GridSize::square(512)).unwrap();
        assert!(StencilExecution::new(blur.clone(), TuningVector::new(8, 8, 8, 0, 1)).is_err());
        assert!(StencilExecution::new(blur, TuningVector::new(8, 8, 1, 0, 1)).is_ok());
        // ... and a 3-D stencil needs bz >= 2.
        assert!(StencilExecution::new(lap128(), TuningVector::new(8, 8, 1, 0, 1)).is_err());
    }

    /// Each rejection arm must name the offending field and its actual
    /// bounds — not a generic "tuning vector" diagnostic.
    #[test]
    fn rejection_errors_name_the_offending_field() {
        let err = |t: TuningVector| {
            StencilExecution::new(lap128(), t).expect_err("inadmissible").to_string()
        };
        let e = err(TuningVector::new(1, 8, 8, 0, 1));
        assert!(e.contains("bx") && e.contains("[2, 1024]"), "{e}");
        let e = err(TuningVector::new(8, 4096, 8, 0, 1));
        assert!(e.contains("by") && e.contains("4096"), "{e}");
        let e = err(TuningVector::new(8, 8, 1, 0, 1));
        assert!(e.contains("bz"), "{e}");
        let e = err(TuningVector::new(8, 8, 8, 99, 1));
        assert!(e.contains("unroll factor u") && e.contains("[0, 8]"), "{e}");
        let e = err(TuningVector::new(8, 8, 8, 0, 0));
        assert!(e.contains("chunk size c") && e.contains("[1, 256]"), "{e}");

        // The 2-D arm: bz != 1 reports bz with its pinned [1, 1] range.
        let blur = StencilInstance::new(StencilKernel::blur(), GridSize::square(512)).unwrap();
        let e = StencilExecution::new(blur, TuningVector::new(8, 8, 8, 0, 1))
            .expect_err("bz must be 1 in 2-D")
            .to_string();
        assert!(e.contains("bz") && e.contains("[1, 1]"), "{e}");
    }

    #[test]
    fn tile_count_with_exact_division() {
        let e = StencilExecution::new(lap128(), TuningVector::new(32, 16, 8, 0, 1)).unwrap();
        assert_eq!(e.tile_count(), (128 / 32) * (128 / 16) * (128 / 8));
    }

    #[test]
    fn tile_count_with_remainder_uses_ceiling() {
        let e = StencilExecution::new(lap128(), TuningVector::new(48, 128, 128, 0, 1)).unwrap();
        assert_eq!(e.tile_count(), 3); // ceil(128/48) = 3
    }

    #[test]
    fn oversized_blocks_clip_to_grid() {
        let e = StencilExecution::new(lap128(), TuningVector::new(1024, 1024, 1024, 0, 1)).unwrap();
        assert_eq!(e.effective_blocks(), (128, 128, 128));
        assert_eq!(e.tile_count(), 1);
    }

    #[test]
    fn chunk_count_ceils() {
        let e = StencilExecution::new(lap128(), TuningVector::new(32, 32, 32, 0, 3)).unwrap();
        assert_eq!(e.tile_count(), 64);
        assert_eq!(e.chunk_count(), 22); // ceil(64/3)
    }

    #[test]
    fn gflops_accounting() {
        let e = StencilExecution::new(lap128(), TuningVector::new(32, 32, 32, 0, 1)).unwrap();
        let flops = e.total_flops() as f64;
        assert!((e.gflops(1.0) - flops / 1e9).abs() < 1e-9);
        assert_eq!(e.gflops(0.0), 0.0);
        assert_eq!(e.gflops(-1.0), 0.0);
    }
}
