//! The training shape families of the paper (Fig. 1): line, hyperplane,
//! hypercube and laplacian, parameterized by dimensionality and maximum
//! neighbour offset.
//!
//! During training-set generation these families are instantiated with
//! several offsets to produce the synthetic corpus of 60 stencil codes.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::pattern::{Offset, StencilPattern};

/// A coordinate axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    X,
    Y,
    Z,
}

impl Axis {
    /// All three axes.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// Unit offset along the axis scaled by `k`.
    pub fn offset(&self, k: i32) -> Offset {
        match self {
            Axis::X => Offset::new(k, 0, 0),
            Axis::Y => Offset::new(0, k, 0),
            Axis::Z => Offset::new(0, 0, k),
        }
    }

    /// Index of the axis (x = 0, y = 1, z = 2).
    pub fn index(&self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::X => write!(f, "x"),
            Axis::Y => write!(f, "y"),
            Axis::Z => write!(f, "z"),
        }
    }
}

/// One of the four training shape families of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShapeFamily {
    /// `2r + 1` collinear points through the centre along one axis.
    Line(Axis),
    /// A full `(2r + 1)^(n-1)` slab orthogonal to one axis, through the centre.
    Hyperplane(Axis),
    /// The full `(2r + 1)^n` box.
    Hypercube,
    /// The axis-aligned star: centre plus `r` points per direction per axis
    /// (`4r + 1` points in 2-D, `6r + 1` points in 3-D).
    Laplacian,
}

impl ShapeFamily {
    /// The four families with a canonical axis choice, used when enumerating
    /// the training corpus.
    pub const CANONICAL: [ShapeFamily; 4] = [
        ShapeFamily::Line(Axis::X),
        ShapeFamily::Hyperplane(Axis::Z),
        ShapeFamily::Hypercube,
        ShapeFamily::Laplacian,
    ];

    /// Builds the pattern for this family with maximum offset `r` in `dim`
    /// dimensions (2 or 3). Two-dimensional patterns live on the `dz = 0`
    /// plane; a hyperplane orthogonal to `z` degenerates to a line in 2-D
    /// terms but stays a valid planar pattern.
    pub fn build(&self, dim: u8, r: u32) -> Result<StencilPattern, ModelError> {
        if !(2..=3).contains(&dim) {
            return Err(ModelError::DimMismatch { expected: 3, found: dim });
        }
        if r == 0 {
            return Err(ModelError::OutOfRange { what: "shape offset", value: 0, lo: 1, hi: 8 });
        }
        if dim == 2 {
            if let ShapeFamily::Line(Axis::Z) | ShapeFamily::Hyperplane(Axis::Z) = self {
                // In 2-D the z axis does not exist; remap to x, matching how
                // the training generator flattens 3-D families.
                return match self {
                    ShapeFamily::Line(_) => ShapeFamily::Line(Axis::X).build(dim, r),
                    _ => ShapeFamily::Hyperplane(Axis::X).build(dim, r),
                };
            }
        }
        let ri = r as i32;
        let mut p = StencilPattern::new();
        match self {
            ShapeFamily::Line(axis) => {
                for k in -ri..=ri {
                    p.add(axis.offset(k));
                }
            }
            ShapeFamily::Hyperplane(axis) => {
                // All points with the `axis` coordinate fixed to zero.
                for dz in -ri..=ri {
                    for dy in -ri..=ri {
                        for dx in -ri..=ri {
                            let o = Offset::new(dx, dy, dz);
                            if dim == 2 && o.dz != 0 {
                                continue;
                            }
                            let coord = [o.dx, o.dy, o.dz][axis.index()];
                            if coord == 0 {
                                p.add(o);
                            }
                        }
                    }
                }
            }
            ShapeFamily::Hypercube => {
                for dz in -ri..=ri {
                    for dy in -ri..=ri {
                        for dx in -ri..=ri {
                            if dim == 2 && dz != 0 {
                                continue;
                            }
                            p.add(Offset::new(dx, dy, dz));
                        }
                    }
                }
            }
            ShapeFamily::Laplacian => {
                p.add(Offset::ORIGIN);
                let axes: &[Axis] =
                    if dim == 2 { &[Axis::X, Axis::Y] } else { &[Axis::X, Axis::Y, Axis::Z] };
                for axis in axes {
                    for k in 1..=ri {
                        p.add(axis.offset(k));
                        p.add(axis.offset(-k));
                    }
                }
            }
        }
        Ok(p)
    }

    /// Short family name used in generated kernel identifiers.
    pub fn name(&self) -> String {
        match self {
            ShapeFamily::Line(a) => format!("line-{a}"),
            ShapeFamily::Hyperplane(a) => format!("hyperplane-{a}"),
            ShapeFamily::Hypercube => "hypercube".to_string(),
            ShapeFamily::Laplacian => "laplacian".to_string(),
        }
    }
}

impl fmt::Display for ShapeFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_counts() {
        let p = ShapeFamily::Line(Axis::X).build(3, 2).unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p.radius_per_axis(), (2, 0, 0));
        let p = ShapeFamily::Line(Axis::Z).build(3, 1).unwrap();
        assert_eq!(p.radius_per_axis(), (0, 0, 1));
    }

    #[test]
    fn line_z_in_2d_remaps_to_x() {
        let p = ShapeFamily::Line(Axis::Z).build(2, 2).unwrap();
        assert!(p.is_planar());
        assert_eq!(p.radius_per_axis(), (2, 0, 0));
    }

    #[test]
    fn hyperplane_counts_3d() {
        // Plane orthogonal to z with r = 1: 3x3 = 9 points on dz = 0.
        let p = ShapeFamily::Hyperplane(Axis::Z).build(3, 1).unwrap();
        assert_eq!(p.len(), 9);
        assert!(p.is_planar());
        // Orthogonal to x: 3x3 points with dx = 0.
        let p = ShapeFamily::Hyperplane(Axis::X).build(3, 1).unwrap();
        assert_eq!(p.len(), 9);
        assert!(!p.is_planar());
        assert_eq!(p.radius_per_axis(), (0, 1, 1));
    }

    #[test]
    fn hyperplane_counts_2d() {
        // In 2-D a hyperplane orthogonal to x is the y line.
        let p = ShapeFamily::Hyperplane(Axis::X).build(2, 2).unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p.radius_per_axis(), (0, 2, 0));
    }

    #[test]
    fn hypercube_counts() {
        assert_eq!(ShapeFamily::Hypercube.build(2, 1).unwrap().len(), 9);
        assert_eq!(ShapeFamily::Hypercube.build(3, 1).unwrap().len(), 27);
        assert_eq!(ShapeFamily::Hypercube.build(3, 2).unwrap().len(), 125);
        assert_eq!(ShapeFamily::Hypercube.build(2, 2).unwrap().len(), 25);
    }

    #[test]
    fn laplacian_counts() {
        // 2-D: 4r + 1; 3-D: 6r + 1 (the paper's 7/13/19-point stars).
        assert_eq!(ShapeFamily::Laplacian.build(2, 1).unwrap().len(), 5);
        assert_eq!(ShapeFamily::Laplacian.build(3, 1).unwrap().len(), 7);
        assert_eq!(ShapeFamily::Laplacian.build(3, 2).unwrap().len(), 13);
        assert_eq!(ShapeFamily::Laplacian.build(3, 3).unwrap().len(), 19);
    }

    #[test]
    fn all_families_include_center_except_pure_line_offsets() {
        for fam in ShapeFamily::CANONICAL {
            let p = fam.build(3, 2).unwrap();
            assert!(p.reads_center(), "{fam} should include the centre");
        }
    }

    #[test]
    fn dimension_and_offset_validation() {
        assert!(ShapeFamily::Hypercube.build(1, 1).is_err());
        assert!(ShapeFamily::Hypercube.build(4, 1).is_err());
        assert!(ShapeFamily::Hypercube.build(3, 0).is_err());
    }

    #[test]
    fn two_d_patterns_are_planar() {
        for fam in ShapeFamily::CANONICAL {
            for r in 1..=3 {
                let p = fam.build(2, r).unwrap();
                assert!(p.is_planar(), "{fam} r={r}");
                assert_eq!(p.dim(), 2);
            }
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ShapeFamily::Line(Axis::X).name(), "line-x");
        assert_eq!(ShapeFamily::Hyperplane(Axis::Z).name(), "hyperplane-z");
        assert_eq!(ShapeFamily::Hypercube.name(), "hypercube");
        assert_eq!(ShapeFamily::Laplacian.name(), "laplacian");
    }
}
