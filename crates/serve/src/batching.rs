//! Adaptive micro-batch gathering: pick the gather window from the
//! observed arrival rate instead of a fixed constant.
//!
//! The fixed `gather_window` of [`ServeConfig`](crate::ServeConfig) is a
//! compromise: too short and bursts fragment into many small batches (lost
//! amortization), too long and a lone request in a quiet period eats the
//! whole window as pure latency. `AdaptiveGather` resolves the tension
//! with one number — an exponentially weighted moving average of the
//! request arrival rate, updated once per drain:
//!
//! * **idle** (less than one further request expected within the maximum
//!   window): gather nothing, answer the lone request immediately;
//! * **loaded**: wait just long enough for the batch to fill
//!   (`(max_batch - 1) / rate`), capped at the configured maximum — under
//!   heavy load the window *shrinks* again, because the batch fills
//!   quickly anyway and a longer wait would only add tail latency.
//!
//! The policy is pure arithmetic over explicit observations, so it is unit
//! tested deterministically — no clocks, no sleeps.

use std::time::Duration;

/// Smoothing factor of the arrival-rate EWMA: high enough to follow a
/// load shift within a handful of drains, low enough that one odd gap
/// does not flip the idle/loaded decision.
const EWMA_ALPHA: f64 = 0.3;

/// An arrival-rate estimator driving the per-drain gather window.
#[derive(Debug, Clone)]
pub(crate) struct AdaptiveGather {
    /// EWMA of observed arrivals per second (0 until the first
    /// observation, which the estimator adopts wholesale).
    rate_per_s: f64,
    observed: bool,
}

impl AdaptiveGather {
    pub(crate) fn new() -> Self {
        AdaptiveGather { rate_per_s: 0.0, observed: false }
    }

    /// Feeds one drain's outcome: `requests` arrived over the `elapsed`
    /// wall time since the previous drain finished.
    pub(crate) fn observe(&mut self, requests: usize, elapsed: Duration) {
        // Sub-microsecond drains happen when a burst is already queued;
        // clamp so the sample stays finite (the rate cap is max_batch per
        // microsecond — far beyond anything the worker can serve anyway).
        let secs = elapsed.as_secs_f64().max(1e-6);
        let sample = requests as f64 / secs;
        if self.observed {
            self.rate_per_s += EWMA_ALPHA * (sample - self.rate_per_s);
        } else {
            self.rate_per_s = sample;
            self.observed = true;
        }
    }

    /// The estimated arrival rate (requests per second).
    #[cfg(test)]
    pub(crate) fn rate_per_s(&self) -> f64 {
        self.rate_per_s
    }

    /// The gather window for the next drain, given the configured maximum
    /// window and batch size.
    pub(crate) fn window(&self, max_window: Duration, max_batch: usize) -> Duration {
        let expected = self.rate_per_s * max_window.as_secs_f64();
        if expected < 1.0 {
            // Idle: waiting would add latency and gather nothing.
            return Duration::ZERO;
        }
        // Loaded: wait for the batch to fill, no longer.
        let fill_s = (max_batch.saturating_sub(1)) as f64 / self.rate_per_s;
        max_window.min(Duration::from_secs_f64(fill_s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAX_WINDOW: Duration = Duration::from_micros(200);
    const MAX_BATCH: usize = 64;

    #[test]
    fn unobserved_estimator_goes_immediate() {
        let g = AdaptiveGather::new();
        assert_eq!(g.window(MAX_WINDOW, MAX_BATCH), Duration::ZERO);
        assert_eq!(g.rate_per_s(), 0.0);
    }

    #[test]
    fn idle_traffic_means_zero_window() {
        let mut g = AdaptiveGather::new();
        // One request per 100 ms: ~10/s, expected arrivals in 200 us ≈
        // 0.002 — far below one.
        for _ in 0..5 {
            g.observe(1, Duration::from_millis(100));
        }
        assert_eq!(g.window(MAX_WINDOW, MAX_BATCH), Duration::ZERO);
    }

    #[test]
    fn moderate_load_uses_the_full_window() {
        let mut g = AdaptiveGather::new();
        // 8 requests per 200 us drain: 40k/s; expected in the window = 8,
        // fill time for 63 more = ~1.6 ms > max — so the cap binds.
        g.observe(8, Duration::from_micros(200));
        assert_eq!(g.window(MAX_WINDOW, MAX_BATCH), MAX_WINDOW);
    }

    #[test]
    fn heavy_load_shrinks_the_window_to_the_fill_time() {
        let mut g = AdaptiveGather::new();
        // 1000 requests per 100 us: 10M/s. 63 more arrive in 6.3 us —
        // waiting the full 200 us would only add latency.
        g.observe(1000, Duration::from_micros(100));
        let w = g.window(MAX_WINDOW, MAX_BATCH);
        assert!(w > Duration::ZERO && w < MAX_WINDOW, "{w:?}");
        let expect_s = (MAX_BATCH - 1) as f64 / g.rate_per_s();
        assert!((w.as_secs_f64() - expect_s).abs() < 1e-9, "{w:?}");
    }

    #[test]
    fn ewma_follows_a_load_shift_within_a_few_drains() {
        let mut g = AdaptiveGather::new();
        g.observe(1, Duration::from_millis(100)); // idle baseline
        assert_eq!(g.window(MAX_WINDOW, MAX_BATCH), Duration::ZERO);
        // Burst arrives: 32 requests per 100 us, repeatedly.
        for _ in 0..10 {
            g.observe(32, Duration::from_micros(100));
        }
        assert!(g.window(MAX_WINDOW, MAX_BATCH) > Duration::ZERO, "loaded after the shift");
        // Back to quiet.
        for _ in 0..20 {
            g.observe(1, Duration::from_millis(100));
        }
        assert_eq!(g.window(MAX_WINDOW, MAX_BATCH), Duration::ZERO, "idle again");
    }

    #[test]
    fn first_observation_is_adopted_wholesale() {
        let mut g = AdaptiveGather::new();
        g.observe(10, Duration::from_millis(1));
        assert!((g.rate_per_s() - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn zero_elapsed_is_clamped_finite() {
        let mut g = AdaptiveGather::new();
        g.observe(64, Duration::ZERO);
        assert!(g.rate_per_s().is_finite());
        let w = g.window(MAX_WINDOW, MAX_BATCH);
        assert!(w <= MAX_WINDOW);
    }
}
