//! # sorl-serve — the multi-tenant stencil tuning service
//!
//! The paper's ranker answers one stencil instance at a time; this crate
//! is the layer that turns it into a *service* for heavy traffic, where
//! many concurrent callers tune many (often repeated) instances:
//!
//! ```text
//!   clients ──submit──▶ MPSC queue ──drain──▶ micro-batch
//!                                                │
//!                                  ┌─ decision cache (InstanceKey → top-k)
//!                                  │      hits answered immediately
//!                                  ▼
//!                        dedup misses by key ──▶ one pipelined pass:
//!                        encode each unique instance once, score all
//!                        candidate rows over one shared ThreadPool,
//!                        partial-select the k best per instance
//!                                  │
//!                                  ▼
//!                        reply tickets + cache insert + counters
//! ```
//!
//! Three mechanisms carry the throughput:
//!
//! * **Micro-batching** ([`TuneService`]) — queued requests are drained
//!   into one batch and pushed through a single
//!   [`TuningSession::top_k_batch`](sorl::session::TuningSession::top_k_batch)
//!   pass, so encode/score work is amortized *across queries* (PR 2
//!   amortized it across the candidates of one query). Requests in the
//!   same batch that share a canonical [`InstanceKey`](stencil_model::InstanceKey)
//!   are scored once and answered many times.
//! * **Top-k answers** ([`sorl::tuner::TopK`]) — callers get the `k` best
//!   vectors with scores via a partial select, never a full sort of the
//!   1600/8640-candidate sets.
//! * **A decision cache** ([`DecisionCache`]) — answers are memoized per
//!   canonical instance identity with LRU eviction;
//!   [`ServeStats`] exposes hit/miss/eviction counters.
//!
//! The scoring pool is a [`stencil_exec::SharedPool`] handle, so one set
//! of worker threads can serve the tuning service *and* the execution
//! engine of the same process ([`TuneService::spawn_with_pool`]).

pub mod cache;
pub mod service;
pub mod stats;

pub use cache::DecisionCache;
pub use service::{ServeConfig, ServeError, TuneClient, TuneRequest, TuneService, TuneTicket};
pub use stats::ServeStats;
