//! # sorl-serve — the multi-tenant stencil tuning service
//!
//! The paper's ranker answers one stencil instance at a time; this crate
//! is the layer that turns it into a *service* for heavy traffic, where
//! many concurrent callers tune many (often repeated) instances:
//!
//! ```text
//!   clients ──submit──▶ MPSC queue ──drain──▶ micro-batch
//!                                                │
//!                                  ┌─ decision cache (InstanceKey → top-k)
//!                                  │      hits answered immediately
//!                                  ▼
//!                        dedup misses by key ──▶ one pipelined pass:
//!                        encode each unique instance once, score all
//!                        candidate rows over one shared ThreadPool,
//!                        partial-select the k best per instance
//!                                  │
//!                                  ▼
//!                        reply tickets + cache insert + counters
//! ```
//!
//! Three mechanisms carry the throughput:
//!
//! * **Micro-batching** ([`TuneService`]) — queued requests are drained
//!   into one batch and pushed through a single
//!   [`TuningSession::top_k_batch`](sorl::session::TuningSession::top_k_batch)
//!   pass, so encode/score work is amortized *across queries* (PR 2
//!   amortized it across the candidates of one query). Requests in the
//!   same batch that share a canonical [`InstanceKey`](stencil_model::InstanceKey)
//!   are scored once and answered many times.
//! * **Top-k answers** ([`sorl::tuner::TopK`]) — callers get the `k` best
//!   vectors with scores via a partial select, never a full sort of the
//!   1600/8640-candidate sets.
//! * **A decision cache** ([`DecisionCache`]) — answers are memoized per
//!   canonical instance identity with LRU eviction;
//!   [`ServeStats`] exposes hit/miss/eviction counters plus per-batch
//!   latency percentiles and a batch-size histogram.
//!
//! Two further mechanisms make the service fleet-ready:
//!
//! * **Durable decisions** ([`CacheSnapshot`]) — the cache snapshots to
//!   JSON (versioned by the ranker fingerprint, so a retrained model
//!   rejects stale decisions) and restores warm after a restart; slices
//!   selected by key fingerprint can be exported/extracted and imported
//!   across services, which is how the `sorl-shard` router ships warm-up
//!   state on topology changes.
//! * **Adaptive micro-batching** ([`ServeConfig::adaptive_gather`]) — the
//!   gather window follows the observed arrival rate: immediate answers
//!   when idle, up to the configured window under load.
//!
//! And two keep it standing under overload:
//!
//! * **Non-blocking tickets** ([`TuneTicket`]) — a submission returns a
//!   completion slot the caller can block on ([`TuneTicket::wait`]), poll
//!   ([`TuneTicket::poll`]), or hang a callback/waker on
//!   ([`TuneTicket::on_ready`]), so event-loop embedders never park a
//!   thread per pending answer.
//! * **Admission control** ([`ServeConfig::max_queue`] /
//!   [`ServeConfig::shed_p99`]) — the submission queue is bounded and a
//!   rolling p99 batch-latency threshold sheds load early; both
//!   fast-reject with [`ServeError::Overloaded`]`(`[`ShedReason`]`)` in
//!   nanoseconds instead of letting requests pile up into timeouts.
//!   [`ServeStats`] reports shed counts, live queue depth, and the
//!   rolling p99 the shedder acts on.
//!
//! The scoring pool is a [`stencil_exec::SharedPool`] handle, so one set
//! of worker threads can serve the tuning service *and* the execution
//! engine of the same process ([`TuneService::spawn_with_pool`]).
//!
//! Per-request observability rides on top of the counters:
//!
//! * **Slow-request exemplars** ([`ExemplarStore`]) — the full span
//!   chain of the slowest recent requests (over
//!   [`ServeConfig::exemplar_threshold`] or the rolling p99), exported
//!   as `sorl_exemplar_*` metrics and shipped in wire trace dumps.
//! * **SLO burn rates** ([`ServeConfig::slo`] /
//!   [`sorl_obs::SloTracker`]) — multi-window error-budget burn over a
//!   latency+error SLO, exported as `sorl_slo_*` gauges; sheds count as
//!   budget spent.

pub mod batching;
pub mod cache;
pub mod exemplar;
pub mod service;
pub mod snapshot;
pub mod stats;
pub mod ticket;

pub use cache::DecisionCache;
pub use exemplar::{Exemplar, ExemplarStore};
pub use service::{
    KeyFilter, ServeConfig, ServeError, ShedReason, TuneClient, TuneRequest, TuneService,
};
pub use snapshot::{
    CacheSnapshot, SnapshotChunk, SnapshotEntry, SnapshotError, SnapshotHeader, CHUNK_BYTE_BUDGET,
    SNAPSHOT_FORMAT_VERSION,
};
pub use stats::ServeStats;
pub use ticket::TuneTicket;
