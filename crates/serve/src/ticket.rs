//! Completion tickets: the non-blocking half of the service API.
//!
//! A [`TuneTicket`] is a one-shot completion slot shared with the service
//! worker. Embedders with their own event loops never have to park a
//! thread on it: [`TuneTicket::poll`] is a non-blocking readiness probe
//! and [`TuneTicket::on_ready`] registers a callback/waker hook that the
//! worker invokes the moment the answer (or failure) lands. The blocking
//! [`TuneTicket::wait`] of the original API is a thin wrapper over the
//! same slot.
//!
//! The worker side is a `TicketCompleter`: completing it fills the slot
//! exactly once, and *dropping* it without completing (worker shut down
//! with the request still queued, worker panic) fills the slot with
//! [`ServeError::Closed`] — a ticket can therefore never be lost, only
//! answered or failed.

use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use sorl::tuner::TopK;

use crate::service::ServeError;

/// The hook [`TuneTicket::on_ready`] registers. Runs exactly once, on the
/// thread that completes the ticket (the service worker for answers).
type Callback = Box<dyn FnOnce(Result<TopK, ServeError>) + Send>;

#[derive(Default)]
struct SlotState {
    outcome: Option<Result<TopK, ServeError>>,
    callback: Option<Callback>,
}

struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl Slot {
    /// Locks the slot state, recovering from poisoning: the state is two
    /// `Option`s, each structurally valid whether or not the thread that
    /// panicked got to fill it, so a waiter must see the slot (and the
    /// completer's `Drop` must still deliver `Closed`) rather than
    /// propagate an unrelated thread's panic.
    fn state(&self) -> MutexGuard<'_, SlotState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A fresh ticket/completer pair sharing one completion slot.
pub(crate) fn pair() -> (TuneTicket, TicketCompleter) {
    let slot = Arc::new(Slot { state: Mutex::new(SlotState::default()), ready: Condvar::new() });
    (TuneTicket { slot: Arc::clone(&slot) }, TicketCompleter { slot: Some(slot) })
}

/// A pending answer for one submitted query.
///
/// Three ways to consume it, all observing the same completion exactly
/// once per ticket:
///
/// * [`wait`](Self::wait) — block until the answer lands (the original
///   blocking API).
/// * [`poll`](Self::poll) / [`is_ready`](Self::is_ready) — non-blocking
///   probes for poll-driven embedders.
/// * [`on_ready`](Self::on_ready) — register a callback; the worker runs
///   it when the answer lands (immediately, on the calling thread, if it
///   already has). This is the waker hook: an event-loop embedder wakes
///   its reactor from the callback instead of parking a thread here.
pub struct TuneTicket {
    slot: Arc<Slot>,
}

impl std::fmt::Debug for TuneTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TuneTicket").field("ready", &self.is_ready()).finish()
    }
}

impl TuneTicket {
    /// Whether the answer (or failure) has landed. Never blocks.
    pub fn is_ready(&self) -> bool {
        self.slot.state().outcome.is_some()
    }

    /// The outcome, if it has landed — `None` while still pending. Never
    /// blocks; the outcome stays in the ticket (polling again, or
    /// [`wait`](Self::wait)ing after a successful poll, sees it again).
    pub fn poll(&self) -> Option<Result<TopK, ServeError>> {
        self.slot.state().outcome.clone()
    }

    /// Blocks until the service answers (or reports it shut down without
    /// answering).
    pub fn wait(self) -> Result<TopK, ServeError> {
        let mut state = self.slot.state();
        loop {
            if let Some(outcome) = state.outcome.take() {
                return outcome;
            }
            state = self.slot.ready.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Registers `hook` to run with the outcome the moment it lands — on
    /// the completing thread (the service worker), or immediately on this
    /// thread if the ticket is already complete. Keep hooks cheap (hand
    /// off to your own executor/channel): they run inline on the worker's
    /// reply path.
    pub fn on_ready(self, hook: impl FnOnce(Result<TopK, ServeError>) + Send + 'static) {
        let ready = {
            let mut state = self.slot.state();
            match state.outcome.take() {
                Some(outcome) => Some(outcome),
                None => {
                    state.callback = Some(Box::new(hook));
                    return;
                }
            }
        };
        if let Some(outcome) = ready {
            hook(outcome);
        }
    }
}

/// The worker-side handle that fulfills one [`TuneTicket`]. Dropping it
/// un-completed fails the ticket with [`ServeError::Closed`].
pub(crate) struct TicketCompleter {
    slot: Option<Arc<Slot>>,
}

impl std::fmt::Debug for TicketCompleter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TicketCompleter").finish_non_exhaustive()
    }
}

impl TicketCompleter {
    /// Fills the slot with `outcome`, waking the waiter / running the
    /// registered callback.
    pub(crate) fn complete(mut self, outcome: Result<TopK, ServeError>) {
        // `complete` consumes self, so the slot is still present (only
        // this method and Drop ever take it); if let keeps that
        // invariant panic-free.
        if let Some(slot) = self.slot.take() {
            Self::fill(&slot, outcome);
        }
    }

    fn fill(slot: &Slot, outcome: Result<TopK, ServeError>) {
        let callback = {
            let mut state = slot.state();
            match state.callback.take() {
                Some(callback) => Some(callback),
                None => {
                    state.outcome = Some(outcome.clone());
                    slot.ready.notify_all();
                    None
                }
            }
        };
        // Run the hook outside the lock: it may be arbitrary user code.
        if let Some(callback) = callback {
            callback(outcome);
        }
    }
}

impl Drop for TicketCompleter {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            Self::fill(&slot, Err(ServeError::Closed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer() -> TopK {
        TopK { entries: Vec::new(), candidates: 7, seconds: 0.0 }
    }

    #[test]
    fn poll_is_nonblocking_and_nondestructive() {
        let (ticket, completer) = pair();
        assert!(!ticket.is_ready());
        assert!(ticket.poll().is_none());
        completer.complete(Ok(answer()));
        assert!(ticket.is_ready());
        assert_eq!(ticket.poll().unwrap().unwrap().candidates, 7);
        // Polling does not consume: wait still sees the same outcome.
        assert_eq!(ticket.poll().unwrap().unwrap().candidates, 7);
        assert_eq!(ticket.wait().unwrap().candidates, 7);
    }

    #[test]
    fn wait_blocks_until_completion() {
        let (ticket, completer) = pair();
        let waiter = std::thread::spawn(move || ticket.wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        completer.complete(Ok(answer()));
        assert_eq!(waiter.join().unwrap().unwrap().candidates, 7);
    }

    #[test]
    fn callback_runs_on_completion_exactly_once() {
        let count = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let (ticket, completer) = pair();
        let seen = Arc::clone(&count);
        ticket.on_ready(move |outcome| {
            assert_eq!(outcome.unwrap().candidates, 7);
            seen.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        assert_eq!(count.load(std::sync::atomic::Ordering::SeqCst), 0, "not before completion");
        completer.complete(Ok(answer()));
        assert_eq!(count.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn callback_registered_after_completion_runs_immediately() {
        let (ticket, completer) = pair();
        completer.complete(Ok(answer()));
        let ran = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let seen = Arc::clone(&ran);
        ticket.on_ready(move |_| {
            seen.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        assert_eq!(ran.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn dropped_completer_fails_the_ticket_with_closed() {
        let (ticket, completer) = pair();
        drop(completer);
        assert_eq!(ticket.wait().unwrap_err(), ServeError::Closed);

        let (ticket, completer) = pair();
        let failed = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let seen = Arc::clone(&failed);
        ticket.on_ready(move |outcome| {
            assert_eq!(outcome.unwrap_err(), ServeError::Closed);
            seen.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        drop(completer);
        assert_eq!(failed.load(std::sync::atomic::Ordering::SeqCst), 1);
    }
}
