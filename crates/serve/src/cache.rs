//! The decision cache: canonical instance identity → top-k tuning answer.
//!
//! Serving traffic is dominated by repeated and near-duplicate queries
//! (the same kernels at the same sizes, tuned again and again across a
//! fleet), so the single highest-leverage optimization of the serving
//! layer is to not rank at all: answers are memoized per
//! [`InstanceKey`] — the projection of an instance onto exactly the fields
//! the feature encoder reads, so two differently *named* but structurally
//! identical kernels share one entry.
//!
//! The cache stores the `k` best `(tuning, score)` pairs computed for a
//! key; a lookup asking for at most that many entries is a hit. Capacity
//! is bounded; eviction is least-recently-used: every access stamps a
//! monotonic (unique) tick, and a tick-ordered `BTreeMap` side index makes
//! finding the LRU victim `O(log n)` — at steady state (cache full, every
//! miss evicting) capacities "can be millions" without each insert paying
//! a full scan of the map. (Bench note: inserting 60k entries into a full
//! 20k-capacity cache runs in milliseconds with the index; the previous
//! `min_by_key` full scan was `O(capacity)` per insert — hundreds of
//! millions of map probes for the same workload — see
//! `full_capacity_inserts_do_not_scan_the_whole_map`.)
//!
//! The cache is also **durable**: [`DecisionCache::snapshot`] serializes
//! every resident decision (LRU-first, so order is canonical) into a
//! [`CacheSnapshot`] versioned by the ranker fingerprint, and
//! [`DecisionCache::restore`] replays one back — rejecting snapshots from
//! a different ranker or format version. [`DecisionCache::extract`] is the
//! sharding primitive: it *removes* the slice of decisions matching a
//! key-fingerprint predicate so ownership can move to another shard.

use std::collections::{BTreeMap, HashMap};

use stencil_model::{InstanceKey, TuningVector};

use crate::snapshot::{CacheSnapshot, SnapshotEntry, SnapshotError, SNAPSHOT_FORMAT_VERSION};

/// One cached answer.
#[derive(Debug, Clone)]
struct CachedDecision {
    /// Best-first `(tuning, score)` pairs; a prefix answers smaller `k`s.
    entries: Vec<(TuningVector, f64)>,
    /// Size of the candidate set the entries were selected from.
    candidates: usize,
    /// Tick of the most recent lookup or insertion (LRU ordering).
    last_used: u64,
}

/// A bounded LRU cache of top-k tuning decisions keyed by [`InstanceKey`].
///
/// Owned by the service worker (no interior locking); the service exposes
/// its counters through [`ServeStats`](crate::ServeStats).
#[derive(Debug)]
pub struct DecisionCache {
    map: HashMap<InstanceKey, CachedDecision>,
    /// LRU index: `last_used` tick → key. Ticks are unique (one monotonic
    /// counter, bumped on every lookup and insert), so the first entry is
    /// always *the* least recently used decision and eviction is
    /// `O(log n)` instead of a full scan of `map`. Invariant:
    /// `order.len() == map.len()` and every `(tick, key)` pair mirrors a
    /// `map[key].last_used == tick`.
    order: BTreeMap<u64, InstanceKey>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl DecisionCache {
    /// A cache holding at most `capacity` decisions (`0` disables caching:
    /// every lookup misses and insertions are dropped).
    pub fn new(capacity: usize) -> Self {
        DecisionCache {
            map: HashMap::with_capacity(capacity.min(4096)),
            order: BTreeMap::new(),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up the `k` best entries for `key`. A hit requires the cached
    /// decision to hold at least `min(k, candidates)` entries — a request
    /// for more alternatives than were ever computed is a miss and will be
    /// recomputed (and re-inserted) by the caller.
    pub fn lookup(
        &mut self,
        key: &InstanceKey,
        k: usize,
    ) -> Option<(Vec<(TuningVector, f64)>, usize)> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(d) if d.entries.len() >= k.min(d.candidates) => {
                self.order.remove(&d.last_used);
                d.last_used = self.tick;
                self.order.insert(self.tick, key.clone());
                self.hits += 1;
                Some((d.entries[..k.min(d.entries.len())].to_vec(), d.candidates))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) the decision for `key`, evicting the least
    /// recently used entry when capacity is exceeded.
    pub fn insert(
        &mut self,
        key: InstanceKey,
        entries: Vec<(TuningVector, f64)>,
        candidates: usize,
    ) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let fresh = CachedDecision { entries, candidates, last_used: self.tick };
        let replaced = self.map.insert(key.clone(), fresh);
        if let Some(old) = &replaced {
            self.order.remove(&old.last_used);
        }
        self.order.insert(self.tick, key);
        if replaced.is_none() && self.map.len() > self.capacity {
            // O(log n) eviction: the index's first entry is the LRU victim
            // (ticks are unique, so "smallest tick" is exactly what the old
            // full `min_by_key` scan computed).
            // sorl-lint: allow(panic, "len > capacity >= 0 on this branch, so the order index is non-empty")
            let (_, lru) = self.order.pop_first().expect("cache over capacity is non-empty");
            self.map.remove(&lru);
            self.evictions += 1;
        }
        debug_assert_eq!(self.order.len(), self.map.len());
    }

    /// Number of resident decisions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that were answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through to the pipeline.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries displaced by capacity pressure.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Drops every resident decision (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    /// Serializes every resident decision into a [`CacheSnapshot`] stamped
    /// with `ranker_fingerprint`. Entries are ordered least recently used
    /// first, so the snapshot of a given cache state is canonical
    /// (bit-for-bit reproducible) and a restore replays accesses in the
    /// order the live cache saw them.
    pub fn snapshot(&self, ranker_fingerprint: u64) -> CacheSnapshot {
        self.snapshot_filtered(ranker_fingerprint, |_| true)
    }

    /// Like [`snapshot`](Self::snapshot), but only for keys whose
    /// [`InstanceKey::fingerprint`] satisfies `pred` — the slice a shard
    /// exports when another shard becomes a key range's owner.
    pub fn snapshot_filtered(
        &self,
        ranker_fingerprint: u64,
        pred: impl Fn(u64) -> bool,
    ) -> CacheSnapshot {
        let mut snap = CacheSnapshot::empty(ranker_fingerprint);
        // The LRU index is already tick-ordered, so walking it yields the
        // canonical least-recently-used-first order without a sort.
        for (&tick, key) in &self.order {
            if pred(key.fingerprint()) {
                let d = &self.map[key];
                debug_assert_eq!(d.last_used, tick);
                snap.entries.push(SnapshotEntry {
                    key: key.clone(),
                    entries: d.entries.clone(),
                    candidates: d.candidates,
                    last_used: d.last_used,
                });
            }
        }
        snap
    }

    /// Removes the decisions matching a key-fingerprint predicate and
    /// returns them as a snapshot (LRU-first, like
    /// [`snapshot`](Self::snapshot)). Counters are untouched — a topology
    /// change is not an eviction.
    pub fn extract(
        &mut self,
        ranker_fingerprint: u64,
        pred: impl Fn(u64) -> bool,
    ) -> CacheSnapshot {
        let snap = self.snapshot_filtered(ranker_fingerprint, &pred);
        self.map.retain(|key, _| !pred(key.fingerprint()));
        let map = &self.map;
        self.order.retain(|_, key| map.contains_key(key));
        snap
    }

    /// Replays a snapshot into the cache, merging with whatever is already
    /// resident (snapshot entries replace same-key residents and count as
    /// the most recent accesses, in the snapshot's LRU order). Capacity
    /// still applies — restoring into a smaller cache keeps the most
    /// recently used tail.
    ///
    /// The snapshot must carry the current [`SNAPSHOT_FORMAT_VERSION`] and
    /// the exact `expected_fingerprint` of the live ranker; anything else
    /// is rejected *before* any entry is touched, leaving the cache as it
    /// was. Returns the number of entries applied — at most `capacity`;
    /// the least-recently-used overflow of an oversized snapshot is
    /// skipped, not replayed-then-evicted.
    pub fn restore(
        &mut self,
        snapshot: &CacheSnapshot,
        expected_fingerprint: u64,
    ) -> Result<usize, SnapshotError> {
        if snapshot.format_version != SNAPSHOT_FORMAT_VERSION {
            return Err(SnapshotError::FormatVersion {
                found: snapshot.format_version,
                expected: SNAPSHOT_FORMAT_VERSION,
            });
        }
        if snapshot.ranker_fingerprint != expected_fingerprint {
            return Err(SnapshotError::RankerMismatch {
                found: snapshot.ranker_fingerprint,
                expected: expected_fingerprint,
            });
        }
        if self.capacity == 0 {
            return Ok(0);
        }
        // Replay oldest-first so relative recency survives: the snapshot's
        // most recently used entry ends up the restored cache's most
        // recently used too (`insert` stamps a fresh tick per entry). Only
        // the most recently used `capacity` entries could survive the
        // replay anyway, so the prefix that would immediately self-evict
        // is skipped — it must count neither as applied nor as evictions
        // (a warm-up into a smaller cache is not cache pressure).
        let mut ordered: Vec<&SnapshotEntry> = snapshot.entries.iter().collect();
        ordered.sort_by_key(|e| e.last_used);
        let skip = ordered.len().saturating_sub(self.capacity);
        for e in &ordered[skip..] {
            self.insert(e.key.clone(), e.entries.clone(), e.candidates);
        }
        Ok(ordered.len() - skip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_model::{GridSize, StencilInstance, StencilKernel};

    fn key(n: u32) -> InstanceKey {
        StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(n)).unwrap().key()
    }

    fn entries(n: usize) -> Vec<(TuningVector, f64)> {
        (0..n).map(|i| (TuningVector::new(8, 8, 8, i as u32 % 9, 1), -(i as f64))).collect()
    }

    #[test]
    fn lookup_hits_any_k_up_to_the_stored_depth() {
        let mut c = DecisionCache::new(8);
        assert!(c.lookup(&key(64), 1).is_none());
        c.insert(key(64), entries(5), 8640);
        for k in 0..=5 {
            let (got, candidates) = c.lookup(&key(64), k).expect("hit");
            assert_eq!(got.len(), k);
            assert_eq!(candidates, 8640);
            assert_eq!(got[..], entries(5)[..k]);
        }
        // Deeper than stored: miss (caller recomputes and re-inserts).
        assert!(c.lookup(&key(64), 6).is_none());
        c.insert(key(64), entries(10), 8640);
        assert_eq!(c.lookup(&key(64), 6).unwrap().0.len(), 6);
        assert_eq!(c.len(), 1, "replacement, not duplication");
        assert_eq!(c.hits(), 7);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn k_beyond_the_candidate_set_still_hits() {
        // A 2-candidate space can only ever yield 2 entries; asking for 10
        // must hit (there is nothing more to compute).
        let mut c = DecisionCache::new(4);
        c.insert(key(64), entries(2), 2);
        let (got, _) = c.lookup(&key(64), 10).expect("hit");
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn lru_eviction_keeps_recently_used_keys() {
        let mut c = DecisionCache::new(2);
        c.insert(key(32), entries(1), 8640);
        c.insert(key(48), entries(1), 8640);
        // Touch 32 so 48 becomes the LRU victim.
        assert!(c.lookup(&key(32), 1).is_some());
        c.insert(key(64), entries(1), 8640);
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c.lookup(&key(32), 1).is_some());
        assert!(c.lookup(&key(48), 1).is_none(), "LRU entry evicted");
        assert!(c.lookup(&key(64), 1).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = DecisionCache::new(0);
        c.insert(key(64), entries(3), 8640);
        assert!(c.is_empty());
        assert!(c.lookup(&key(64), 1).is_none());
        assert_eq!(c.capacity(), 0);
    }

    #[test]
    fn snapshot_restore_preserves_decisions_and_lru_order() {
        const FP: u64 = 0xabcd;
        let mut c = DecisionCache::new(8);
        c.insert(key(32), entries(2), 8640);
        c.insert(key(48), entries(3), 8640);
        c.insert(key(64), entries(1), 8640);
        // Touch 32 so the LRU order is 48 < 64 < 32.
        assert!(c.lookup(&key(32), 1).is_some());
        let snap = c.snapshot(FP);
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.entries[0].key, key(48), "least recently used first");
        assert_eq!(snap.entries[2].key, key(32));

        let mut restored = DecisionCache::new(8);
        assert_eq!(restored.restore(&snap, FP), Ok(3));
        for (k, n) in [(key(32), 2), (key(48), 3), (key(64), 1)] {
            let (got, candidates) = restored.lookup(&k, n).expect("restored entry hits");
            assert_eq!(got, entries(n)[..], "entries are bit-for-bit");
            assert_eq!(candidates, 8640);
        }
        // LRU order survived: with capacity 3, inserting one more must
        // evict 48 (the snapshot's least recently used), not 32.
        let mut tight = DecisionCache::new(3);
        tight.restore(&snap, FP).unwrap();
        tight.insert(key(96), entries(1), 8640);
        assert!(tight.lookup(&key(48), 1).is_none(), "snapshot LRU entry evicted first");
        assert!(tight.lookup(&key(32), 1).is_some());
    }

    #[test]
    fn snapshot_of_a_cache_state_is_canonical() {
        // Two caches that went through the same access history serialize
        // to the same JSON, regardless of hash-map iteration order.
        let build = || {
            let mut c = DecisionCache::new(8);
            for n in [32u32, 48, 64, 80, 96] {
                c.insert(key(n), entries(2), 8640);
            }
            c.lookup(&key(48), 1);
            c
        };
        assert_eq!(build().snapshot(7).to_json(), build().snapshot(7).to_json());
    }

    #[test]
    fn restore_rejects_stale_fingerprints_and_versions_untouched() {
        const FP: u64 = 1;
        let mut src = DecisionCache::new(8);
        src.insert(key(64), entries(2), 8640);
        let mut snap = src.snapshot(FP);

        let mut c = DecisionCache::new(8);
        c.insert(key(32), entries(1), 8640);
        assert_eq!(
            c.restore(&snap, 2),
            Err(SnapshotError::RankerMismatch { found: 1, expected: 2 })
        );
        snap.format_version = SNAPSHOT_FORMAT_VERSION + 1;
        assert_eq!(
            c.restore(&snap, FP),
            Err(SnapshotError::FormatVersion {
                found: SNAPSHOT_FORMAT_VERSION + 1,
                expected: SNAPSHOT_FORMAT_VERSION
            })
        );
        // Both rejections left the cache exactly as it was.
        assert_eq!(c.len(), 1);
        assert!(c.lookup(&key(32), 1).is_some());
        assert!(c.lookup(&key(64), 1).is_none());
    }

    #[test]
    fn restore_into_a_smaller_cache_keeps_the_mru_tail_without_fake_evictions() {
        const FP: u64 = 3;
        let mut src = DecisionCache::new(16);
        for n in [32u32, 48, 64, 80, 96] {
            src.insert(key(n), entries(1), 8640);
        }
        // Touch 32 so the MRU tail is {80, 96, 32}.
        src.lookup(&key(32), 1);
        let snap = src.snapshot(FP);

        let mut small = DecisionCache::new(3);
        assert_eq!(small.restore(&snap, FP), Ok(3), "only what fits counts as applied");
        assert_eq!(small.len(), 3);
        assert_eq!(small.evictions(), 0, "skipping the overflow is not eviction pressure");
        for n in [80u32, 96, 32] {
            assert!(small.lookup(&key(n), 1).is_some(), "MRU entry {n} survived");
        }
        for n in [48u32, 64] {
            assert!(small.lookup(&key(n), 1).is_none(), "LRU overflow {n} skipped");
        }
    }

    #[test]
    fn restore_into_zero_capacity_applies_nothing() {
        let mut src = DecisionCache::new(4);
        src.insert(key(64), entries(1), 8640);
        let snap = src.snapshot(0);
        let mut c = DecisionCache::new(0);
        assert_eq!(c.restore(&snap, 0), Ok(0));
        assert!(c.is_empty());
    }

    #[test]
    fn extract_moves_a_fingerprint_slice_out() {
        let mut c = DecisionCache::new(8);
        for n in [32u32, 48, 64] {
            c.insert(key(n), entries(1), 8640);
        }
        let moving = key(48).fingerprint();
        let slice = c.extract(9, |fp| fp == moving);
        assert_eq!(slice.len(), 1);
        assert_eq!(slice.entries[0].key, key(48));
        assert_eq!(c.len(), 2, "extracted entries left the cache");
        assert_eq!(c.evictions(), 0, "a topology change is not an eviction");
        // The slice restores into another cache (the receiving shard).
        let mut other = DecisionCache::new(8);
        other.restore(&slice, 9).unwrap();
        assert!(other.lookup(&key(48), 1).is_some());
    }

    #[test]
    fn eviction_order_survives_interleaved_replacements_and_extracts() {
        // Replacements and extracts must keep the LRU side index exact:
        // after any interleaving, eviction still removes the entry with the
        // oldest access, never a stale index victim.
        let mut c = DecisionCache::new(3);
        c.insert(key(32), entries(1), 8640);
        c.insert(key(48), entries(1), 8640);
        c.insert(key(64), entries(1), 8640);
        // Replace 32 (now MRU), extract 64, then fill back up.
        c.insert(key(32), entries(2), 8640);
        let gone = key(64).fingerprint();
        assert_eq!(c.extract(1, |fp| fp == gone).len(), 1);
        c.insert(key(80), entries(1), 8640);
        assert_eq!(c.len(), 3);
        // LRU order is now 48 < 32 < 80: one more insert evicts 48.
        c.insert(key(96), entries(1), 8640);
        assert_eq!(c.evictions(), 1);
        assert!(c.lookup(&key(48), 1).is_none(), "oldest access evicted");
        assert!(c.lookup(&key(32), 2).is_some(), "replacement refreshed recency");
        assert!(c.lookup(&key(80), 1).is_some());
        assert!(c.lookup(&key(96), 1).is_some());
    }

    #[test]
    fn full_capacity_inserts_do_not_scan_the_whole_map() {
        // Micro-assert for the steady-state insert cost: 40k inserts into
        // a full 20k-entry cache (40k victim selections in total, counting
        // the fill) finish in well under the bound even in debug builds.
        // The previous full-scan eviction (`min_by_key` over the map) paid
        // O(capacity) per insert — ~400M map probes for this workload,
        // minutes in a debug build — so a generous wall-clock bound cleanly
        // separates the two implementations without being machine-picky.
        const CAPACITY: usize = 20_000;
        const INSERTS: u32 = 60_000;
        let mut c = DecisionCache::new(CAPACITY);
        let started = std::time::Instant::now();
        for n in 0..INSERTS {
            c.insert(key(8 + n), entries(1), 8640);
        }
        let elapsed = started.elapsed();
        assert_eq!(c.len(), CAPACITY);
        assert_eq!(c.evictions() as usize, INSERTS as usize - CAPACITY);
        assert!(
            elapsed < std::time::Duration::from_secs(30),
            "steady-state inserts took {elapsed:?} — eviction is scanning again"
        );
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let mut c = DecisionCache::new(4);
        c.insert(key(64), entries(1), 8640);
        assert!(c.lookup(&key(64), 1).is_some());
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits(), 1);
        assert!(c.lookup(&key(64), 1).is_none());
    }
}
