//! The decision cache: canonical instance identity → top-k tuning answer.
//!
//! Serving traffic is dominated by repeated and near-duplicate queries
//! (the same kernels at the same sizes, tuned again and again across a
//! fleet), so the single highest-leverage optimization of the serving
//! layer is to not rank at all: answers are memoized per
//! [`InstanceKey`] — the projection of an instance onto exactly the fields
//! the feature encoder reads, so two differently *named* but structurally
//! identical kernels share one entry.
//!
//! The cache stores the `k` best `(tuning, score)` pairs computed for a
//! key; a lookup asking for at most that many entries is a hit. Capacity
//! is bounded; eviction is least-recently-used (a monotonic tick per
//! access, linear scan on overflow — capacities are thousands, not
//! millions, and the scan only runs on insertions past capacity).

use std::collections::HashMap;

use stencil_model::{InstanceKey, TuningVector};

/// One cached answer.
#[derive(Debug, Clone)]
struct CachedDecision {
    /// Best-first `(tuning, score)` pairs; a prefix answers smaller `k`s.
    entries: Vec<(TuningVector, f64)>,
    /// Size of the candidate set the entries were selected from.
    candidates: usize,
    /// Tick of the most recent lookup or insertion (LRU ordering).
    last_used: u64,
}

/// A bounded LRU cache of top-k tuning decisions keyed by [`InstanceKey`].
///
/// Owned by the service worker (no interior locking); the service exposes
/// its counters through [`ServeStats`](crate::ServeStats).
#[derive(Debug)]
pub struct DecisionCache {
    map: HashMap<InstanceKey, CachedDecision>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl DecisionCache {
    /// A cache holding at most `capacity` decisions (`0` disables caching:
    /// every lookup misses and insertions are dropped).
    pub fn new(capacity: usize) -> Self {
        DecisionCache {
            map: HashMap::with_capacity(capacity.min(4096)),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up the `k` best entries for `key`. A hit requires the cached
    /// decision to hold at least `min(k, candidates)` entries — a request
    /// for more alternatives than were ever computed is a miss and will be
    /// recomputed (and re-inserted) by the caller.
    pub fn lookup(
        &mut self,
        key: &InstanceKey,
        k: usize,
    ) -> Option<(Vec<(TuningVector, f64)>, usize)> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(d) if d.entries.len() >= k.min(d.candidates) => {
                d.last_used = self.tick;
                self.hits += 1;
                Some((d.entries[..k.min(d.entries.len())].to_vec(), d.candidates))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) the decision for `key`, evicting the least
    /// recently used entry when capacity is exceeded.
    pub fn insert(
        &mut self,
        key: InstanceKey,
        entries: Vec<(TuningVector, f64)>,
        candidates: usize,
    ) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let fresh = CachedDecision { entries, candidates, last_used: self.tick };
        if self.map.insert(key, fresh).is_none() && self.map.len() > self.capacity {
            let lru = self
                .map
                .iter()
                .min_by_key(|(_, d)| d.last_used)
                .map(|(k, _)| k.clone())
                .expect("cache over capacity is non-empty");
            self.map.remove(&lru);
            self.evictions += 1;
        }
    }

    /// Number of resident decisions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that were answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through to the pipeline.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries displaced by capacity pressure.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Drops every resident decision (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_model::{GridSize, StencilInstance, StencilKernel};

    fn key(n: u32) -> InstanceKey {
        StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(n)).unwrap().key()
    }

    fn entries(n: usize) -> Vec<(TuningVector, f64)> {
        (0..n).map(|i| (TuningVector::new(8, 8, 8, i as u32 % 9, 1), -(i as f64))).collect()
    }

    #[test]
    fn lookup_hits_any_k_up_to_the_stored_depth() {
        let mut c = DecisionCache::new(8);
        assert!(c.lookup(&key(64), 1).is_none());
        c.insert(key(64), entries(5), 8640);
        for k in 0..=5 {
            let (got, candidates) = c.lookup(&key(64), k).expect("hit");
            assert_eq!(got.len(), k);
            assert_eq!(candidates, 8640);
            assert_eq!(got[..], entries(5)[..k]);
        }
        // Deeper than stored: miss (caller recomputes and re-inserts).
        assert!(c.lookup(&key(64), 6).is_none());
        c.insert(key(64), entries(10), 8640);
        assert_eq!(c.lookup(&key(64), 6).unwrap().0.len(), 6);
        assert_eq!(c.len(), 1, "replacement, not duplication");
        assert_eq!(c.hits(), 7);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn k_beyond_the_candidate_set_still_hits() {
        // A 2-candidate space can only ever yield 2 entries; asking for 10
        // must hit (there is nothing more to compute).
        let mut c = DecisionCache::new(4);
        c.insert(key(64), entries(2), 2);
        let (got, _) = c.lookup(&key(64), 10).expect("hit");
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn lru_eviction_keeps_recently_used_keys() {
        let mut c = DecisionCache::new(2);
        c.insert(key(32), entries(1), 8640);
        c.insert(key(48), entries(1), 8640);
        // Touch 32 so 48 becomes the LRU victim.
        assert!(c.lookup(&key(32), 1).is_some());
        c.insert(key(64), entries(1), 8640);
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c.lookup(&key(32), 1).is_some());
        assert!(c.lookup(&key(48), 1).is_none(), "LRU entry evicted");
        assert!(c.lookup(&key(64), 1).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = DecisionCache::new(0);
        c.insert(key(64), entries(3), 8640);
        assert!(c.is_empty());
        assert!(c.lookup(&key(64), 1).is_none());
        assert_eq!(c.capacity(), 0);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let mut c = DecisionCache::new(4);
        c.insert(key(64), entries(1), 8640);
        assert!(c.lookup(&key(64), 1).is_some());
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits(), 1);
        assert!(c.lookup(&key(64), 1).is_none());
    }
}
