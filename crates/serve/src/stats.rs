//! Service observability: lock-free counters and their public snapshot.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Internal counter cells, shared between the worker thread (writer) and
/// any number of snapshot readers. All updates are relaxed — the numbers
/// are diagnostics, not synchronization.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub requests: AtomicU64,
    pub batches: AtomicU64,
    pub max_batch: AtomicU64,
    pub scored_instances: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub cache_evictions: AtomicU64,
    pub cache_entries: AtomicU64,
}

impl Counters {
    pub(crate) fn snapshot(&self) -> ServeStats {
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            scored_instances: self.scored_instances.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            cache_entries: self.cache_entries.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of a [`TuneService`](crate::TuneService)'s
/// counters (taken with [`TuneService::stats`](crate::TuneService::stats)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests answered (cache hits included).
    pub requests: u64,
    /// Micro-batches formed (each is one queue drain).
    pub batches: u64,
    /// Largest micro-batch observed.
    pub max_batch: u64,
    /// Unique instances that went through the scoring pipeline — with
    /// within-batch dedup this can be far below `cache_misses`.
    pub scored_instances: u64,
    /// Requests answered from the decision cache.
    pub cache_hits: u64,
    /// Requests that needed a pipeline pass.
    pub cache_misses: u64,
    /// Cache entries displaced by capacity pressure.
    pub cache_evictions: u64,
    /// Entries currently resident in the cache.
    pub cache_entries: u64,
}

impl ServeStats {
    /// Cache hit rate in `[0, 1]` (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean requests per micro-batch (0 when no batch was formed).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

impl fmt::Display for ServeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests in {} batches (mean {:.1}, max {}), cache {}/{} hit ({:.0}%), \
             {} scored, {} resident, {} evicted",
            self.requests,
            self.batches,
            self.mean_batch(),
            self.max_batch,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            self.hit_rate() * 100.0,
            self.scored_instances,
            self.cache_entries,
            self.cache_evictions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = ServeStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.mean_batch(), 0.0);
    }

    #[test]
    fn snapshot_reflects_counter_updates() {
        let c = Counters::default();
        c.requests.fetch_add(10, Ordering::Relaxed);
        c.batches.fetch_add(2, Ordering::Relaxed);
        c.max_batch.fetch_max(7, Ordering::Relaxed);
        c.cache_hits.fetch_add(6, Ordering::Relaxed);
        c.cache_misses.fetch_add(4, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.requests, 10);
        assert_eq!(s.mean_batch(), 5.0);
        assert_eq!(s.max_batch, 7);
        assert!((s.hit_rate() - 0.6).abs() < 1e-12);
        let line = s.to_string();
        assert!(line.contains("10 requests"), "{line}");
        assert!(line.contains("60%"), "{line}");
    }
}
