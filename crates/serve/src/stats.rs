//! Service observability: lock-free counters, latency/batch-size
//! histograms, and their public snapshot.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::{Deserialize, Serialize};
use sorl_obs::PromWriter;

/// Number of batch-size histogram buckets: `1`, `2`, `3-4`, `5-8`, `9-16`,
/// `17-32`, `33-64`, `>64`.
pub const BATCH_SIZE_BUCKETS: usize = 8;

/// Number of latency histogram buckets. Bucket `i` covers latencies up to
/// `2^i` microseconds, so the range spans 1 µs to ~36 minutes with 2x
/// resolution — plenty for percentile diagnostics of a micro-batching
/// loop.
pub const LATENCY_BUCKETS: usize = 32;

/// Histogram bucket for a batch of `n` requests.
fn batch_size_bucket(n: usize) -> usize {
    // sorl-lint: allow(cast, "a bit count is at most 64; always fits usize")
    if n <= 1 { 0 } else { (usize::BITS - (n - 1).leading_zeros()) as usize }
        .min(BATCH_SIZE_BUCKETS - 1)
}

/// Histogram bucket for a batch latency (bucket upper bound `2^i` µs).
fn latency_bucket(d: Duration) -> usize {
    // Saturate the u128 microsecond count instead of truncating: a
    // pathological duration (> ~584k years) must land in the top bucket,
    // not wrap into a low one.
    let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX).max(1);
    // sorl-lint: allow(cast, "a bit count is at most 64; always fits usize")
    if us <= 1 { 0 } else { (u64::BITS - (us - 1).leading_zeros()) as usize }
        .min(LATENCY_BUCKETS - 1)
}

/// The latency a bucket index reports: its upper bound, in seconds.
fn latency_bucket_upper_s(bucket: usize) -> f64 {
    (1u64 << bucket) as f64 * 1e-6
}

/// Number of batches the rolling shed-control latency window spans.
pub(crate) const RECENT_WINDOW: usize = 64;

/// A ring over the last [`RECENT_WINDOW`] batch latencies (µs), owned by
/// the worker thread. Its p99 is what admission control sheds on: unlike
/// the all-time histogram it *recovers* — once an overload episode ends,
/// fresh fast batches push the slow ones out of the window and shedding
/// stops.
#[derive(Debug)]
pub(crate) struct RecentLatencies {
    buf: [u64; RECENT_WINDOW],
    len: usize,
    next: usize,
}

impl RecentLatencies {
    pub(crate) fn new() -> Self {
        RecentLatencies { buf: [0; RECENT_WINDOW], len: 0, next: 0 }
    }

    /// Records one batch latency and returns the window's current p99.
    pub(crate) fn record_p99_us(&mut self, latency: Duration) -> u64 {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        if let Some(slot) = self.buf.get_mut(self.next) {
            *slot = us;
        }
        self.next = (self.next + 1) % RECENT_WINDOW;
        self.len = (self.len + 1).min(RECENT_WINDOW);
        // Sort a copy of the populated prefix (the ring fills front to
        // back, so `buf[..len]` is exactly the recorded samples).
        let mut sorted = self.buf;
        let window = sorted.get_mut(..self.len).unwrap_or_default();
        window.sort_unstable();
        // Index of the ceil(0.99 * len)-th order statistic (1-based),
        // in exact integer arithmetic (len <= 64, no overflow).
        let rank = (99 * window.len()).div_ceil(100).max(1);
        window.get(rank - 1).copied().unwrap_or(us)
    }
}

/// Internal counter cells, shared between the worker thread (writer), the
/// admission check on every submitting thread, and any number of snapshot
/// readers. All updates are relaxed — the numbers are diagnostics and
/// shed heuristics, not synchronization. The worker publishes every cell
/// (histograms included) *before* replying to the batch, so a client that
/// reads `stats()` right after its answer arrives sees its own batch.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub requests: AtomicU64,
    pub batches: AtomicU64,
    pub max_batch: AtomicU64,
    pub scored_instances: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub cache_evictions: AtomicU64,
    pub cache_entries: AtomicU64,
    /// Live gauge: tuning requests admitted but not yet drained by the
    /// worker (incremented by submitters, decremented on dequeue).
    pub queue_depth: AtomicU64,
    /// Submissions fast-rejected because the queue hit its depth cap.
    pub shed_queue: AtomicU64,
    /// Submissions fast-rejected because the rolling p99 batch latency
    /// crossed the configured shed threshold.
    pub shed_latency: AtomicU64,
    /// p99 over the last [`RECENT_WINDOW`] batch latencies, µs — published
    /// by the worker, read by every admission check.
    pub recent_p99_us: AtomicU64,
    pub batch_sizes: [AtomicU64; BATCH_SIZE_BUCKETS],
    pub batch_latency: [AtomicU64; LATENCY_BUCKETS],
}

impl Counters {
    /// Records one served batch's size and first-dequeue-to-answers
    /// latency.
    pub(crate) fn record_batch(&self, size: usize, latency: Duration) {
        // Both bucket functions clamp to the last bucket; `get` keeps the
        // serving path panic-free even if the bucket math ever regresses.
        if let Some(cell) = self.batch_sizes.get(batch_size_bucket(size)) {
            cell.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(cell) = self.batch_latency.get(latency_bucket(latency)) {
            cell.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn snapshot(&self) -> ServeStats {
        let mut batch_size_hist = [0u64; BATCH_SIZE_BUCKETS];
        for (o, c) in batch_size_hist.iter_mut().zip(&self.batch_sizes) {
            *o = c.load(Ordering::Relaxed);
        }
        let mut latency = [0u64; LATENCY_BUCKETS];
        for (o, c) in latency.iter_mut().zip(&self.batch_latency) {
            *o = c.load(Ordering::Relaxed);
        }
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            scored_instances: self.scored_instances.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            cache_entries: self.cache_entries.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            shed_queue: self.shed_queue.load(Ordering::Relaxed),
            shed_latency: self.shed_latency.load(Ordering::Relaxed),
            recent_batch_latency_p99_s: self.recent_p99_us.load(Ordering::Relaxed) as f64 * 1e-6,
            batch_size_hist,
            batch_latency_p50_s: histogram_percentile(&latency, 0.50),
            batch_latency_p95_s: histogram_percentile(&latency, 0.95),
            batch_latency_p99_s: histogram_percentile(&latency, 0.99),
            batch_latency_hist: latency,
        }
    }
}

/// The `q`-quantile of a latency histogram: the upper bound of the first
/// bucket at which the cumulative count reaches `q` of the total (0 when
/// the histogram is empty). Resolution is the bucket width (2x), which is
/// the right fidelity for a lock-free histogram — these are diagnostics,
/// not benchmark numbers.
fn histogram_percentile(hist: &[u64], q: f64) -> f64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0.0;
    }
    // sorl-lint: allow(cast, "float-to-int `as` saturates; value is clamped to [1, total]")
    let target = (q * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &count) in hist.iter().enumerate() {
        seen += count;
        if seen >= target {
            return latency_bucket_upper_s(i);
        }
    }
    latency_bucket_upper_s(hist.len() - 1)
}

/// A point-in-time snapshot of a [`TuneService`](crate::TuneService)'s
/// counters (taken with [`TuneService::stats`](crate::TuneService::stats)).
/// Serializable, so shard transports can ship it across processes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ServeStats {
    /// Requests answered (cache hits included).
    pub requests: u64,
    /// Micro-batches formed (each is one queue drain).
    pub batches: u64,
    /// Largest micro-batch observed.
    pub max_batch: u64,
    /// Unique instances that went through the scoring pipeline — with
    /// within-batch dedup this can be far below `cache_misses`.
    pub scored_instances: u64,
    /// Requests answered from the decision cache.
    pub cache_hits: u64,
    /// Requests that needed a pipeline pass.
    pub cache_misses: u64,
    /// Cache entries displaced by capacity pressure.
    pub cache_evictions: u64,
    /// Entries currently resident in the cache.
    pub cache_entries: u64,
    /// Requests admitted but not yet drained by the worker — a live gauge
    /// of queue pressure (the other half of the admission-control signal).
    #[serde(default)]
    pub queue_depth: u64,
    /// Submissions fast-rejected with
    /// [`ServeError::Overloaded`](crate::ServeError::Overloaded) because
    /// the submission queue was at its configured depth cap.
    #[serde(default)]
    pub shed_queue: u64,
    /// Submissions fast-rejected because the rolling p99 batch latency
    /// crossed the configured shed threshold while the queue was backed
    /// up.
    #[serde(default)]
    pub shed_latency: u64,
    /// p99 batch latency over the most recent batches (a short rolling
    /// window), seconds — the latency signal admission control sheds on.
    /// Unlike the all-time percentiles below, this recovers when an
    /// overload episode ends.
    #[serde(default)]
    pub recent_batch_latency_p99_s: f64,
    /// Batches by size: `1`, `2`, `3-4`, `5-8`, `9-16`, `17-32`, `33-64`,
    /// `>64` requests.
    pub batch_size_hist: [u64; BATCH_SIZE_BUCKETS],
    /// Median per-batch latency (first dequeue to answers ready), seconds.
    ///
    /// # Resolution contract
    ///
    /// Every `batch_latency_*_s` percentile reports the **upper bound** of
    /// the log2-µs histogram bucket the quantile lands in (bucket `i`
    /// covers `(2^(i-1), 2^i]` µs). The reported value is therefore never
    /// below the true percentile, but can overstate it by up to 2x — a
    /// single 100 µs sample reports as exactly `128e-6` s, its bucket's
    /// upper bound. 0 until a batch was served.
    pub batch_latency_p50_s: f64,
    /// 95th-percentile per-batch latency, seconds. Bucket upper bound —
    /// see the resolution contract on
    /// [`batch_latency_p50_s`](Self::batch_latency_p50_s).
    pub batch_latency_p95_s: f64,
    /// 99th-percentile per-batch latency, seconds. Bucket upper bound —
    /// see the resolution contract on
    /// [`batch_latency_p50_s`](Self::batch_latency_p50_s).
    pub batch_latency_p99_s: f64,
    /// Raw per-batch latency histogram the percentiles above are computed
    /// from: bucket `i` counts batches with latency in `(2^(i-1), 2^i]`
    /// µs. Shipping the buckets (not just the quantiles) lets fleet
    /// aggregation recompute true merged percentiles and lets a metrics
    /// endpoint expose a real Prometheus histogram.
    #[serde(default)]
    pub batch_latency_hist: [u64; LATENCY_BUCKETS],
}

impl ServeStats {
    /// Cache hit rate in `[0, 1]` (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean requests per micro-batch (0 when no batch was formed).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }

    /// Total submissions shed by admission control (queue-cap plus
    /// latency rejections). Sheds are *not* counted in
    /// [`requests`](Self::requests) — they never reached the worker.
    pub fn sheds(&self) -> u64 {
        self.shed_queue + self.shed_latency
    }

    /// Merges per-shard snapshots into one fleet-wide view.
    ///
    /// Counters and histograms sum; `max_batch` takes the fleet maximum;
    /// `queue_depth` sums (total queued work across the fleet); the
    /// rolling `recent_batch_latency_p99_s` takes the worst shard (a
    /// max-merge is the only sound combination for an admission signal).
    /// The all-time percentiles are **recomputed from the summed latency
    /// histogram**, so the merged p99 is a true fleet percentile, not an
    /// average of per-shard quantiles.
    pub fn merge<'a>(stats: impl IntoIterator<Item = &'a ServeStats>) -> ServeStats {
        let mut out = ServeStats::default();
        for s in stats {
            out.requests += s.requests;
            out.batches += s.batches;
            out.max_batch = out.max_batch.max(s.max_batch);
            out.scored_instances += s.scored_instances;
            out.cache_hits += s.cache_hits;
            out.cache_misses += s.cache_misses;
            out.cache_evictions += s.cache_evictions;
            out.cache_entries += s.cache_entries;
            out.queue_depth += s.queue_depth;
            out.shed_queue += s.shed_queue;
            out.shed_latency += s.shed_latency;
            out.recent_batch_latency_p99_s =
                out.recent_batch_latency_p99_s.max(s.recent_batch_latency_p99_s);
            for (o, c) in out.batch_size_hist.iter_mut().zip(&s.batch_size_hist) {
                *o += c;
            }
            for (o, c) in out.batch_latency_hist.iter_mut().zip(&s.batch_latency_hist) {
                *o += c;
            }
        }
        out.batch_latency_p50_s = histogram_percentile(&out.batch_latency_hist, 0.50);
        out.batch_latency_p95_s = histogram_percentile(&out.batch_latency_hist, 0.95);
        out.batch_latency_p99_s = histogram_percentile(&out.batch_latency_hist, 0.99);
        out
    }

    /// Renders this snapshot as Prometheus families in the
    /// `sorl_serve_*` namespace (exposition format 0.0.4).
    pub fn collect_prometheus(&self, w: &mut PromWriter) {
        w.counter(
            "sorl_serve_requests_total",
            "Tuning requests answered (cache hits included).",
            self.requests,
        );
        w.counter("sorl_serve_batches_total", "Micro-batches formed.", self.batches);
        w.gauge("sorl_serve_max_batch", "Largest micro-batch observed.", self.max_batch as f64);
        w.counter(
            "sorl_serve_scored_instances_total",
            "Unique instances that went through the scoring pipeline.",
            self.scored_instances,
        );
        w.counter(
            "sorl_serve_cache_hits_total",
            "Requests answered from the decision cache.",
            self.cache_hits,
        );
        w.counter(
            "sorl_serve_cache_misses_total",
            "Requests that needed a pipeline pass.",
            self.cache_misses,
        );
        w.counter(
            "sorl_serve_cache_evictions_total",
            "Cache entries displaced by capacity pressure.",
            self.cache_evictions,
        );
        w.gauge(
            "sorl_serve_cache_entries",
            "Entries resident in the decision cache.",
            self.cache_entries as f64,
        );
        w.gauge(
            "sorl_serve_queue_depth",
            "Requests admitted but not yet drained by the worker.",
            self.queue_depth as f64,
        );
        w.counter_per(
            "sorl_serve_shed_total",
            "Submissions fast-rejected by admission control, by reason.",
            &[
                (&[("reason", "queue")], self.shed_queue),
                (&[("reason", "latency")], self.shed_latency),
            ],
        );
        w.gauge(
            "sorl_serve_recent_batch_latency_p99_seconds",
            "Rolling-window p99 batch latency, the admission-control shed signal.",
            self.recent_batch_latency_p99_s,
        );
        w.histogram(
            "sorl_serve_batch_latency_seconds",
            "Per-batch latency, first dequeue to answers ready.",
            &self.batch_latency_hist,
            None,
        );
        // Batch sizes form a cumulative histogram over request counts:
        // bucket uppers 1, 2, 4, ..., 64, with the `>64` bucket as the
        // +Inf line. Sum of sizes is exactly `requests`, count is
        // `batches`.
        w.family("sorl_serve_batch_size", "Requests per micro-batch.", "histogram");
        let mut cumulative = 0u64;
        for (i, &count) in self.batch_size_hist.iter().enumerate() {
            cumulative += count;
            if i + 1 < BATCH_SIZE_BUCKETS {
                let upper = (1u64 << i).to_string();
                w.sample("sorl_serve_batch_size_bucket", &[("le", &upper)], cumulative as f64);
            }
        }
        w.sample("sorl_serve_batch_size_bucket", &[("le", "+Inf")], cumulative as f64);
        w.sample("sorl_serve_batch_size_sum", &[], self.requests as f64);
        w.sample("sorl_serve_batch_size_count", &[], self.batches as f64);
    }
}

impl fmt::Display for ServeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests in {} batches (mean {:.1}, max {}), cache {}/{} hit ({:.0}%), \
             {} scored, {} resident, {} evicted, {} shed ({} queue / {} latency), \
             batch latency p50/p95/p99 {:.3}/{:.3}/{:.3} ms",
            self.requests,
            self.batches,
            self.mean_batch(),
            self.max_batch,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            self.hit_rate() * 100.0,
            self.scored_instances,
            self.cache_entries,
            self.cache_evictions,
            self.sheds(),
            self.shed_queue,
            self.shed_latency,
            self.batch_latency_p50_s * 1e3,
            self.batch_latency_p95_s * 1e3,
            self.batch_latency_p99_s * 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recent_p99_rank_is_exact_at_window_boundaries() {
        // One sample: rank must clamp to 1, not 0 (ceil(0.99*1) = 1).
        let mut w = RecentLatencies::new();
        assert_eq!(w.record_p99_us(Duration::from_micros(42)), 42);

        // A full window: ceil(0.99 * 64) = 64, so the p99 is the maximum
        // order statistic — the integer rank math must not round down to
        // the 63rd and hide the worst batch.
        let mut w = RecentLatencies::new();
        let mut last = 0;
        for i in 1..=RECENT_WINDOW as u64 {
            last = w.record_p99_us(Duration::from_micros(i));
        }
        assert_eq!(last, RECENT_WINDOW as u64);
    }

    #[test]
    fn recent_p99_saturates_on_absurd_latencies() {
        // Duration::MAX in micros overflows u64; the window must pin it
        // to u64::MAX instead of truncating to a small number (which
        // would silently disable the latency shedder).
        let mut w = RecentLatencies::new();
        assert_eq!(w.record_p99_us(Duration::MAX), u64::MAX);
    }

    #[test]
    fn rates_handle_zero_denominators() {
        let s = ServeStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.mean_batch(), 0.0);
        assert_eq!(s.batch_latency_p50_s, 0.0, "no batches, no percentile");
        assert_eq!(s.batch_latency_p99_s, 0.0);
    }

    #[test]
    fn snapshot_reflects_counter_updates() {
        let c = Counters::default();
        c.requests.fetch_add(10, Ordering::Relaxed);
        c.batches.fetch_add(2, Ordering::Relaxed);
        c.max_batch.fetch_max(7, Ordering::Relaxed);
        c.cache_hits.fetch_add(6, Ordering::Relaxed);
        c.cache_misses.fetch_add(4, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.requests, 10);
        assert_eq!(s.mean_batch(), 5.0);
        assert_eq!(s.max_batch, 7);
        assert!((s.hit_rate() - 0.6).abs() < 1e-12);
        let line = s.to_string();
        assert!(line.contains("10 requests"), "{line}");
        assert!(line.contains("60%"), "{line}");
        assert!(line.contains("p50/p95/p99"), "{line}");
    }

    #[test]
    fn batch_size_buckets_split_at_powers_of_two() {
        assert_eq!(batch_size_bucket(0), 0);
        assert_eq!(batch_size_bucket(1), 0);
        assert_eq!(batch_size_bucket(2), 1);
        assert_eq!(batch_size_bucket(3), 2);
        assert_eq!(batch_size_bucket(4), 2);
        assert_eq!(batch_size_bucket(5), 3);
        assert_eq!(batch_size_bucket(8), 3);
        assert_eq!(batch_size_bucket(64), 6);
        assert_eq!(batch_size_bucket(65), 7);
        assert_eq!(batch_size_bucket(10_000), 7, "everything huge lands in the last bucket");
    }

    #[test]
    fn latency_buckets_are_log_scaled_upper_bounds() {
        assert_eq!(latency_bucket(Duration::ZERO), 0);
        assert_eq!(latency_bucket(Duration::from_micros(1)), 0);
        assert_eq!(latency_bucket(Duration::from_micros(2)), 1);
        assert_eq!(latency_bucket(Duration::from_micros(3)), 2);
        assert_eq!(latency_bucket(Duration::from_micros(1000)), 10, "1 ms in the 1024 us bucket");
        assert_eq!(latency_bucket(Duration::from_secs(3600)), LATENCY_BUCKETS - 1);
        assert_eq!(latency_bucket_upper_s(10), 1024e-6);
    }

    #[test]
    fn pathological_durations_saturate_into_the_top_bucket() {
        // `Duration::MAX.as_micros()` exceeds u64; a truncating `as` cast
        // would wrap it into a low bucket. It must saturate to the top.
        assert_eq!(latency_bucket(Duration::MAX), LATENCY_BUCKETS - 1);
        // A duration engineered so the low 64 bits of its microsecond
        // count are tiny (u64::MAX + 1 µs worth of time): wrapped, it
        // would land in bucket 0.
        let wrap = Duration::from_micros(u64::MAX)
            .checked_add(Duration::from_micros(1))
            .expect("fits in Duration");
        assert_eq!(latency_bucket(wrap), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn recent_window_p99_tracks_and_recovers() {
        let mut recent = RecentLatencies::new();
        // One slow batch in an empty window IS the p99.
        assert_eq!(recent.record_p99_us(Duration::from_millis(50)), 50_000);
        // A long run of fast batches pushes it out of the window — the
        // recovery property the all-time histogram cannot offer.
        let mut last = u64::MAX;
        for _ in 0..RECENT_WINDOW {
            last = recent.record_p99_us(Duration::from_micros(40));
        }
        assert_eq!(last, 40, "the slow batch aged out of the window");
        // One new slow batch among 63 fast ones is the p99 again (rank
        // ceil(0.99 * 64) = 64, the maximum).
        assert_eq!(recent.record_p99_us(Duration::from_millis(7)), 7_000);
    }

    #[test]
    fn shed_counters_surface_in_snapshot_and_display() {
        let c = Counters::default();
        c.queue_depth.fetch_add(3, Ordering::Relaxed);
        c.shed_queue.fetch_add(5, Ordering::Relaxed);
        c.shed_latency.fetch_add(2, Ordering::Relaxed);
        c.recent_p99_us.store(1500, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.queue_depth, 3);
        assert_eq!(s.sheds(), 7);
        assert!((s.recent_batch_latency_p99_s - 1.5e-3).abs() < 1e-12);
        let line = s.to_string();
        assert!(line.contains("7 shed (5 queue / 2 latency)"), "{line}");
    }

    #[test]
    fn stats_snapshot_serializes_roundtrip() {
        let c = Counters::default();
        c.requests.fetch_add(3, Ordering::Relaxed);
        c.record_batch(3, Duration::from_micros(40));
        let s = c.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: ServeStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn percentiles_come_from_the_recorded_distribution() {
        let c = Counters::default();
        // 98 fast batches (~4 us), 1 at ~1 ms, 1 at ~16 ms.
        for _ in 0..98 {
            c.record_batch(4, Duration::from_micros(3));
        }
        c.record_batch(4, Duration::from_micros(900));
        c.record_batch(4, Duration::from_micros(12_000));
        let s = c.snapshot();
        assert_eq!(s.batch_latency_p50_s, 4e-6, "median in the 4 us bucket");
        assert_eq!(s.batch_latency_p95_s, 4e-6);
        // p99 of 100 samples is the 99th: the ~1 ms one (1024 us bucket).
        assert_eq!(s.batch_latency_p99_s, 1024e-6);
        // Batch sizes: all 100 in the 3-4 bucket.
        assert_eq!(s.batch_size_hist[2], 100);
        assert_eq!(s.batch_size_hist.iter().sum::<u64>(), 100);
    }

    #[test]
    fn percentile_of_single_sample_is_its_bucket() {
        let c = Counters::default();
        c.record_batch(1, Duration::from_micros(100));
        let s = c.snapshot();
        // Pinned literal, per the documented resolution contract: a
        // percentile reports its bucket's *upper bound*, so one 100 µs
        // sample reads as exactly 128 µs (the `(64, 128]` µs bucket) —
        // an overstatement of up to 2x, never an understatement.
        assert_eq!(s.batch_latency_p50_s, 128e-6);
        assert_eq!(s.batch_latency_p99_s, 128e-6);
        assert_eq!(s.batch_size_hist[0], 1);
        assert_eq!(s.batch_latency_hist.iter().sum::<u64>(), 1, "raw histogram ships too");
    }

    #[test]
    fn merge_recomputes_percentiles_from_the_summed_histogram() {
        // Shard A: 98 fast batches. Shard B: two slow ones. The fleet p99
        // (99th of 100 samples) is a slow batch; averaging per-shard p99s
        // would miss it. merge() must find it in the summed histogram.
        let a = Counters::default();
        for _ in 0..98 {
            a.record_batch(2, Duration::from_micros(3));
        }
        a.requests.fetch_add(196, Ordering::Relaxed);
        a.batches.fetch_add(98, Ordering::Relaxed);
        a.max_batch.fetch_max(2, Ordering::Relaxed);
        let b = Counters::default();
        b.record_batch(64, Duration::from_micros(12_000));
        b.record_batch(64, Duration::from_micros(12_000));
        b.requests.fetch_add(128, Ordering::Relaxed);
        b.batches.fetch_add(2, Ordering::Relaxed);
        b.max_batch.fetch_max(64, Ordering::Relaxed);
        b.shed_queue.fetch_add(5, Ordering::Relaxed);

        let (sa, sb) = (a.snapshot(), b.snapshot());
        let merged = ServeStats::merge([&sa, &sb]);
        assert_eq!(merged.requests, 324);
        assert_eq!(merged.batches, 100);
        assert_eq!(merged.max_batch, 64);
        assert_eq!(merged.sheds(), 5);
        assert_eq!(merged.batch_latency_p50_s, 4e-6, "fast shard dominates the median");
        assert_eq!(merged.batch_latency_p99_s, 16_384e-6, "slow shard owns the fleet p99");
        assert_eq!(
            merged.batch_latency_hist.iter().sum::<u64>(),
            sa.batch_latency_hist.iter().sum::<u64>() + sb.batch_latency_hist.iter().sum::<u64>(),
        );
    }

    #[test]
    fn prometheus_page_covers_counters_sheds_and_histogram() {
        let c = Counters::default();
        c.requests.fetch_add(10, Ordering::Relaxed);
        c.batches.fetch_add(2, Ordering::Relaxed);
        c.shed_queue.fetch_add(3, Ordering::Relaxed);
        c.queue_depth.fetch_add(4, Ordering::Relaxed);
        c.record_batch(5, Duration::from_micros(100));
        let mut w = PromWriter::new();
        c.snapshot().collect_prometheus(&mut w);
        let page = w.into_string();
        assert!(page.contains("# TYPE sorl_serve_requests_total counter"), "{page}");
        assert!(page.contains("sorl_serve_requests_total 10"), "{page}");
        assert!(page.contains("sorl_serve_shed_total{reason=\"queue\"} 3"), "{page}");
        assert!(page.contains("sorl_serve_shed_total{reason=\"latency\"} 0"), "{page}");
        assert!(page.contains("sorl_serve_queue_depth 4"), "{page}");
        assert!(
            page.contains("sorl_serve_batch_latency_seconds_bucket{le=\"0.000128\"} 1"),
            "{page}"
        );
        assert!(page.contains("sorl_serve_batch_latency_seconds_bucket{le=\"+Inf\"} 1"), "{page}");
        assert!(page.contains("sorl_serve_batch_size_bucket{le=\"8\"} 1"), "{page}");
        assert!(page.contains("sorl_serve_batch_size_sum 10"), "{page}");
    }
}
