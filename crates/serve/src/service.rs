//! The tuning service: an MPSC request queue, a micro-batching worker,
//! cloneable client handles, and admission control.
//!
//! One worker thread owns the [`TuningSession`] (scratch buffers + shared
//! thread pool) and the [`DecisionCache`]. Clients submit
//! [`TuneRequest`]s through a cloneable [`TuneClient`]; the worker drains
//! the queue into a micro-batch, answers what it can from the cache,
//! deduplicates the remaining requests by [`InstanceKey`], and pushes the
//! unique instances through **one** pipelined encode/score pass
//! ([`TuningSession::top_k_batch`]) over the shared pool. Every answer is a
//! [`TopK`]: the k best tuning vectors with scores, from a partial select.
//!
//! Submission is non-blocking: [`TuneClient::submit`] returns a
//! [`TuneTicket`] (a poll-/callback-capable completion slot — see
//! [`crate::ticket`]) without ever parking on the tuning work, and the
//! blocking [`TuneClient::tune`] is a thin `submit + wait` wrapper.
//!
//! Submission is also *bounded*: the queue has a configurable depth cap
//! ([`ServeConfig::max_queue`]) and a latency shed threshold
//! ([`ServeConfig::shed_p99`]). When either trips, [`TuneClient::submit`]
//! fast-rejects with [`ServeError::Overloaded`] — a few atomic reads, no
//! queueing, no worker involvement — so overload degrades to cheap,
//! immediate rejections instead of timeout pile-ups deep in the queue.
//!
//! The cache is durable: [`TuneService::cache_snapshot`] exports it as a
//! [`CacheSnapshot`] (versioned by the ranker fingerprint) and
//! [`TuneService::import_cache`] replays one into a running service, so a
//! restarted process starts warm. [`TuneService::export_cache`] /
//! [`TuneService::extract_cache`] move key-fingerprint slices between
//! services — the warm-up shipping primitive of the shard router.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use sorl::session::TuningSession;
use sorl::tuner::TopK;
use sorl::StencilRanker;
use sorl_obs::{EventKind, FlightRecorder, SloConfig, SloTracker, SpanId, TraceId};
use stencil_exec::SharedPool;
use stencil_model::{InstanceKey, StencilInstance};

use crate::batching::AdaptiveGather;
use crate::cache::DecisionCache;
use crate::exemplar::ExemplarStore;
use crate::snapshot::{CacheSnapshot, SnapshotError};
use crate::stats::{Counters, RecentLatencies, ServeStats};
use crate::ticket::{self, TicketCompleter, TuneTicket};

/// One tuning query: an instance plus how many ranked alternatives the
/// caller wants back. Serializable, so shard transports can forward it
/// across processes verbatim.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneRequest {
    /// The stencil instance to tune.
    pub instance: StencilInstance,
    /// Number of best configurations to return (capped at the candidate
    /// set size; `0` is answered with an empty `TopK`).
    pub k: usize,
}

impl TuneRequest {
    /// A request for the `k` best configurations of `instance`.
    pub fn new(instance: StencilInstance, k: usize) -> Self {
        TuneRequest { instance, k }
    }
}

/// Which admission-control limit fast-rejected a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded submission queue is at its configured depth cap
    /// ([`ServeConfig::max_queue`]).
    QueueFull,
    /// The rolling p99 batch latency crossed [`ServeConfig::shed_p99`]
    /// while the queue was backed up — the service is falling behind, so
    /// new work is rejected before it can pile onto the queue.
    BatchLatency,
    /// A transport link refused the request at its per-connection
    /// in-flight cap. Local services never produce this; multiplexing
    /// shard transports do.
    LinkInFlight,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "submission queue at its depth cap"),
            ShedReason::BatchLatency => write!(f, "p99 batch latency over the shed threshold"),
            ShedReason::LinkInFlight => write!(f, "connection at its in-flight cap"),
        }
    }
}

/// Why a request could not be answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The service worker has shut down (or shut down before replying).
    Closed,
    /// Admission control fast-rejected the submission: the service (or the
    /// link to it) is overloaded. The request was **not** queued — retry
    /// against another shard, back off, or surface the pressure upstream.
    Overloaded(ShedReason),
    /// A cache snapshot was rejected (stale ranker, wrong format).
    Snapshot(SnapshotError),
    /// A transport carrying the request failed (connection refused or
    /// dropped, malformed or wrong-version wire traffic, corrupted
    /// transfer). Local services never produce this; remote shard
    /// transports do. The message names what went wrong.
    Transport(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Closed => write!(f, "tuning service is closed"),
            ServeError::Overloaded(reason) => write!(f, "service overloaded: {reason}"),
            ServeError::Snapshot(e) => write!(f, "cache snapshot rejected: {e}"),
            ServeError::Transport(e) => write!(f, "transport failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}

/// Service tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Scoring threads (ignored by
    /// [`TuneService::spawn_with_pool`]; `<= 1` scores inline on the
    /// worker thread).
    pub threads: usize,
    /// Largest micro-batch drained from the queue in one pass.
    pub max_batch: usize,
    /// How long the worker keeps polling for more requests after the first
    /// one arrived, to let a burst coalesce into one batch. Zero drains
    /// only what is already queued. With
    /// [`adaptive_gather`](Self::adaptive_gather) this is the *maximum*
    /// window; the worker picks the actual window per drain from the
    /// observed arrival rate.
    pub gather_window: Duration,
    /// Adapt the gather window to the arrival rate: a lone request in a
    /// quiet period is answered immediately, a sustained burst gets up to
    /// [`gather_window`](Self::gather_window) to coalesce (and less when
    /// the batch fills faster). Off by default — the fixed window is the
    /// established behavior.
    pub adaptive_gather: bool,
    /// Decision-cache capacity in entries (`0` disables caching).
    pub cache_capacity: usize,
    /// Minimum `k` computed (and cached) per pipeline pass, so follow-up
    /// requests asking for a few more alternatives than the first one
    /// still hit the cache.
    pub cache_k_floor: usize,
    /// Bounded submission queue: a submission finding this many requests
    /// already waiting is fast-rejected with
    /// [`ServeError::Overloaded`]`(`[`ShedReason::QueueFull`]`)` instead
    /// of queued. `0` means unbounded (the pre-admission-control
    /// behavior).
    pub max_queue: usize,
    /// Latency shed threshold: when the p99 over the most recent batches
    /// exceeds this *and* more than one full micro-batch is already
    /// queued, submissions are fast-rejected with
    /// [`ShedReason::BatchLatency`]. The queue-depth guard gives the
    /// shedder hysteresis — a briefly slow batch with an empty queue
    /// never sheds, and once the backlog drains admission resumes.
    /// `Duration::ZERO` disables latency shedding.
    pub shed_p99: Duration,
    /// Slow-request exemplar slots: the service keeps the full span
    /// chain of its `exemplar_capacity` slowest recent requests
    /// (`0` disables capture). See [`crate::ExemplarStore`].
    pub exemplar_capacity: usize,
    /// Absolute latency at/above which a request is exemplar-worthy.
    /// `Duration::ZERO` switches to the rolling-p99 trigger: any request
    /// slower than the p99 of recent request latencies is captured.
    pub exemplar_threshold: Duration,
    /// The latency+error SLO tracked by the service's burn-rate monitor
    /// (exported as `sorl_slo_*` gauges; see [`sorl_obs::SloTracker`]).
    pub slo: SloConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            max_batch: 64,
            gather_window: Duration::from_micros(50),
            adaptive_gather: false,
            cache_capacity: 1024,
            cache_k_floor: 8,
            max_queue: 4096,
            shed_p99: Duration::ZERO,
            exemplar_capacity: 8,
            exemplar_threshold: Duration::ZERO,
            slo: SloConfig::default(),
        }
    }
}

/// The admission check run on every submitting thread: a handful of
/// relaxed atomic reads against the thresholds, so a shed costs nanoseconds
/// and touches neither the queue nor the worker.
#[derive(Debug)]
struct Admission {
    /// [`ServeConfig::max_queue`] (0 = unbounded).
    max_queue: u64,
    /// [`ServeConfig::shed_p99`] in µs (0 = disabled).
    shed_p99_us: u64,
    /// Latency sheds require more than one full micro-batch queued.
    latency_floor: u64,
}

impl Admission {
    fn new(config: &ServeConfig) -> Self {
        Admission {
            max_queue: u64::try_from(config.max_queue).unwrap_or(u64::MAX),
            shed_p99_us: u64::try_from(config.shed_p99.as_micros()).unwrap_or(u64::MAX),
            latency_floor: u64::try_from(config.max_batch.max(1)).unwrap_or(u64::MAX),
        }
    }

    /// Admits (incrementing the queue-depth gauge) or sheds one
    /// submission.
    fn try_admit(&self, counters: &Counters) -> Result<(), ServeError> {
        let depth = counters.queue_depth.load(Ordering::Relaxed);
        if self.max_queue > 0 && depth >= self.max_queue {
            counters.shed_queue.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded(ShedReason::QueueFull));
        }
        if self.shed_p99_us > 0
            && depth > self.latency_floor
            && counters.recent_p99_us.load(Ordering::Relaxed) > self.shed_p99_us
        {
            counters.shed_latency.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded(ShedReason::BatchLatency));
        }
        counters.queue_depth.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// A key-fingerprint predicate selecting a cache slice (see
/// [`InstanceKey::fingerprint`]).
pub type KeyFilter = Box<dyn Fn(u64) -> bool + Send>;

/// Events the service's flight recorder can hold. Sized for "the last
/// few seconds of a busy service": at 3 events per request, 4096 slots
/// cover the most recent ~1300 requests.
const FLIGHT_RECORDER_EVENTS: usize = 4096;

enum Msg {
    Tune {
        req: TuneRequest,
        reply: TicketCompleter,
        trace: TraceId,
        span: SpanId,
        submitted: Instant,
    },
    Export {
        filter: Option<KeyFilter>,
        reply: mpsc::Sender<CacheSnapshot>,
    },
    Extract {
        filter: KeyFilter,
        reply: mpsc::Sender<CacheSnapshot>,
    },
    Import {
        snapshot: Box<CacheSnapshot>,
        reply: mpsc::Sender<Result<usize, ServeError>>,
    },
    Shutdown,
}

/// A running tuning service: one worker thread, an MPSC queue, any number
/// of clients.
///
/// ```no_run
/// use sorl::pipeline::{PipelineConfig, TrainingPipeline};
/// use sorl_serve::{ServeConfig, TuneService};
/// use stencil_model::{GridSize, StencilInstance, StencilKernel};
///
/// let out = TrainingPipeline::new(PipelineConfig::default()).run();
/// let service = TuneService::spawn(out.ranker, ServeConfig::default());
/// let client = service.client();
/// let q = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(128)).unwrap();
/// let top = client.tune(q, 3).unwrap();
/// for (t, score) in &top.entries {
///     println!("{t} (score {score:.3})");
/// }
/// println!("{}", service.stats());
/// ```
///
/// Dropping the service shuts the worker down; requests already queued at
/// that point are still answered, later submissions fail with
/// [`ServeError::Closed`].
#[derive(Debug)]
pub struct TuneService {
    tx: mpsc::Sender<Msg>,
    worker: Option<JoinHandle<()>>,
    counters: Arc<Counters>,
    admission: Arc<Admission>,
    recorder: Arc<FlightRecorder>,
    exemplars: Arc<ExemplarStore>,
    slo: Arc<SloTracker>,
    fingerprint: u64,
}

impl TuneService {
    /// Spawns a service with its own scoring pool of `config.threads`
    /// threads.
    pub fn spawn(ranker: StencilRanker, config: ServeConfig) -> Self {
        let pool = (config.threads > 1).then(|| SharedPool::new(config.threads));
        Self::spawn_inner(ranker, config, pool)
    }

    /// Spawns a service scoring over an existing shared pool — e.g. the
    /// execution engine's (`Engine::shared_pool`), so tuning and
    /// measurement share one set of worker threads.
    pub fn spawn_with_pool(ranker: StencilRanker, config: ServeConfig, pool: SharedPool) -> Self {
        Self::spawn_inner(ranker, config, Some(pool))
    }

    fn spawn_inner(ranker: StencilRanker, config: ServeConfig, pool: Option<SharedPool>) -> Self {
        let (tx, rx) = mpsc::channel();
        let counters = Arc::new(Counters::default());
        let admission = Arc::new(Admission::new(&config));
        let recorder = Arc::new(FlightRecorder::new(FLIGHT_RECORDER_EVENTS));
        let exemplars =
            Arc::new(ExemplarStore::new(config.exemplar_capacity, config.exemplar_threshold));
        // SLO threshold crossings land in the same recorder as the
        // request spans, so a trace dump shows when the budget started
        // burning next to the requests that burned it.
        let slo = Arc::new(SloTracker::with_recorder(config.slo, Arc::clone(&recorder)));
        let worker_counters = Arc::clone(&counters);
        let worker_recorder = Arc::clone(&recorder);
        let worker_exemplars = Arc::clone(&exemplars);
        let worker_slo = Arc::clone(&slo);
        let fingerprint = ranker.fingerprint();
        let session = match pool {
            Some(pool) => TuningSession::with_shared_pool(ranker, pool),
            None => TuningSession::new(ranker),
        };
        let worker = std::thread::Builder::new()
            .name("sorl-serve-worker".into())
            .spawn(move || {
                worker_loop(
                    rx,
                    session,
                    config,
                    &worker_counters,
                    &worker_recorder,
                    &worker_exemplars,
                    &worker_slo,
                    fingerprint,
                )
            })
            // sorl-lint: allow(panic, "spawn fails only on thread-resource exhaustion at service construction; there is no service to degrade gracefully yet")
            .expect("spawn sorl-serve worker");
        TuneService {
            tx,
            worker: Some(worker),
            counters,
            admission,
            recorder,
            exemplars,
            slo,
            fingerprint,
        }
    }

    /// A new client handle (cheap, cloneable, usable from any thread).
    pub fn client(&self) -> TuneClient {
        TuneClient {
            tx: self.tx.clone(),
            counters: Arc::clone(&self.counters),
            admission: Arc::clone(&self.admission),
            recorder: Arc::clone(&self.recorder),
            slo: Arc::clone(&self.slo),
        }
    }

    /// A point-in-time snapshot of the service counters.
    pub fn stats(&self) -> ServeStats {
        self.counters.snapshot()
    }

    /// The service's flight recorder: the most recent queue-wait /
    /// scoring spans and cache events, joinable on [`TraceId`] with a
    /// remote client's recorder ([`FlightRecorder::snapshot`]).
    pub fn flight_recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// The service's slow-request exemplar store: full span chains of
    /// the slowest recent requests (see [`crate::ExemplarStore`]).
    pub fn exemplars(&self) -> &Arc<ExemplarStore> {
        &self.exemplars
    }

    /// The service's SLO burn-rate tracker (see [`sorl_obs::SloTracker`]).
    pub fn slo(&self) -> &Arc<SloTracker> {
        &self.slo
    }

    /// Fingerprint of the ranking function this service answers with
    /// ([`StencilRanker::fingerprint`]): the version every cache snapshot
    /// it produces is stamped with, and the only version it accepts back.
    pub fn ranker_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Exports the whole decision cache as a durable [`CacheSnapshot`]
    /// (least recently used first, stamped with the ranker fingerprint).
    /// Save it with [`CacheSnapshot::save_json`] and feed it to
    /// [`import_cache`](Self::import_cache) after a restart to start warm.
    pub fn cache_snapshot(&self) -> Result<CacheSnapshot, ServeError> {
        self.export(None)
    }

    /// Exports the cache slice whose [`InstanceKey::fingerprint`]s satisfy
    /// `filter`, leaving the cache untouched — what a shard hands to a new
    /// owner that is *also* keeping its own copy warm.
    pub fn export_cache(
        &self,
        filter: impl Fn(u64) -> bool + Send + 'static,
    ) -> Result<CacheSnapshot, ServeError> {
        self.export(Some(Box::new(filter)))
    }

    /// Removes and returns the cache slice whose
    /// [`InstanceKey::fingerprint`]s satisfy `filter` — the ownership
    /// handoff of a topology change (the keys now route elsewhere, so
    /// keeping the decisions here would only waste capacity).
    pub fn extract_cache(
        &self,
        filter: impl Fn(u64) -> bool + Send + 'static,
    ) -> Result<CacheSnapshot, ServeError> {
        let (reply, rx) = mpsc::channel();
        self.tx
            .send(Msg::Extract { filter: Box::new(filter), reply })
            .map_err(|_| ServeError::Closed)?;
        rx.recv().map_err(|_| ServeError::Closed)
    }

    /// Replays a snapshot into the live cache (merging with resident
    /// decisions). The snapshot must have been produced under this
    /// service's exact [`ranker_fingerprint`](Self::ranker_fingerprint)
    /// and the current format version; anything else is rejected with
    /// [`ServeError::Snapshot`] without touching the cache. Returns the
    /// number of entries applied.
    pub fn import_cache(&self, snapshot: CacheSnapshot) -> Result<usize, ServeError> {
        let (reply, rx) = mpsc::channel();
        self.tx
            .send(Msg::Import { snapshot: Box::new(snapshot), reply })
            .map_err(|_| ServeError::Closed)?;
        rx.recv().map_err(|_| ServeError::Closed)?
    }

    fn export(&self, filter: Option<KeyFilter>) -> Result<CacheSnapshot, ServeError> {
        let (reply, rx) = mpsc::channel();
        self.tx.send(Msg::Export { filter, reply }).map_err(|_| ServeError::Closed)?;
        rx.recv().map_err(|_| ServeError::Closed)
    }

    /// Shuts the worker down, answering everything already queued first.
    /// Equivalent to dropping the service, but explicit.
    pub fn shutdown(self) {}
}

impl Drop for TuneService {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// A handle for submitting tuning queries to a [`TuneService`].
#[derive(Debug, Clone)]
pub struct TuneClient {
    tx: mpsc::Sender<Msg>,
    counters: Arc<Counters>,
    admission: Arc<Admission>,
    recorder: Arc<FlightRecorder>,
    slo: Arc<SloTracker>,
}

impl TuneClient {
    /// Enqueues a query and returns a ticket to wait on (or poll, or hang a
    /// callback on — see [`TuneTicket`]). Submitting never blocks on the
    /// tuning work itself, and never queues past the admission limits: an
    /// overloaded service answers here, immediately, with
    /// [`ServeError::Overloaded`].
    pub fn submit(&self, instance: StencilInstance, k: usize) -> Result<TuneTicket, ServeError> {
        self.submit_traced(instance, k, TraceId::fresh())
    }

    /// [`submit`](Self::submit) under a caller-provided trace — the entry
    /// point for transports that carried a trace id across the wire. The
    /// request's queue wait and batch events are recorded under `trace`,
    /// so the submitter's recorder and this service's recorder join on
    /// one id.
    pub fn submit_traced(
        &self,
        instance: StencilInstance,
        k: usize,
        trace: TraceId,
    ) -> Result<TuneTicket, ServeError> {
        if let Err(e) = self.admission.try_admit(&self.counters) {
            // A shed request never ran, but the caller still experienced
            // it: it spends error budget.
            self.slo.record_rejected();
            return Err(e);
        }
        let (ticket, reply) = ticket::pair();
        // The queue-wait span opens at admission and is closed by the
        // worker at dequeue; its duration IS the queue delay.
        let span = SpanId::fresh();
        self.recorder.record(EventKind::SpanBegin, trace, span, "queue_wait");
        let msg = Msg::Tune {
            req: TuneRequest::new(instance, k),
            reply,
            trace,
            span,
            submitted: Instant::now(),
        };
        if self.tx.send(msg).is_err() {
            // Nothing was queued; hand the admission slot back and close
            // the span. (The completer we just dropped fails `ticket`
            // with `Closed` too, but the caller never sees that ticket.)
            self.counters.queue_depth.fetch_sub(1, Ordering::Relaxed);
            self.recorder.record(EventKind::SpanEnd, trace, span, "queue_wait");
            self.slo.record_rejected();
            return Err(ServeError::Closed);
        }
        Ok(ticket)
    }

    /// Submits one query and blocks for its answer.
    pub fn tune(&self, instance: StencilInstance, k: usize) -> Result<TopK, ServeError> {
        self.submit(instance, k)?.wait()
    }

    /// Submits a whole batch up front (giving the worker one coalesced
    /// micro-batch to chew on), then collects every answer in order.
    pub fn tune_many(&self, requests: Vec<TuneRequest>) -> Result<Vec<TopK>, ServeError> {
        let tickets: Result<Vec<TuneTicket>, ServeError> =
            requests.into_iter().map(|r| self.submit(r.instance, r.k)).collect();
        tickets?.into_iter().map(TuneTicket::wait).collect()
    }
}

/// One queue drain: requests, their completion slots, their traces, and
/// their submission times (for end-to-end latency accounting).
type Batch = Vec<(TuneRequest, TicketCompleter, TraceId, Instant)>;

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    rx: mpsc::Receiver<Msg>,
    mut session: TuningSession,
    config: ServeConfig,
    counters: &Counters,
    recorder: &FlightRecorder,
    exemplars: &ExemplarStore,
    slo: &SloTracker,
    fingerprint: u64,
) {
    let mut cache = DecisionCache::new(config.cache_capacity);
    let max_batch = config.max_batch.max(1);
    let mut adaptive = config.adaptive_gather.then(AdaptiveGather::new);
    let mut recent = RecentLatencies::new();
    let mut last_drain = Instant::now();
    let mut live = true;
    // Every dequeued Tune releases one admission slot (the depth gauge
    // counts requests admitted but not yet drained into a batch) and
    // closes the queue-wait span the submitter opened.
    let dequeued = |trace: TraceId, span: SpanId| {
        counters.queue_depth.fetch_sub(1, Ordering::Relaxed);
        recorder.record(EventKind::SpanEnd, trace, span, "queue_wait");
    };
    'serve: while live {
        let mut batch: Batch = Vec::new();
        // Block for the first tuning request; cache-control messages are
        // handled inline (they never join a batch).
        let started = loop {
            match rx.recv() {
                Ok(Msg::Tune { req, reply, trace, span, submitted }) => {
                    dequeued(trace, span);
                    batch.push((req, reply, trace, submitted));
                    break Instant::now();
                }
                Ok(Msg::Shutdown) | Err(_) => break 'serve,
                Ok(control) => handle_control(control, &mut cache, counters, fingerprint),
            }
        };
        // Micro-batch gather: drain what is queued, then sleep (not spin)
        // inside the gather window so a burst in flight coalesces into
        // this batch without stealing cycles from the submitting clients.
        let window = match &adaptive {
            Some(a) => a.window(config.gather_window, max_batch),
            None => config.gather_window,
        };
        let deadline = started + window;
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(Msg::Tune { req, reply, trace, span, submitted }) => {
                    dequeued(trace, span);
                    batch.push((req, reply, trace, submitted));
                }
                Ok(Msg::Shutdown) => {
                    live = false;
                    break;
                }
                Ok(control) => handle_control(control, &mut cache, counters, fingerprint),
                Err(mpsc::TryRecvError::Empty) => {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match rx.recv_timeout(deadline - now) {
                        Ok(Msg::Tune { req, reply, trace, span, submitted }) => {
                            dequeued(trace, span);
                            batch.push((req, reply, trace, submitted));
                        }
                        Ok(Msg::Shutdown) => {
                            live = false;
                            break;
                        }
                        Ok(control) => handle_control(control, &mut cache, counters, fingerprint),
                        Err(mpsc::RecvTimeoutError::Timeout) => break,
                        Err(mpsc::RecvTimeoutError::Disconnected) => {
                            live = false;
                            break;
                        }
                    }
                }
                Err(mpsc::TryRecvError::Disconnected) => {
                    live = false;
                    break;
                }
            }
        }
        if let Some(a) = &mut adaptive {
            // One rate sample per drain: the batch arrived over the time
            // since the previous drain ended (idle gaps included — that is
            // exactly what makes the rate drop when traffic goes quiet).
            let now = Instant::now();
            a.observe(batch.len(), now.saturating_duration_since(last_drain));
            last_drain = now;
        }
        serve_batch(
            &mut session,
            &mut cache,
            &config,
            counters,
            recorder,
            exemplars,
            slo,
            &mut recent,
            batch,
            started,
        );
    }
}

/// Handles a cache-control message (export / extract / import) on the
/// worker thread, where the cache lives.
fn handle_control(msg: Msg, cache: &mut DecisionCache, counters: &Counters, fingerprint: u64) {
    match msg {
        Msg::Export { filter, reply } => {
            let snap = match filter {
                Some(f) => cache.snapshot_filtered(fingerprint, f),
                None => cache.snapshot(fingerprint),
            };
            let _ = reply.send(snap);
        }
        Msg::Extract { filter, reply } => {
            let snap = cache.extract(fingerprint, filter);
            counters.cache_entries.store(cache.len() as u64, Ordering::Relaxed);
            let _ = reply.send(snap);
        }
        Msg::Import { snapshot, reply } => {
            let result = cache.restore(&snapshot, fingerprint).map_err(ServeError::from);
            counters.cache_entries.store(cache.len() as u64, Ordering::Relaxed);
            counters.cache_evictions.store(cache.evictions(), Ordering::Relaxed);
            let _ = reply.send(result);
        }
        // Tune and Shutdown are consumed by the worker loop itself.
        // sorl-lint: allow(panic, "the worker loop matches Tune/Shutdown before calling here; reaching this arm is a dispatch bug")
        Msg::Tune { .. } | Msg::Shutdown => unreachable!("not a control message"),
    }
}

/// Requests of one micro-batch sharing an [`InstanceKey`]: scored once,
/// answered many times.
struct Group {
    key: InstanceKey,
    /// Index (into the batch) of the request whose instance is encoded.
    representative: usize,
    /// Depth to compute: max requested `k` of the members, at least the
    /// cache floor.
    k: usize,
    /// Batch indices answered by this group.
    members: Vec<usize>,
}

#[allow(clippy::too_many_arguments)]
fn serve_batch(
    session: &mut TuningSession,
    cache: &mut DecisionCache,
    config: &ServeConfig,
    counters: &Counters,
    recorder: &FlightRecorder,
    exemplars: &ExemplarStore,
    slo: &SloTracker,
    recent: &mut RecentLatencies,
    batch: Batch,
    started: Instant,
) {
    if batch.is_empty() {
        return;
    }
    counters.requests.fetch_add(batch.len() as u64, Ordering::Relaxed);
    counters.batches.fetch_add(1, Ordering::Relaxed);
    counters.max_batch.fetch_max(batch.len() as u64, Ordering::Relaxed);

    // One scoring span per batch, recorded under the first request's
    // trace (a joined timeline shows which batch carried the request);
    // per-request cache hits/misses are instants inside it, each under
    // its own request's trace.
    let batch_trace = batch.first().map(|(_, _, t, _)| *t).unwrap_or_else(TraceId::fresh);
    let batch_span = recorder.span(batch_trace, "score_batch");

    // Pass 1: answer from the cache; group the misses by canonical key so
    // every unique instance is encoded and scored exactly once.
    let k_floor = if config.cache_capacity == 0 { 0 } else { config.cache_k_floor };
    let mut answers: Vec<Option<TopK>> = batch.iter().map(|_| None).collect();
    let mut groups: Vec<Group> = Vec::new();
    let mut group_of: HashMap<InstanceKey, usize> = HashMap::new();
    for (i, (req, _, trace, _)) in batch.iter().enumerate() {
        let key = req.instance.key();
        if let Some((entries, candidates)) = cache.lookup(&key, req.k) {
            recorder.event(*trace, batch_span.span_id(), "cache_hit");
            if let Some(slot) = answers.get_mut(i) {
                *slot = Some(TopK { entries, candidates, seconds: 0.0 });
            }
            continue;
        }
        recorder.event(*trace, batch_span.span_id(), "cache_miss");
        match group_of.get(&key).and_then(|&g| groups.get_mut(g)) {
            Some(group) => {
                group.k = group.k.max(req.k);
                group.members.push(i);
            }
            None => {
                group_of.insert(key.clone(), groups.len());
                groups.push(Group {
                    key,
                    representative: i,
                    k: req.k.max(k_floor),
                    members: vec![i],
                });
            }
        }
    }

    // Pass 2: one pipelined encode/score pass over the unique instances.
    if !groups.is_empty() {
        // `filter_map` never actually filters: every representative is a
        // batch index recorded by pass 1, so queries stays parallel to
        // groups (checked below before the zip relies on it).
        let queries: Vec<(&StencilInstance, usize)> = groups
            .iter()
            .filter_map(|g| batch.get(g.representative).map(|(req, ..)| (&req.instance, g.k)))
            .collect();
        debug_assert_eq!(queries.len(), groups.len());
        let results = session.top_k_batch(&queries);
        counters.scored_instances.fetch_add(groups.len() as u64, Ordering::Relaxed);
        for (g, top) in groups.iter().zip(results) {
            cache.insert(g.key.clone(), top.entries.clone(), top.candidates);
            for &i in &g.members {
                let Some((req, ..)) = batch.get(i) else { continue };
                let Some(slot) = answers.get_mut(i) else { continue };
                *slot = Some(TopK {
                    entries: top.entries.iter().take(req.k).cloned().collect(),
                    candidates: top.candidates,
                    seconds: top.seconds,
                });
            }
        }
    }

    // Publish the counters and histograms BEFORE replying: a client that
    // reads `stats()` right after its answer arrives must see this batch.
    counters.cache_hits.store(cache.hits(), Ordering::Relaxed);
    counters.cache_misses.store(cache.misses(), Ordering::Relaxed);
    counters.cache_evictions.store(cache.evictions(), Ordering::Relaxed);
    counters.cache_entries.store(cache.len() as u64, Ordering::Relaxed);
    let latency = started.elapsed();
    counters.record_batch(batch.len(), latency);
    // The rolling p99 the latency shedder reads: unlike the all-time
    // histogram it *recovers* once slow batches age out of the window, so
    // a past overload episode does not shed forever.
    counters.recent_p99_us.store(recent.record_p99_us(latency), Ordering::Relaxed);

    // Close the scoring span before the replies go out, mirroring the
    // publish-before-reply contract for the counters above.
    drop(batch_span);

    // Pass 3: complete the tickets (a dropped ticket is fine — the client
    // gave up; completing it is a no-op nobody observes), then account
    // each request's end-to-end latency. Accounting runs AFTER the
    // completion because `on_ready` callbacks fire on this thread — a
    // transport's reply span has already closed by the time the
    // exemplar snapshot is taken, so the captured chain is complete.
    for ((_, reply, trace, submitted), answer) in batch.into_iter().zip(answers) {
        // sorl-lint: allow(panic, "pass 1 or pass 2 filled every slot: each miss joined a group and every group was scored")
        reply.complete(Ok(answer.expect("every request answered")));
        let latency = submitted.elapsed();
        slo.record(latency, true);
        if exemplars.observe(latency) {
            exemplars.capture(trace, latency, recorder.dump("service", Some(trace)).events);
        }
    }
}
