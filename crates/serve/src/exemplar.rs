//! Slow-request exemplars: bounded, evidence-carrying samples of the
//! worst recent requests.
//!
//! Aggregate latency histograms say *that* the p99 regressed; an
//! exemplar says *why*, by keeping the full span chain (queue wait,
//! batch scoring, cache events) of a request that actually blew the
//! budget. The store is bounded and keeps the slowest-N: a request is
//! exemplar-worthy when its end-to-end latency exceeds the configured
//! threshold ([`crate::ServeConfig::exemplar_threshold`]) or, with the
//! threshold disabled, the rolling p99 of recent request latencies.
//!
//! Capture is two-phase so the hot path stays cheap: [`observe`]
//! (a mutex'd ring update, every request) decides worthiness, and only
//! worthy requests pay for a filtered flight-recorder snapshot before
//! [`capture`] files it. Both run on the service worker thread.
//!
//! [`observe`]: ExemplarStore::observe
//! [`capture`]: ExemplarStore::capture

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};
use sorl_obs::{PromWriter, TraceId, WireEvent};

use crate::stats::RecentLatencies;

/// One captured slow request: its trace, latency, and the span events
/// that were still resident in the flight recorder at capture time.
/// Serializable — `TraceDumpOk` ships these across the wire.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Exemplar {
    /// Raw trace id of the slow request.
    pub trace: u64,
    /// End-to-end latency (submit to reply), µs.
    pub latency_us: u64,
    /// When the exemplar was captured, ns since the unix epoch.
    pub captured_unix_ns: u64,
    /// The request's surviving span chain (wall-clock re-anchored).
    pub events: Vec<WireEvent>,
}

struct Inner {
    recent: RecentLatencies,
    exemplars: Vec<Exemplar>,
}

/// Bounded keep-the-slowest store of [`Exemplar`]s.
pub struct ExemplarStore {
    capacity: usize,
    threshold_us: u64,
    captured_total: AtomicU64,
    p99_us: AtomicU64,
    inner: Mutex<Inner>,
}

impl ExemplarStore {
    /// A store keeping the `capacity` slowest requests (`0` disables
    /// capture). `threshold` is the absolute worthiness cutoff;
    /// `Duration::ZERO` switches to the rolling-p99 trigger.
    pub fn new(capacity: usize, threshold: Duration) -> Self {
        ExemplarStore {
            capacity,
            threshold_us: u64::try_from(threshold.as_micros()).unwrap_or(u64::MAX),
            captured_total: AtomicU64::new(0),
            p99_us: AtomicU64::new(0),
            inner: Mutex::new(Inner { recent: RecentLatencies::new(), exemplars: Vec::new() }),
        }
    }

    /// Feeds one finished request's latency into the rolling window and
    /// reports whether it is worth the cost of a recorder snapshot:
    /// worthy per the trigger, *and* slow enough to displace a resident
    /// exemplar when the store is full.
    pub fn observe(&self, latency: Duration) -> bool {
        let lat_us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        // p99 is computed over the window *before* this sample joins it,
        // so a lone slow request in quiet traffic still triggers.
        // sorl-lint: allow(atomic, "read and written under the inner mutex; the atomic only feeds lock-free metric reads")
        let prior_p99 = self.p99_us.load(Ordering::Relaxed);
        // sorl-lint: allow(atomic, "written under the inner mutex; advisory trigger value")
        self.p99_us.store(inner.recent.record_p99_us(latency), Ordering::Relaxed);
        if self.capacity == 0 {
            return false;
        }
        let worthy = if self.threshold_us > 0 {
            lat_us >= self.threshold_us
        } else {
            prior_p99 > 0 && lat_us > prior_p99
        };
        if !worthy {
            return false;
        }
        if inner.exemplars.len() >= self.capacity {
            let floor = inner.exemplars.iter().map(|e| e.latency_us).min().unwrap_or(0);
            if lat_us <= floor {
                return false;
            }
        }
        true
    }

    /// Files an exemplar [`observe`](Self::observe) judged worthy,
    /// evicting the fastest resident one when over capacity.
    pub fn capture(&self, trace: TraceId, latency: Duration, events: Vec<WireEvent>) {
        if self.capacity == 0 {
            return;
        }
        let exemplar = Exemplar {
            trace: trace.as_u64(),
            latency_us: u64::try_from(latency.as_micros()).unwrap_or(u64::MAX),
            captured_unix_ns: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
                .unwrap_or(0),
            events,
        };
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.exemplars.push(exemplar);
        // sorl-lint: allow(atomic, "diagnostic counter, never synchronizes")
        self.captured_total.fetch_add(1, Ordering::Relaxed);
        while inner.exemplars.len() > self.capacity {
            if let Some(fastest) =
                inner.exemplars.iter().enumerate().min_by_key(|(_, e)| e.latency_us).map(|(i, _)| i)
            {
                inner.exemplars.remove(fastest);
            }
        }
    }

    /// Resident exemplars, slowest first.
    pub fn exemplars(&self) -> Vec<Exemplar> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = inner.exemplars.clone();
        out.sort_by_key(|e| std::cmp::Reverse(e.latency_us));
        out
    }

    /// The slowest resident exemplar, if any.
    pub fn slowest(&self) -> Option<Exemplar> {
        self.exemplars().into_iter().next()
    }

    /// Exemplars captured over the store's lifetime (including evicted).
    pub fn captured_total(&self) -> u64 {
        // sorl-lint: allow(atomic, "diagnostic counter read; no ordering required")
        self.captured_total.load(Ordering::Relaxed)
    }

    /// The rolling request-latency p99 the trigger compares against, µs.
    pub fn rolling_p99_us(&self) -> u64 {
        // sorl-lint: allow(atomic, "advisory metric read; no ordering required")
        self.p99_us.load(Ordering::Relaxed)
    }

    /// Renders the `sorl_exemplar_*` families onto a metrics page.
    pub fn collect_prometheus(&self, w: &mut PromWriter) {
        let resident = self.exemplars();
        w.counter(
            "sorl_exemplar_captured_total",
            "Slow-request exemplars captured (including since-evicted ones).",
            self.captured_total(),
        );
        w.gauge(
            "sorl_exemplar_resident",
            "Exemplars currently held in the bounded store.",
            resident.len() as f64,
        );
        w.gauge(
            "sorl_exemplar_slowest_seconds",
            "Latency of the slowest resident exemplar.",
            resident.first().map(|e| e.latency_us as f64 * 1e-6).unwrap_or(0.0),
        );
        w.gauge(
            "sorl_exemplar_threshold_seconds",
            "Configured absolute worthiness threshold (0 = rolling-p99 trigger).",
            self.threshold_us as f64 * 1e-6,
        );
        w.gauge(
            "sorl_exemplar_p99_trigger_seconds",
            "Rolling request-latency p99 the p99 trigger compares against.",
            self.rolling_p99_us() as f64 * 1e-6,
        );
    }
}

impl std::fmt::Debug for ExemplarStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExemplarStore")
            .field("capacity", &self.capacity)
            .field("threshold_us", &self.threshold_us)
            .field("captured_total", &self.captured_total())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn threshold_trigger_captures_and_keeps_the_slowest() {
        let store = ExemplarStore::new(2, ms(10));
        for (i, lat) in [5u64, 12, 30, 20, 8].into_iter().enumerate() {
            let worthy = store.observe(ms(lat));
            assert_eq!(worthy, lat >= 10, "latency {lat} ms");
            if worthy {
                store.capture(TraceId::from_wire(i as u64 + 1), ms(lat), Vec::new());
            }
        }
        let resident = store.exemplars();
        assert_eq!(store.captured_total(), 3);
        assert_eq!(resident.len(), 2, "bounded at capacity");
        assert_eq!(
            resident.iter().map(|e| e.latency_us).collect::<Vec<_>>(),
            [30_000, 20_000],
            "the 12 ms exemplar was evicted by slower ones"
        );
        assert_eq!(store.slowest().map(|e| e.trace), Some(3));
    }

    #[test]
    fn full_store_rejects_requests_no_slower_than_the_floor() {
        let store = ExemplarStore::new(1, ms(1));
        assert!(store.observe(ms(50)));
        store.capture(TraceId::from_wire(1), ms(50), Vec::new());
        assert!(!store.observe(ms(40)), "worthy but cannot displace the resident 50 ms");
        assert!(store.observe(ms(60)));
    }

    #[test]
    fn p99_trigger_fires_on_outliers_only() {
        let store = ExemplarStore::new(4, Duration::ZERO);
        assert!(!store.observe(ms(5)), "no p99 yet: never worthy");
        for _ in 0..20 {
            assert!(!store.observe(ms(5)), "steady traffic is not an outlier");
        }
        assert!(store.observe(ms(500)), "outlier over the rolling p99");
    }

    #[test]
    fn zero_capacity_disables_capture() {
        let store = ExemplarStore::new(0, ms(1));
        assert!(!store.observe(ms(100)));
        store.capture(TraceId::from_wire(1), ms(100), Vec::new());
        assert!(store.exemplars().is_empty());
    }

    #[test]
    fn prometheus_families_render() {
        let store = ExemplarStore::new(2, ms(10));
        store.observe(ms(25));
        store.capture(TraceId::from_wire(9), ms(25), Vec::new());
        let mut w = PromWriter::new();
        store.collect_prometheus(&mut w);
        let page = w.into_string();
        assert!(page.contains("sorl_exemplar_captured_total 1"), "{page}");
        assert!(page.contains("sorl_exemplar_resident 1"), "{page}");
        assert!(page.contains("sorl_exemplar_slowest_seconds 0.025"), "{page}");
        assert!(page.contains("sorl_exemplar_threshold_seconds 0.01"), "{page}");
    }
}
