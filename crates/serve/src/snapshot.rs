//! Durable decision-cache snapshots: the wire/disk format that makes a
//! tuning service restartable *warm* and lets shards ship cache slices to
//! each other on topology changes.
//!
//! A [`CacheSnapshot`] carries three things:
//!
//! * a **format version** ([`SNAPSHOT_FORMAT_VERSION`]) — bumped whenever
//!   the entry layout changes, so an old binary never misreads a new file,
//! * the **ranker fingerprint** the decisions were computed under
//!   ([`StencilRanker::fingerprint`](sorl::StencilRanker) — encoder config
//!   plus weight hash): cached decisions are *model outputs*, so a snapshot
//!   is only valid for the exact ranking function that produced it. Restoring
//!   under any other fingerprint is rejected with
//!   [`SnapshotError::RankerMismatch`] — a retrained model silently serving
//!   a predecessor's decisions would be a correctness bug, not a cache
//!   miss,
//! * the **entries**, each a cached top-k decision plus its LRU tick, in
//!   least-recently-used-first order so a restore replays them oldest
//!   first and the restored cache evicts in the same order the live one
//!   would have.
//!
//! The serialized form is JSON (everything in the workspace persists as
//! JSON — rankers, perf snapshots); the format is small enough that a
//! future binary format can slot in behind the same [`CacheSnapshot`]
//! struct without touching callers.

use std::path::Path;

use serde::{Deserialize, Serialize};
use stencil_model::{InstanceKey, TuningVector};

/// Version of the snapshot entry layout. Bump on any incompatible change
/// to [`SnapshotEntry`] or [`CacheSnapshot`]; restores check it first.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// One persisted decision: everything the cache knows about a key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotEntry {
    /// Canonical instance identity.
    pub key: InstanceKey,
    /// Best-first `(tuning, score)` pairs, exactly as cached.
    pub entries: Vec<(TuningVector, f64)>,
    /// Size of the candidate set the entries were selected from.
    pub candidates: usize,
    /// The source cache's LRU tick at the entry's last use (snapshot
    /// entries are ordered by it; only the *order* survives a restore).
    pub last_used: u64,
}

/// A serializable image of a [`DecisionCache`](crate::DecisionCache),
/// versioned by the ranker that computed its decisions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// Entry-layout version ([`SNAPSHOT_FORMAT_VERSION`] at write time).
    pub format_version: u32,
    /// Fingerprint of the ranking function the decisions came from.
    pub ranker_fingerprint: u64,
    /// Cached decisions, least recently used first.
    pub entries: Vec<SnapshotEntry>,
}

impl CacheSnapshot {
    /// An empty snapshot for the given ranking function.
    pub fn empty(ranker_fingerprint: u64) -> Self {
        CacheSnapshot {
            format_version: SNAPSHOT_FORMAT_VERSION,
            ranker_fingerprint,
            entries: Vec::new(),
        }
    }

    /// Number of persisted decisions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no decisions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Splits the snapshot by a key-fingerprint predicate: entries whose
    /// [`InstanceKey::fingerprint`] satisfies `pred` stay, the rest are
    /// returned as a second snapshot (same version and ranker). This is
    /// how a router partitions a departing shard's cache among the
    /// remaining owners.
    pub fn split_off(&mut self, pred: impl Fn(u64) -> bool) -> CacheSnapshot {
        let mut other = CacheSnapshot::empty(self.ranker_fingerprint);
        other.format_version = self.format_version;
        let mut kept = Vec::with_capacity(self.entries.len());
        for e in self.entries.drain(..) {
            if pred(e.key.fingerprint()) {
                kept.push(e);
            } else {
                other.entries.push(e);
            }
        }
        self.entries = kept;
        other
    }

    /// Serializes the snapshot as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("cache snapshot serializes")
    }

    /// Parses a snapshot serialized by [`to_json`](Self::to_json). The
    /// version and fingerprint checks happen at *restore* time, not here —
    /// parsing a stale snapshot is fine (a router may still inspect it).
    pub fn from_json(json: &str) -> Result<Self, SnapshotError> {
        serde_json::from_str(json).map_err(|e| SnapshotError::Parse(e.to_string()))
    }

    /// Writes the snapshot to `path` as JSON.
    pub fn save_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads a snapshot written by [`save_json`](Self::save_json).
    pub fn load_json(path: &Path) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// Why a snapshot could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot was written under a different entry layout.
    FormatVersion {
        /// Version found in the snapshot.
        found: u32,
        /// Version this binary writes and reads.
        expected: u32,
    },
    /// The snapshot's decisions came from a different ranking function.
    RankerMismatch {
        /// Fingerprint found in the snapshot.
        found: u64,
        /// Fingerprint of the live ranker.
        expected: u64,
    },
    /// The snapshot could not be parsed at all.
    Parse(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::FormatVersion { found, expected } => {
                write!(f, "snapshot format version {found} (this binary reads {expected})")
            }
            SnapshotError::RankerMismatch { found, expected } => write!(
                f,
                "snapshot was computed by ranker {found:#018x}, live ranker is {expected:#018x} \
                 — stale decisions rejected"
            ),
            SnapshotError::Parse(e) => write!(f, "snapshot does not parse: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_model::{GridSize, StencilInstance, StencilKernel};

    fn entry(n: u32, last_used: u64) -> SnapshotEntry {
        let key =
            StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(n)).unwrap().key();
        SnapshotEntry {
            key,
            entries: vec![(TuningVector::new(8, 8, 8, 2, 1), 0.5)],
            candidates: 8640,
            last_used,
        }
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let snap = CacheSnapshot {
            format_version: SNAPSHOT_FORMAT_VERSION,
            ranker_fingerprint: 0xdead_beef_cafe_f00d,
            entries: vec![entry(64, 3), entry(96, 7)],
        };
        let back = CacheSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn file_roundtrip() {
        let snap = CacheSnapshot {
            format_version: SNAPSHOT_FORMAT_VERSION,
            ranker_fingerprint: 17,
            entries: vec![entry(128, 1)],
        };
        let dir = std::env::temp_dir().join("sorl-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        snap.save_json(&path).unwrap();
        assert_eq!(CacheSnapshot::load_json(&path).unwrap(), snap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_does_not_parse() {
        assert!(matches!(CacheSnapshot::from_json("not json"), Err(SnapshotError::Parse(_))));
        assert!(CacheSnapshot::load_json(Path::new("/definitely/missing.json")).is_err());
    }

    #[test]
    fn split_off_partitions_by_key_fingerprint() {
        let mut snap = CacheSnapshot {
            format_version: SNAPSHOT_FORMAT_VERSION,
            ranker_fingerprint: 5,
            entries: vec![entry(64, 1), entry(96, 2), entry(128, 3)],
        };
        let keep_fp = snap.entries[1].key.fingerprint();
        let moved = snap.split_off(|fp| fp == keep_fp);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.entries[0].key.fingerprint(), keep_fp);
        assert_eq!(moved.len(), 2);
        assert_eq!(moved.ranker_fingerprint, 5);
        // Relative order preserved on both sides.
        assert!(moved.entries[0].last_used < moved.entries[1].last_used);
    }

    #[test]
    fn errors_render_their_context() {
        let e = SnapshotError::RankerMismatch { found: 1, expected: 2 };
        let s = e.to_string();
        assert!(s.contains("stale"), "{s}");
        let e = SnapshotError::FormatVersion { found: 9, expected: SNAPSHOT_FORMAT_VERSION };
        assert!(e.to_string().contains('9'));
    }
}
