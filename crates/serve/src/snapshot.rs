//! Durable decision-cache snapshots: the wire/disk format that makes a
//! tuning service restartable *warm* and lets shards ship cache slices to
//! each other on topology changes.
//!
//! A [`CacheSnapshot`] carries three things:
//!
//! * a **format version** ([`SNAPSHOT_FORMAT_VERSION`]) — bumped whenever
//!   the entry layout changes, so an old binary never misreads a new file,
//! * the **ranker fingerprint** the decisions were computed under
//!   ([`StencilRanker::fingerprint`](sorl::StencilRanker) — encoder config
//!   plus weight hash): cached decisions are *model outputs*, so a snapshot
//!   is only valid for the exact ranking function that produced it. Restoring
//!   under any other fingerprint is rejected with
//!   [`SnapshotError::RankerMismatch`] — a retrained model silently serving
//!   a predecessor's decisions would be a correctness bug, not a cache
//!   miss,
//! * the **entries**, each a cached top-k decision plus its LRU tick, in
//!   least-recently-used-first order so a restore replays them oldest
//!   first and the restored cache evicts in the same order the live one
//!   would have.
//!
//! The serialized form on disk is JSON (everything in the workspace
//! persists as JSON — rankers, perf snapshots). Over the wire the chunked
//! form is codec-generic: [`CacheSnapshot::to_chunks_with`] /
//! [`CacheSnapshot::from_chunks_with`] parameterize the per-entry
//! encoding while keeping chunk boundaries, checksumming and torn-transfer
//! validation identical — the shard transport's binary payload codec
//! (`sorl_shard::wire::bin`) plugs in there for wire v4 links.

use std::path::Path;

use serde::{Deserialize, Serialize};
use stencil_model::{InstanceKey, TuningVector};

/// Version of the snapshot entry layout. Bump on any incompatible change
/// to [`SnapshotEntry`] or [`CacheSnapshot`]; restores check it first.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// Byte budget at which [`CacheSnapshot::to_chunks`] closes a chunk even
/// below its entry-count limit. Far under any transport frame cap (the
/// TCP wire caps frames at 64 MiB), with one-entry chunks as the floor —
/// a single decision is bounded by the candidate-set size (≤ 8640
/// entries, well under a megabyte).
pub const CHUNK_BYTE_BUDGET: usize = 4 * 1024 * 1024;

/// One persisted decision: everything the cache knows about a key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotEntry {
    /// Canonical instance identity.
    pub key: InstanceKey,
    /// Best-first `(tuning, score)` pairs, exactly as cached.
    pub entries: Vec<(TuningVector, f64)>,
    /// Size of the candidate set the entries were selected from.
    pub candidates: usize,
    /// The source cache's LRU tick at the entry's last use (snapshot
    /// entries are ordered by it; only the *order* survives a restore).
    pub last_used: u64,
}

/// A serializable image of a [`DecisionCache`](crate::DecisionCache),
/// versioned by the ranker that computed its decisions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// Entry-layout version ([`SNAPSHOT_FORMAT_VERSION`] at write time).
    pub format_version: u32,
    /// Fingerprint of the ranking function the decisions came from.
    pub ranker_fingerprint: u64,
    /// Cached decisions, least recently used first.
    pub entries: Vec<SnapshotEntry>,
}

impl CacheSnapshot {
    /// An empty snapshot for the given ranking function.
    pub fn empty(ranker_fingerprint: u64) -> Self {
        CacheSnapshot {
            format_version: SNAPSHOT_FORMAT_VERSION,
            ranker_fingerprint,
            entries: Vec::new(),
        }
    }

    /// Number of persisted decisions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no decisions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Splits the snapshot by a key-fingerprint predicate: entries whose
    /// [`InstanceKey::fingerprint`] satisfies `pred` stay, the rest are
    /// returned as a second snapshot (same version and ranker). This is
    /// how a router partitions a departing shard's cache among the
    /// remaining owners.
    pub fn split_off(&mut self, pred: impl Fn(u64) -> bool) -> CacheSnapshot {
        let mut other = CacheSnapshot::empty(self.ranker_fingerprint);
        other.format_version = self.format_version;
        let mut kept = Vec::with_capacity(self.entries.len());
        for e in self.entries.drain(..) {
            if pred(e.key.fingerprint()) {
                kept.push(e);
            } else {
                other.entries.push(e);
            }
        }
        self.entries = kept;
        other
    }

    /// Serializes the snapshot as pretty JSON.
    pub fn to_json(&self) -> String {
        // sorl-lint: allow(panic, "serializing our own derive(Serialize) types cannot fail")
        serde_json::to_string_pretty(self).expect("cache snapshot serializes")
    }

    /// Parses a snapshot serialized by [`to_json`](Self::to_json). The
    /// version and fingerprint checks happen at *restore* time, not here —
    /// parsing a stale snapshot is fine (a router may still inspect it).
    pub fn from_json(json: &str) -> Result<Self, SnapshotError> {
        serde_json::from_str(json).map_err(|e| SnapshotError::Parse(e.to_string()))
    }

    /// Writes the snapshot to `path` as JSON, **atomically**: the bytes go
    /// to a sibling temp file first (synced to disk before the rename), and
    /// only a complete file is renamed into place. A crash mid-write can
    /// leave a stray `*.tmp.*` sibling, never a torn snapshot at `path` —
    /// so the next warm start either sees the previous complete snapshot
    /// or the new one, nothing in between.
    pub fn save_json(&self, path: &Path) -> std::io::Result<()> {
        use std::io::Write;
        // Unique per process AND per call: two concurrent saves to the
        // same path must not share a temp file, or one could rename the
        // other's half-written bytes into place.
        static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        // sorl-lint: allow(atomic, "uniqueness comes from the atomic RMW itself; no other memory is published through this counter")
        let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut file_name = path.file_name().unwrap_or_default().to_os_string();
        file_name.push(format!(".tmp.{}.{seq}", std::process::id()));
        let tmp = path.with_file_name(file_name);
        let result = (|| {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_json().as_bytes())?;
            f.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Loads a snapshot written by [`save_json`](Self::save_json).
    pub fn load_json(path: &Path) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Splits the snapshot into a [`SnapshotHeader`] plus per-chunk
    /// checksummed [`SnapshotChunk`]s — the streaming wire format for
    /// shipping big caches: no single giant JSON string is materialized,
    /// and a receiver can verify each chunk independently before
    /// assembling anything.
    ///
    /// A chunk closes at `entries_per_chunk` entries *or* at
    /// [`CHUNK_BYTE_BUDGET`] serialized bytes, whichever comes first (one
    /// entry minimum) — entry counts alone would let a cache of deep
    /// top-k decisions produce a chunk bigger than a transport's frame
    /// cap, wedging cache shipping for that shard permanently.
    ///
    /// An empty snapshot yields zero chunks (the header alone carries the
    /// version and fingerprint). Reassemble with
    /// [`from_chunks`](Self::from_chunks).
    pub fn to_chunks(&self, entries_per_chunk: usize) -> (SnapshotHeader, Vec<SnapshotChunk>) {
        self.to_chunks_with(
            entries_per_chunk,
            |entry| {
                // sorl-lint: allow(panic, "serializing our own derive(Serialize) types cannot fail")
                serde_json::to_string(entry).expect("snapshot entry serializes").into_bytes()
            },
            seal_json_chunk,
        )
    }

    /// Codec-generic core of [`to_chunks`](Self::to_chunks): `render`
    /// serializes one entry, `seal` turns a chunk's rendered entries into
    /// one payload (the JSON path wraps them into a JSON array; a binary
    /// codec would count-prefix and concatenate). Chunk boundaries (the
    /// entry-count limit and [`CHUNK_BYTE_BUDGET`]) and checksumming are
    /// identical for every codec — the checksum is always the pinned
    /// FNV-1a over the sealed payload bytes, whatever the encoding.
    ///
    /// Each entry is rendered exactly once and peak memory is one chunk's
    /// worth of rendered entries, never the whole snapshot.
    pub fn to_chunks_with(
        &self,
        entries_per_chunk: usize,
        render: impl Fn(&SnapshotEntry) -> Vec<u8>,
        seal: impl Fn(&[Vec<u8>]) -> Vec<u8>,
    ) -> (SnapshotHeader, Vec<SnapshotChunk>) {
        let per = entries_per_chunk.max(1);
        let mut chunks: Vec<SnapshotChunk> = Vec::new();
        let mut pending: Vec<Vec<u8>> = Vec::new();
        let mut bytes = 0usize;
        for entry in &self.entries {
            let rendered = render(entry);
            if !pending.is_empty()
                && (pending.len() >= per || bytes + rendered.len() > CHUNK_BYTE_BUDGET)
            {
                close_chunk(&mut chunks, &mut pending, &seal);
                bytes = 0;
            }
            bytes += rendered.len();
            pending.push(rendered);
        }
        close_chunk(&mut chunks, &mut pending, &seal);
        let header = SnapshotHeader {
            format_version: self.format_version,
            ranker_fingerprint: self.ranker_fingerprint,
            entries: self.entries.len(),
            chunks: chunks.len(),
        };
        (header, chunks)
    }

    /// Reassembles a snapshot from a header and its chunks, verifying the
    /// transfer *before* constructing anything: the chunk count must match
    /// the header, the chunks must arrive in index order, every chunk's
    /// FNV-1a checksum must verify, and the total entry count must match
    /// the header. A torn or corrupted transfer is rejected
    /// deterministically ([`SnapshotError::ChunkChecksum`] /
    /// [`SnapshotError::Truncated`]) — never assembled partially.
    pub fn from_chunks(
        header: &SnapshotHeader,
        chunks: &[SnapshotChunk],
    ) -> Result<Self, SnapshotError> {
        Self::from_chunks_with(header, chunks, |i, payload| {
            let text = std::str::from_utf8(payload)
                .map_err(|e| SnapshotError::Parse(format!("chunk {i}: {e}")))?;
            serde_json::from_str(text).map_err(|e| SnapshotError::Parse(format!("chunk {i}: {e}")))
        })
    }

    /// Codec-generic core of [`from_chunks`](Self::from_chunks):
    /// `parse_chunk(index, payload)` decodes one verified chunk payload
    /// back into its entries. Count/order/checksum validation happens here,
    /// identically for every codec, *before* `parse_chunk` ever sees a
    /// byte — a decoder only runs on payloads whose FNV-1a digest checked
    /// out.
    pub fn from_chunks_with(
        header: &SnapshotHeader,
        chunks: &[SnapshotChunk],
        parse_chunk: impl Fn(usize, &[u8]) -> Result<Vec<SnapshotEntry>, SnapshotError>,
    ) -> Result<Self, SnapshotError> {
        if chunks.len() != header.chunks {
            return Err(SnapshotError::Truncated {
                what: "chunks",
                found: chunks.len(),
                expected: header.chunks,
            });
        }
        // `header.entries` is peer-supplied and unvalidated at this point —
        // cap the pre-allocation so a garbage count cannot provoke a giant
        // allocation (the real count is enforced against the header below).
        let mut entries = Vec::with_capacity(header.entries.min(4096));
        for (i, chunk) in chunks.iter().enumerate() {
            if chunk.index != i {
                return Err(SnapshotError::Truncated {
                    what: "chunk index",
                    found: chunk.index,
                    expected: i,
                });
            }
            if !chunk.verify() {
                return Err(SnapshotError::ChunkChecksum { index: i });
            }
            entries.extend(parse_chunk(i, &chunk.payload)?);
        }
        if entries.len() != header.entries {
            return Err(SnapshotError::Truncated {
                what: "entries",
                found: entries.len(),
                expected: header.entries,
            });
        }
        Ok(CacheSnapshot {
            format_version: header.format_version,
            ranker_fingerprint: header.ranker_fingerprint,
            entries,
        })
    }
}

/// Seals the pending entry renditions into one checksummed chunk.
fn close_chunk(
    chunks: &mut Vec<SnapshotChunk>,
    pending: &mut Vec<Vec<u8>>,
    seal: &impl Fn(&[Vec<u8>]) -> Vec<u8>,
) {
    if pending.is_empty() {
        return;
    }
    let payload = seal(pending);
    let checksum = SnapshotChunk::digest(&payload);
    chunks.push(SnapshotChunk { index: chunks.len(), checksum, payload });
    pending.clear();
}

/// The JSON chunk seal: joins the per-entry renditions into one JSON array
/// — byte-identical input to what `from_chunks` parses, without
/// re-serializing the entries.
fn seal_json_chunk(pending: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = pending.iter().map(|p| p.len()).sum();
    let mut payload = Vec::with_capacity(total + pending.len() + 1);
    payload.push(b'[');
    for (i, rendered) in pending.iter().enumerate() {
        if i > 0 {
            payload.push(b',');
        }
        payload.extend_from_slice(rendered);
    }
    payload.push(b']');
    payload
}

/// The fixed-size prologue of a chunked snapshot transfer: everything a
/// receiver needs to validate the stream that follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotHeader {
    /// Entry-layout version of the snapshot being shipped.
    pub format_version: u32,
    /// Fingerprint of the ranking function the decisions came from.
    pub ranker_fingerprint: u64,
    /// Total entries across all chunks.
    pub entries: usize,
    /// Number of chunks that follow.
    pub chunks: usize,
}

/// One checksummed slice of a chunked snapshot transfer.
///
/// The payload is the JSON serialization of a `Vec<SnapshotEntry>`; the
/// checksum is FNV-1a ([`stencil_model::fingerprint::Fnv1a`] — pinned, so
/// sender and receiver agree across builds and hosts) over exactly those
/// payload bytes. A flipped bit anywhere in transit fails
/// [`verify`](Self::verify) deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotChunk {
    /// Position of this chunk in the stream (`0..header.chunks`).
    pub index: usize,
    /// FNV-1a digest of `payload`.
    pub checksum: u64,
    /// JSON bytes of this chunk's `Vec<SnapshotEntry>`.
    pub payload: Vec<u8>,
}

impl SnapshotChunk {
    /// Serializes `entries` into a chunk, stamping the checksum.
    pub fn encode(index: usize, entries: &[SnapshotEntry]) -> Self {
        // sorl-lint: allow(panic, "serializing our own derive(Serialize) types cannot fail")
        let json = serde_json::to_string(entries).expect("snapshot entries serialize");
        let payload = json.into_bytes();
        let checksum = Self::digest(&payload);
        SnapshotChunk { index, checksum, payload }
    }

    /// Whether the payload still matches the stamped checksum.
    pub fn verify(&self) -> bool {
        Self::digest(&self.payload) == self.checksum
    }

    /// The pinned FNV-1a digest of a chunk payload.
    pub fn digest(payload: &[u8]) -> u64 {
        let mut h = stencil_model::fingerprint::Fnv1a::new();
        h.write_bytes(payload);
        h.finish()
    }
}

/// Why a snapshot could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot was written under a different entry layout.
    FormatVersion {
        /// Version found in the snapshot.
        found: u32,
        /// Version this binary writes and reads.
        expected: u32,
    },
    /// The snapshot's decisions came from a different ranking function.
    RankerMismatch {
        /// Fingerprint found in the snapshot.
        found: u64,
        /// Fingerprint of the live ranker.
        expected: u64,
    },
    /// The snapshot could not be parsed at all.
    Parse(String),
    /// A chunk of a chunked transfer failed its FNV-1a checksum — the
    /// bytes were corrupted in transit (or the stream was reassembled
    /// wrong). The whole transfer is rejected; nothing is applied.
    ChunkChecksum {
        /// Index of the failing chunk.
        index: usize,
    },
    /// A chunked transfer was torn: a count does not match its header
    /// (missing/extra chunks, out-of-order indices, or a wrong total
    /// entry count).
    Truncated {
        /// Which count mismatched (`"chunks"`, `"chunk index"`,
        /// `"entries"`).
        what: &'static str,
        /// The count observed.
        found: usize,
        /// The count the header promised.
        expected: usize,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::FormatVersion { found, expected } => {
                write!(f, "snapshot format version {found} (this binary reads {expected})")
            }
            SnapshotError::RankerMismatch { found, expected } => write!(
                f,
                "snapshot was computed by ranker {found:#018x}, live ranker is {expected:#018x} \
                 — stale decisions rejected"
            ),
            SnapshotError::Parse(e) => write!(f, "snapshot does not parse: {e}"),
            SnapshotError::ChunkChecksum { index } => {
                write!(f, "snapshot chunk {index} failed its checksum — transfer corrupted")
            }
            SnapshotError::Truncated { what, found, expected } => {
                write!(f, "snapshot transfer torn: {what} = {found}, header promised {expected}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_model::{GridSize, StencilInstance, StencilKernel};

    fn entry(n: u32, last_used: u64) -> SnapshotEntry {
        let key =
            StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(n)).unwrap().key();
        SnapshotEntry {
            key,
            entries: vec![(TuningVector::new(8, 8, 8, 2, 1), 0.5)],
            candidates: 8640,
            last_used,
        }
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let snap = CacheSnapshot {
            format_version: SNAPSHOT_FORMAT_VERSION,
            ranker_fingerprint: 0xdead_beef_cafe_f00d,
            entries: vec![entry(64, 3), entry(96, 7)],
        };
        let back = CacheSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn file_roundtrip() {
        let snap = CacheSnapshot {
            format_version: SNAPSHOT_FORMAT_VERSION,
            ranker_fingerprint: 17,
            entries: vec![entry(128, 1)],
        };
        let dir = std::env::temp_dir().join("sorl-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        snap.save_json(&path).unwrap();
        assert_eq!(CacheSnapshot::load_json(&path).unwrap(), snap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_does_not_parse() {
        assert!(matches!(CacheSnapshot::from_json("not json"), Err(SnapshotError::Parse(_))));
        assert!(CacheSnapshot::load_json(Path::new("/definitely/missing.json")).is_err());
    }

    #[test]
    fn split_off_partitions_by_key_fingerprint() {
        let mut snap = CacheSnapshot {
            format_version: SNAPSHOT_FORMAT_VERSION,
            ranker_fingerprint: 5,
            entries: vec![entry(64, 1), entry(96, 2), entry(128, 3)],
        };
        let keep_fp = snap.entries[1].key.fingerprint();
        let moved = snap.split_off(|fp| fp == keep_fp);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.entries[0].key.fingerprint(), keep_fp);
        assert_eq!(moved.len(), 2);
        assert_eq!(moved.ranker_fingerprint, 5);
        // Relative order preserved on both sides.
        assert!(moved.entries[0].last_used < moved.entries[1].last_used);
    }

    #[test]
    fn save_json_is_atomic_and_leaves_no_temp_behind() {
        let snap = CacheSnapshot {
            format_version: SNAPSHOT_FORMAT_VERSION,
            ranker_fingerprint: 11,
            entries: vec![entry(64, 1), entry(96, 2)],
        };
        let dir = std::env::temp_dir().join("sorl-snapshot-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        // Seed the path with a previous (different) snapshot, then save
        // over it — the replacement must be complete and temp-free.
        CacheSnapshot::empty(11).save_json(&path).unwrap();
        snap.save_json(&path).unwrap();
        assert_eq!(CacheSnapshot::load_json(&path).unwrap(), snap);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_snapshot_file_is_rejected() {
        let snap = CacheSnapshot {
            format_version: SNAPSHOT_FORMAT_VERSION,
            ranker_fingerprint: 3,
            entries: vec![entry(64, 1), entry(96, 2)],
        };
        let dir = std::env::temp_dir().join("sorl-snapshot-torn-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        snap.save_json(&path).unwrap();
        // Tear the file the way a crash mid-`std::fs::write` would have:
        // keep a prefix, drop the tail.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = CacheSnapshot::load_json(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunk_roundtrip_is_exact() {
        let snap = CacheSnapshot {
            format_version: SNAPSHOT_FORMAT_VERSION,
            ranker_fingerprint: 0x1234_5678_9abc_def0,
            entries: vec![entry(64, 1), entry(96, 2), entry(128, 3), entry(160, 4), entry(192, 5)],
        };
        for per_chunk in [1, 2, 3, 5, 100] {
            let (header, chunks) = snap.to_chunks(per_chunk);
            assert_eq!(header.entries, 5);
            assert_eq!(header.chunks, chunks.len());
            assert_eq!(chunks.len(), 5usize.div_ceil(per_chunk));
            let back = CacheSnapshot::from_chunks(&header, &chunks).unwrap();
            assert_eq!(back, snap, "per_chunk={per_chunk}");
        }
    }

    #[test]
    fn chunking_splits_on_byte_budget_before_entry_count() {
        // Deep top-k decisions (the candidate-set-sized worst case) must
        // not produce chunks beyond the byte budget just because the
        // entry-count limit was not reached — an oversized chunk would
        // exceed a transport's frame cap and wedge cache shipping.
        let deep = |n: u32, last_used: u64| {
            let mut e = entry(n, last_used);
            e.entries = (0..8640u32)
                .map(|i| (TuningVector::new(8, 8, 8, i % 9, 1 + i % 4), -f64::from(i)))
                .collect();
            e
        };
        let snap = CacheSnapshot {
            format_version: SNAPSHOT_FORMAT_VERSION,
            ranker_fingerprint: 21,
            entries: (0..12).map(|i| deep(64 + 8 * i, u64::from(i))).collect(),
        };
        let (header, chunks) = snap.to_chunks(256);
        assert!(chunks.len() > 1, "byte budget must split despite the 256-entry limit");
        for c in &chunks {
            assert!(
                c.payload.len() < 2 * CHUNK_BYTE_BUDGET,
                "chunk {} is {} bytes — way past the budget",
                c.index,
                c.payload.len()
            );
        }
        assert_eq!(CacheSnapshot::from_chunks(&header, &chunks).unwrap(), snap);
    }

    #[test]
    fn empty_snapshot_chunks_to_header_only() {
        let snap = CacheSnapshot::empty(9);
        let (header, chunks) = snap.to_chunks(64);
        assert_eq!(header.chunks, 0);
        assert!(chunks.is_empty());
        assert_eq!(CacheSnapshot::from_chunks(&header, &chunks).unwrap(), snap);
    }

    #[test]
    fn corrupted_chunk_is_rejected_by_checksum() {
        let snap = CacheSnapshot {
            format_version: SNAPSHOT_FORMAT_VERSION,
            ranker_fingerprint: 7,
            entries: vec![entry(64, 1), entry(96, 2), entry(128, 3)],
        };
        let (header, mut chunks) = snap.to_chunks(1);
        // Flip one byte in the middle chunk's payload.
        let mid = chunks[1].payload.len() / 2;
        chunks[1].payload[mid] ^= 0x40;
        assert_eq!(
            CacheSnapshot::from_chunks(&header, &chunks),
            Err(SnapshotError::ChunkChecksum { index: 1 })
        );
    }

    #[test]
    fn torn_chunk_streams_are_rejected() {
        let snap = CacheSnapshot {
            format_version: SNAPSHOT_FORMAT_VERSION,
            ranker_fingerprint: 7,
            entries: vec![entry(64, 1), entry(96, 2), entry(128, 3)],
        };
        let (header, chunks) = snap.to_chunks(1);
        // Missing chunk.
        assert!(matches!(
            CacheSnapshot::from_chunks(&header, &chunks[..2]),
            Err(SnapshotError::Truncated { what: "chunks", .. })
        ));
        // Out-of-order chunks.
        let swapped = vec![chunks[1].clone(), chunks[0].clone(), chunks[2].clone()];
        assert!(matches!(
            CacheSnapshot::from_chunks(&header, &swapped),
            Err(SnapshotError::Truncated { what: "chunk index", .. })
        ));
        // Header promising more entries than the chunks carry.
        let mut lying = header;
        lying.entries = 99;
        assert!(matches!(
            CacheSnapshot::from_chunks(&lying, &chunks),
            Err(SnapshotError::Truncated { what: "entries", .. })
        ));
    }

    #[test]
    fn errors_render_their_context() {
        let e = SnapshotError::RankerMismatch { found: 1, expected: 2 };
        let s = e.to_string();
        assert!(s.contains("stale"), "{s}");
        let e = SnapshotError::FormatVersion { found: 9, expected: SNAPSHOT_FORMAT_VERSION };
        assert!(e.to_string().contains('9'));
    }
}
