//! Cache-persistence coverage: snapshot/restore round-trips over random
//! caches, stale-snapshot rejection, and a restarted service answering
//! repeat queries warm — without a scoring pass.

use std::time::Duration;

use proptest::prelude::*;

use ranksvm::LinearRanker;
use sorl::StencilRanker;
use sorl_serve::{
    CacheSnapshot, DecisionCache, ServeConfig, ServeError, SnapshotError, TuneService,
    SNAPSHOT_FORMAT_VERSION,
};
use stencil_model::{FeatureEncoder, GridSize, StencilInstance, StencilKernel, TuningVector};

/// Deterministic dense synthetic ranker (no training run needed).
fn dense_ranker(seed: u64) -> StencilRanker {
    let encoder = FeatureEncoder::default_interaction();
    let mut state = seed | 1;
    let w: Vec<f64> = (0..encoder.dim())
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        })
        .collect();
    StencilRanker::new(encoder, LinearRanker::from_weights(w))
}

fn lap(n: u32) -> StencilInstance {
    StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(n)).unwrap()
}

fn config() -> ServeConfig {
    ServeConfig { threads: 1, gather_window: Duration::from_micros(10), ..Default::default() }
}

/// Builds a cache from a compact random description: each `(size_step,
/// depth, score_salt, touch)` becomes one decision with `depth` entries,
/// optionally re-touched to scramble the LRU order.
fn build_cache(capacity: usize, spec: &[(u32, usize, i32, bool)]) -> DecisionCache {
    let mut cache = DecisionCache::new(capacity);
    for &(size_step, depth, score_salt, _) in spec {
        let key = lap(32 + 8 * (size_step % 64)).key();
        let entries: Vec<(TuningVector, f64)> = (0..depth.max(1))
            .map(|i| {
                let t = TuningVector::new(
                    1 << (i % 8),
                    1 << ((i + 3) % 8),
                    1 << ((i + 5) % 8),
                    (i % 9) as u32,
                    1 + (i % 4) as u32,
                );
                (t, score_salt as f64 / 7.0 - i as f64)
            })
            .collect();
        cache.insert(key, entries, 8640);
    }
    // Second pass: touch some keys so last_used ordering differs from
    // insertion ordering.
    for &(size_step, _, _, touch) in spec {
        if touch {
            let key = lap(32 + 8 * (size_step % 64)).key();
            cache.lookup(&key, 1);
        }
    }
    cache
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Snapshot -> JSON -> parse -> restore is bit-for-bit: the JSON
    /// round-trip reproduces the snapshot exactly, and the restored cache
    /// holds every decision (payloads and candidate counts identical) in
    /// the same LRU order.
    #[test]
    fn snapshot_restore_roundtrip_is_bit_for_bit(
        fingerprint in 1u64..u64::MAX,
        capacity in 1usize..64,
        spec in proptest::collection::vec((0u32..64, 1usize..12, -100i32..100, proptest::prelude::any::<bool>()), 0..24),
    ) {
        let cache = build_cache(capacity, &spec);
        let snap = cache.snapshot(fingerprint);
        prop_assert_eq!(snap.len(), cache.len());

        // The serialized form round-trips exactly.
        let parsed = CacheSnapshot::from_json(&snap.to_json()).unwrap();
        prop_assert_eq!(&parsed, &snap);

        // The restored cache holds identical decisions...
        let mut restored = DecisionCache::new(capacity.max(snap.len()));
        prop_assert_eq!(restored.restore(&parsed, fingerprint), Ok(snap.len()));
        for e in &snap.entries {
            let (entries, candidates) =
                restored.lookup(&e.key, e.entries.len()).expect("restored key hits");
            prop_assert_eq!(&entries, &e.entries, "payload must be bit-for-bit");
            prop_assert_eq!(candidates, e.candidates);
        }

        // ...and re-snapshotting an *untouched* restore preserves the LRU
        // order and payloads (ticks are fresh, order is the contract).
        let mut fresh = DecisionCache::new(capacity.max(snap.len()));
        fresh.restore(&parsed, fingerprint).unwrap();
        let resnap = fresh.snapshot(fingerprint);
        prop_assert_eq!(resnap.len(), snap.len());
        for (a, b) in resnap.entries.iter().zip(&snap.entries) {
            prop_assert_eq!(&a.key, &b.key, "LRU order survived the round-trip");
            prop_assert_eq!(&a.entries, &b.entries);
            prop_assert_eq!(a.candidates, b.candidates);
        }
    }

    /// Restores under any other fingerprint or format version are
    /// rejected, leaving the target cache untouched.
    #[test]
    fn stale_snapshots_are_always_rejected(
        fingerprint in 1u64..u64::MAX,
        other in 1u64..u64::MAX,
        version_bump in 1u32..5,
        spec in proptest::collection::vec((0u32..64, 1usize..6, -100i32..100, proptest::prelude::any::<bool>()), 1..8),
    ) {
        let cache = build_cache(32, &spec);
        let mut snap = cache.snapshot(fingerprint);

        let mut target = DecisionCache::new(32);
        if other != fingerprint {
            prop_assert_eq!(
                target.restore(&snap, other),
                Err(SnapshotError::RankerMismatch { found: fingerprint, expected: other })
            );
            prop_assert!(target.is_empty(), "rejected restore must not touch the cache");
        }
        snap.format_version = SNAPSHOT_FORMAT_VERSION + version_bump;
        prop_assert!(matches!(
            target.restore(&snap, fingerprint),
            Err(SnapshotError::FormatVersion { .. })
        ));
        prop_assert!(target.is_empty());
    }
}

#[test]
fn restarted_service_answers_repeats_from_the_warm_cache() {
    let ranker = dense_ranker(7);
    let queries = [lap(96), lap(128), lap(160)];

    // First incarnation: serve, then snapshot to a file.
    let dir = std::env::temp_dir().join("sorl-serve-persistence-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("decisions.json");
    let (first_answers, fingerprint) = {
        let service = TuneService::spawn(ranker.clone(), config());
        let client = service.client();
        let answers: Vec<_> = queries.iter().map(|q| client.tune(q.clone(), 3).unwrap()).collect();
        let snap = service.cache_snapshot().unwrap();
        assert_eq!(snap.len(), queries.len());
        assert_eq!(snap.ranker_fingerprint, service.ranker_fingerprint());
        snap.save_json(&path).unwrap();
        (answers, service.ranker_fingerprint())
        // Dropping the service here is the "shutdown".
    };

    // Second incarnation: load, import, and answer repeats warm.
    let service = TuneService::spawn(ranker, config());
    assert_eq!(service.ranker_fingerprint(), fingerprint, "same model, same fingerprint");
    let snap = CacheSnapshot::load_json(&path).unwrap();
    assert_eq!(service.import_cache(snap).unwrap(), queries.len());
    assert_eq!(service.stats().cache_entries, queries.len() as u64, "import published");

    let client = service.client();
    for (q, want) in queries.iter().zip(&first_answers) {
        let got = client.tune(q.clone(), 3).unwrap();
        assert_eq!(got.entries, want.entries, "restored decision is bit-for-bit");
    }
    let stats = service.stats();
    assert_eq!(stats.cache_hits, queries.len() as u64, "every repeat was a warm hit");
    assert_eq!(stats.scored_instances, 0, "no scoring pass after the restart");
    std::fs::remove_file(&path).ok();
}

#[test]
fn retrained_service_rejects_the_old_snapshot() {
    let queries = [lap(96), lap(128)];
    let snap = {
        let service = TuneService::spawn(dense_ranker(7), config());
        let client = service.client();
        for q in &queries {
            client.tune(q.clone(), 2).unwrap();
        }
        service.cache_snapshot().unwrap()
    };

    // A retrained model (different weights) must reject the decisions.
    let service = TuneService::spawn(dense_ranker(8), config());
    let err = service.import_cache(snap).unwrap_err();
    assert!(matches!(err, ServeError::Snapshot(SnapshotError::RankerMismatch { .. })), "{err}");
    assert_eq!(service.stats().cache_entries, 0);
    // And it re-scores the queries itself, from scratch.
    let client = service.client();
    client.tune(queries[0].clone(), 2).unwrap();
    assert_eq!(service.stats().cache_misses, 1);
}

#[test]
fn export_and_extract_move_slices_between_live_services() {
    let ranker = dense_ranker(7);
    let a = TuneService::spawn(ranker.clone(), config());
    let client = a.client();
    let queries = [lap(96), lap(128), lap(160), lap(192)];
    for q in &queries {
        client.tune(q.clone(), 2).unwrap();
    }
    let moving_fp = queries[1].key().fingerprint();

    // Export copies; extract removes.
    let copy = a.export_cache(move |fp| fp == moving_fp).unwrap();
    assert_eq!(copy.len(), 1);
    assert_eq!(a.stats().cache_entries, queries.len() as u64, "export kept the original");
    let slice = a.extract_cache(move |fp| fp == moving_fp).unwrap();
    assert_eq!(slice.len(), 1);
    assert_eq!(a.stats().cache_entries, queries.len() as u64 - 1, "extract removed it");

    // The extracted slice warms a second service.
    let b = TuneService::spawn(ranker, config());
    assert_eq!(b.import_cache(slice).unwrap(), 1);
    b.client().tune(queries[1].clone(), 2).unwrap();
    let stats = b.stats();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.scored_instances, 0);
}

#[test]
fn torn_snapshot_file_is_rejected_without_touching_the_live_cache() {
    let ranker = dense_ranker(7);
    let queries = [lap(96), lap(128), lap(160)];
    let service = TuneService::spawn(ranker, config());
    let client = service.client();
    for q in &queries {
        client.tune(q.clone(), 2).unwrap();
    }

    // Persist, then tear the file the way a crash mid-write would have
    // (the atomic temp+rename save makes this scenario an operator
    // accident — e.g. a partial copy — rather than a crash artifact, but
    // the loader must reject it either way).
    let dir = std::env::temp_dir().join("sorl-serve-torn-snapshot-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("decisions.json");
    service.cache_snapshot().unwrap().save_json(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() * 2 / 3]).unwrap();

    // The torn file fails at load — before any import could run — so the
    // live cache is untouched and keeps serving warm.
    let err = CacheSnapshot::load_json(&path).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
    assert_eq!(service.stats().cache_entries, queries.len() as u64);
    for q in &queries {
        client.tune(q.clone(), 2).unwrap();
    }
    let stats = service.stats();
    assert_eq!(stats.cache_hits, queries.len() as u64, "live cache still answers warm");
    assert_eq!(stats.scored_instances, queries.len() as u64, "only the original cold passes");
    std::fs::remove_file(&path).ok();
}
