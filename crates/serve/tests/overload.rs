//! Admission-control and non-blocking-ticket tests against a live
//! service: bounded-queue sheds, latency sheds (and recovery), and the
//! poll/callback ticket paths.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use ranksvm::LinearRanker;
use sorl::session::TuningSession;
use sorl::StencilRanker;
use sorl_serve::{ServeConfig, ServeError, ShedReason, TuneService};
use stencil_model::{FeatureEncoder, GridSize, StencilInstance, StencilKernel};

/// Deterministic dense synthetic ranker (no training run needed).
fn dense_ranker() -> StencilRanker {
    let encoder = FeatureEncoder::default_interaction();
    let mut state = 0x2545f4914f6cdd1du64;
    let w: Vec<f64> = (0..encoder.dim())
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        })
        .collect();
    StencilRanker::new(encoder, LinearRanker::from_weights(w))
}

fn lap(n: u32) -> StencilInstance {
    StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(n)).unwrap()
}

#[test]
fn bounded_queue_sheds_with_queue_full_and_counters_balance() {
    // A queue capped at 2 with single-request batches: a tight submission
    // loop outruns the worker (each batch is a real scoring pass), so most
    // submissions must fast-reject with QueueFull.
    let cfg = ServeConfig {
        threads: 2,
        max_batch: 1,
        gather_window: Duration::ZERO,
        cache_capacity: 0,
        max_queue: 2,
        ..Default::default()
    };
    let service = TuneService::spawn(dense_ranker(), cfg);
    let client = service.client();

    let mut tickets = Vec::new();
    let mut sheds = 0u64;
    for i in 0..200u32 {
        // Distinct instances so the (disabled) cache or dedup cannot turn
        // the work into no-ops.
        match client.submit(lap(32 + i % 96), 1) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded(reason)) => {
                assert_eq!(reason, ShedReason::QueueFull);
                sheds += 1;
            }
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    }
    assert!(sheds > 0, "200 rapid submissions against a 2-deep queue must shed");
    let admitted = tickets.len() as u64;

    // Every admitted request is answered — sheds lose nothing that was
    // accepted, and nothing is double-answered (each ticket resolves once).
    for t in tickets {
        let top = t.wait().expect("admitted request answered");
        assert_eq!(top.entries.len(), 1);
    }
    let stats = service.stats();
    assert_eq!(stats.requests, admitted, "only admitted requests reach the worker");
    assert_eq!(stats.shed_queue, sheds);
    assert_eq!(stats.shed_latency, 0);
    assert_eq!(stats.sheds(), sheds);
    assert_eq!(stats.queue_depth, 0, "queue drains back to empty: {stats}");
}

#[test]
fn latency_shedding_trips_under_backlog_and_recovers() {
    // A 1µs p99 threshold is below any real scoring pass, so the latency
    // shedder arms after the first served batch. It still only fires while
    // the queue is backed up past one batch — so after the backlog drains,
    // admission must recover even though the rolling p99 stays high.
    let cfg = ServeConfig {
        threads: 2,
        max_batch: 1,
        gather_window: Duration::ZERO,
        cache_capacity: 0,
        max_queue: 0, // unbounded: isolate the latency shedder
        shed_p99: Duration::from_micros(1),
        ..Default::default()
    };
    let service = TuneService::spawn(dense_ranker(), cfg);
    let client = service.client();

    // Prime the rolling p99 with one served batch.
    client.tune(lap(64), 1).unwrap();
    assert!(
        service.stats().recent_batch_latency_p99_s > 1e-6,
        "a scoring pass takes longer than the shed threshold"
    );

    let mut tickets = Vec::new();
    let mut sheds = 0u64;
    for i in 0..200u32 {
        match client.submit(lap(32 + i % 96), 1) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded(reason)) => {
                assert_eq!(reason, ShedReason::BatchLatency);
                sheds += 1;
            }
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    }
    assert!(sheds > 0, "backlogged slow service must shed on latency");
    for t in tickets {
        t.wait().expect("admitted request answered");
    }

    // Recovery: the queue is empty again, so despite the high rolling p99
    // a fresh submission is admitted (the depth guard is the hysteresis).
    let stats = service.stats();
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.shed_latency, sheds);
    client.tune(lap(48), 1).expect("admission recovers once the backlog drains");
}

#[test]
fn tickets_poll_to_completion_against_a_live_service() {
    let ranker = dense_ranker();
    let mut reference = TuningSession::new(ranker.clone());
    let service = TuneService::spawn(ranker, ServeConfig { threads: 2, ..Default::default() });
    let client = service.client();

    let ticket = client.submit(lap(128), 3).unwrap();
    // Poll-driven consumption: spin (with a yield) until ready, then read
    // the outcome without blocking.
    let mut polls = 0u32;
    let top = loop {
        if let Some(outcome) = ticket.poll() {
            break outcome.unwrap();
        }
        polls += 1;
        assert!(polls < 1_000_000, "service never completed the ticket");
        std::thread::yield_now();
    };
    assert_eq!(top.entries, reference.top_k_predefined(&lap(128), 3).entries);
    assert!(ticket.is_ready(), "polling does not consume the outcome");
}

#[test]
fn tickets_run_callbacks_against_a_live_service() {
    let ranker = dense_ranker();
    let mut reference = TuningSession::new(ranker.clone());
    let service = TuneService::spawn(ranker, ServeConfig { threads: 2, ..Default::default() });
    let client = service.client();

    // The waker-style path: the hook hands the outcome to a channel the
    // test's "event loop" is parked on.
    let (tx, rx) = mpsc::channel();
    let fired = Arc::new(AtomicU64::new(0));
    let count = Arc::clone(&fired);
    client.submit(lap(96), 2).unwrap().on_ready(move |outcome| {
        count.fetch_add(1, Ordering::SeqCst);
        let _ = tx.send(outcome);
    });
    let top = rx.recv_timeout(Duration::from_secs(30)).unwrap().unwrap();
    assert_eq!(top.entries, reference.top_k_predefined(&lap(96), 2).entries);
    assert_eq!(fired.load(Ordering::SeqCst), 1, "hook runs exactly once");
}
