//! End-to-end tests of the tuning service: answers must be bit-for-bit
//! identical to direct `TuningSession` queries, under concurrency, caching
//! and shutdown.

use std::time::Duration;

use ranksvm::LinearRanker;
use sorl::session::TuningSession;
use sorl::StencilRanker;
use sorl_serve::{ServeConfig, TuneRequest, TuneService};
use stencil_model::{FeatureEncoder, GridSize, StencilInstance, StencilKernel};

/// Deterministic dense synthetic ranker (no training run needed).
fn dense_ranker() -> StencilRanker {
    let encoder = FeatureEncoder::default_interaction();
    let mut state = 0x2545f4914f6cdd1du64;
    let w: Vec<f64> = (0..encoder.dim())
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        })
        .collect();
    StencilRanker::new(encoder, LinearRanker::from_weights(w))
}

fn lap(n: u32) -> StencilInstance {
    StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(n)).unwrap()
}

fn blur(n: u32) -> StencilInstance {
    StencilInstance::new(StencilKernel::blur(), GridSize::square(n)).unwrap()
}

fn config() -> ServeConfig {
    // Modest threads so CI machines are not oversubscribed.
    ServeConfig { threads: 2, ..Default::default() }
}

#[test]
fn service_answers_match_direct_session_queries() {
    let ranker = dense_ranker();
    let mut reference = TuningSession::new(ranker.clone());
    let service = TuneService::spawn(ranker, config());
    let client = service.client();
    for (q, k) in [(lap(128), 1), (blur(1024), 3), (lap(96), 17), (blur(640), 0)] {
        let got = client.tune(q.clone(), k).unwrap();
        let want = reference.top_k_predefined(&q, k);
        assert_eq!(got.entries, want.entries, "{q} k = {k}");
        assert_eq!(got.candidates, want.candidates, "{q} k = {k}");
        assert_eq!(got.len(), k.min(want.candidates));
    }
    let stats = service.stats();
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.cache_misses, 4);
}

#[test]
fn repeated_queries_hit_the_decision_cache() {
    let service = TuneService::spawn(dense_ranker(), config());
    let client = service.client();
    let first = client.tune(lap(128), 3).unwrap();
    for _ in 0..5 {
        let again = client.tune(lap(128), 3).unwrap();
        assert_eq!(again.entries, first.entries);
    }
    // Smaller k on the same instance: still a hit (prefix of the cached
    // entries), thanks to the cache k-floor.
    let one = client.tune(lap(128), 1).unwrap();
    assert_eq!(one.entries[..], first.entries[..1]);
    let stats = service.stats();
    assert_eq!(stats.requests, 7);
    assert_eq!(stats.cache_hits, 6);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.scored_instances, 1);
    assert_eq!(stats.cache_entries, 1);
}

#[test]
fn structurally_identical_kernels_share_one_cache_entry() {
    // Same pattern/buffers/dtype/size under a different name must be the
    // same decision — the cache keys on InstanceKey, not on the kernel id.
    let service = TuneService::spawn(dense_ranker(), config());
    let client = service.client();
    let k = StencilKernel::laplacian();
    let renamed =
        StencilKernel::new("renamed", k.pattern().clone(), k.buffers(), k.dtype()).unwrap();
    let a = client.tune(lap(128), 2).unwrap();
    let b = client.tune(StencilInstance::new(renamed, GridSize::cube(128)).unwrap(), 2).unwrap();
    assert_eq!(a.entries, b.entries);
    let stats = service.stats();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.scored_instances, 1);
}

#[test]
fn within_batch_duplicates_are_scored_once() {
    // Cache disabled: the dedup must come from micro-batch grouping alone.
    let cfg =
        ServeConfig { cache_capacity: 0, gather_window: Duration::from_millis(50), ..config() };
    let service = TuneService::spawn(dense_ranker(), cfg);
    let client = service.client();
    let requests: Vec<TuneRequest> = (0..8)
        .map(|i| TuneRequest::new(if i % 2 == 0 { lap(128) } else { blur(1024) }, 2))
        .collect();
    let answers = client.tune_many(requests).unwrap();
    assert_eq!(answers.len(), 8);
    for pair in answers.chunks(2) {
        assert_eq!(answers[0].entries, pair[0].entries);
        assert_eq!(answers[1].entries, pair[1].entries);
    }
    let stats = service.stats();
    assert_eq!(stats.requests, 8);
    assert_eq!(stats.cache_hits, 0, "cache is disabled");
    // 8 requests over 2 unique instances: with a wide gather window they
    // coalesce into few batches, each scoring each unique instance once.
    assert!(stats.scored_instances < 8, "dedup must beat one-pass-per-request: {stats}");
}

#[test]
fn concurrent_clients_all_get_correct_answers() {
    let ranker = dense_ranker();
    let mut reference = TuningSession::new(ranker.clone());
    let expected: Vec<_> =
        [64u32, 96, 128].iter().map(|&n| reference.top_k_predefined(&lap(n), 2).entries).collect();

    let service = TuneService::spawn(ranker, config());
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let client = service.client();
            let expected = expected.clone();
            std::thread::spawn(move || {
                for round in 0..6 {
                    let idx = (w + round) % 3;
                    let top = client.tune(lap([64, 96, 128][idx]), 2).unwrap();
                    assert_eq!(top.entries, expected[idx], "worker {w} round {round}");
                }
            })
        })
        .collect();
    for h in workers {
        h.join().unwrap();
    }
    let stats = service.stats();
    assert_eq!(stats.requests, 24);
    assert_eq!(stats.scored_instances, 3, "three unique instances, each scored once");
    assert!(stats.hit_rate() > 0.5, "{stats}");
}

#[test]
fn adaptive_gather_serves_identical_answers() {
    // The adaptive window is a latency policy, never a correctness knob:
    // answers must be bit-for-bit the same as the fixed-window service's.
    let ranker = dense_ranker();
    let mut reference = TuningSession::new(ranker.clone());
    let cfg =
        ServeConfig { adaptive_gather: true, gather_window: Duration::from_millis(2), ..config() };
    let service = TuneService::spawn(ranker, cfg);
    let client = service.client();
    for round in 0..3 {
        for (q, k) in [(lap(128), 1), (blur(1024), 3), (lap(96), 5)] {
            let got = client.tune(q.clone(), k).unwrap();
            let want = reference.top_k_predefined(&q, k);
            assert_eq!(got.entries, want.entries, "{q} k = {k} round {round}");
        }
    }
    let stats = service.stats();
    assert_eq!(stats.requests, 9);
    assert!(stats.cache_hits >= 6, "repeats hit the cache: {stats}");
}

#[test]
fn latency_percentiles_and_size_histogram_are_published_with_answers() {
    let service = TuneService::spawn(dense_ranker(), config());
    let client = service.client();
    client.tune(lap(128), 2).unwrap();
    // The no-read-race contract: right after an answer arrives, stats()
    // already reflects that batch — histograms included.
    let stats = service.stats();
    assert_eq!(stats.batch_size_hist.iter().sum::<u64>(), stats.batches);
    assert!(stats.batch_latency_p50_s > 0.0, "{stats}");
    assert!(
        stats.batch_latency_p50_s <= stats.batch_latency_p95_s
            && stats.batch_latency_p95_s <= stats.batch_latency_p99_s,
        "percentiles are monotone: {stats}"
    );
    // A burst lands in the histogram too (some batch of size >= 2, or at
    // worst more single-request batches — either way the total matches).
    let requests: Vec<TuneRequest> =
        (0..6).map(|i| TuneRequest::new(lap(64 + 16 * i), 1)).collect();
    client.tune_many(requests).unwrap();
    let stats = service.stats();
    assert_eq!(stats.batch_size_hist.iter().sum::<u64>(), stats.batches);
    assert_eq!(stats.requests, 7);
}

#[test]
fn shutdown_rejects_later_submissions() {
    let service = TuneService::spawn(dense_ranker(), config());
    let client = service.client();
    assert!(client.tune(lap(64), 1).is_ok());
    drop(service);
    assert!(client.tune(lap(64), 1).is_err());
    assert!(client.submit(lap(64), 1).is_err());
}

#[test]
fn service_shares_an_external_pool() {
    let pool = stencil_exec::SharedPool::new(2);
    let service = TuneService::spawn_with_pool(dense_ranker(), config(), pool.clone());
    let client = service.client();
    let mut reference = TuningSession::new(dense_ranker());
    let got = client.tune(blur(1024), 4).unwrap();
    assert_eq!(got.entries, reference.top_k_predefined(&blur(1024), 4).entries);
    // The pool handle stays usable by other subsystems while serving.
    let hits = std::sync::atomic::AtomicU64::new(0);
    pool.run(5, &|_| {
        hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    });
    assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 5);
}

#[test]
fn eviction_counters_surface_in_stats() {
    let cfg = ServeConfig { cache_capacity: 2, ..config() };
    let service = TuneService::spawn(dense_ranker(), cfg);
    let client = service.client();
    for n in [64u32, 80, 96, 112] {
        client.tune(lap(n), 1).unwrap();
    }
    let stats = service.stats();
    assert_eq!(stats.cache_entries, 2);
    assert!(stats.cache_evictions >= 2, "{stats}");
}
