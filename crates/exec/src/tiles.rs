//! Tile decomposition of the iteration space (loop blocking).

use stencil_model::TuningVector;

/// A half-open box `[x0, x1) x [y0, y1) x [z0, z1)` of interior points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    pub x0: usize,
    pub x1: usize,
    pub y0: usize,
    pub y1: usize,
    pub z0: usize,
    pub z1: usize,
}

impl Tile {
    /// Number of points in the tile.
    pub fn points(&self) -> usize {
        (self.x1 - self.x0) * (self.y1 - self.y0) * (self.z1 - self.z0)
    }
}

/// The blocked decomposition of an `(nx, ny, nz)` iteration space.
///
/// Tiles are ordered x-fastest, then y, then z — the order in which chunks
/// of `c` consecutive tiles are handed to threads, so consecutive tiles in
/// a chunk share y/z planes (spatial locality per thread, as in PATUS).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileGrid {
    tiles: Vec<Tile>,
}

impl TileGrid {
    /// Decomposes `(nx, ny, nz)` into `(bx, by, bz)` blocks (boundary tiles
    /// are smaller). Block sizes larger than the extent are clipped.
    ///
    /// # Panics
    /// Panics on zero extents or zero block sizes.
    pub fn new(nx: usize, ny: usize, nz: usize, bx: usize, by: usize, bz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "extents must be positive");
        assert!(bx > 0 && by > 0 && bz > 0, "blocks must be positive");
        let (bx, by, bz) = (bx.min(nx), by.min(ny), bz.min(nz));
        let mut tiles = Vec::with_capacity(nx.div_ceil(bx) * ny.div_ceil(by) * nz.div_ceil(bz));
        let mut z0 = 0;
        while z0 < nz {
            let z1 = (z0 + bz).min(nz);
            let mut y0 = 0;
            while y0 < ny {
                let y1 = (y0 + by).min(ny);
                let mut x0 = 0;
                while x0 < nx {
                    let x1 = (x0 + bx).min(nx);
                    tiles.push(Tile { x0, x1, y0, y1, z0, z1 });
                    x0 = x1;
                }
                y0 = y1;
            }
            z0 = z1;
        }
        TileGrid { tiles }
    }

    /// Decomposition induced by a tuning vector over an interior extent.
    pub fn from_tuning(nx: usize, ny: usize, nz: usize, t: &TuningVector) -> Self {
        Self::new(nx, ny, nz, t.bx as usize, t.by as usize, t.bz as usize)
    }

    /// All tiles in schedule order.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// Whether the decomposition is empty (never true for valid input).
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// The chunks of `c` consecutive tiles, as index ranges into
    /// [`tiles`](Self::tiles).
    pub fn chunks(&self, c: usize) -> Vec<std::ops::Range<usize>> {
        assert!(c > 0, "chunk size must be positive");
        let mut out = Vec::with_capacity(self.tiles.len().div_ceil(c));
        let mut i = 0;
        while i < self.tiles.len() {
            let j = (i + c).min(self.tiles.len());
            out.push(i..j);
            i = j;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let tg = TileGrid::new(8, 8, 8, 4, 4, 4);
        assert_eq!(tg.len(), 8);
        assert!(tg.tiles().iter().all(|t| t.points() == 64));
    }

    #[test]
    fn boundary_tiles_are_smaller() {
        let tg = TileGrid::new(10, 1, 1, 4, 1, 1);
        assert_eq!(tg.len(), 3);
        assert_eq!(tg.tiles()[2].points(), 2);
    }

    #[test]
    fn oversized_blocks_clip() {
        let tg = TileGrid::new(4, 4, 1, 1024, 1024, 1024);
        assert_eq!(tg.len(), 1);
        assert_eq!(tg.tiles()[0].points(), 16);
    }

    #[test]
    fn tiles_partition_the_space() {
        // Every point covered exactly once, for awkward sizes.
        for (n, b) in [(7usize, 3usize), (16, 5), (9, 9), (5, 1)] {
            let tg = TileGrid::new(n, n, n, b, b + 1, b.max(2) - 1);
            let mut cover = vec![0u8; n * n * n];
            for t in tg.tiles() {
                for z in t.z0..t.z1 {
                    for y in t.y0..t.y1 {
                        for x in t.x0..t.x1 {
                            cover[(z * n + y) * n + x] += 1;
                        }
                    }
                }
            }
            assert!(cover.iter().all(|&c| c == 1), "n={n} b={b}");
        }
    }

    #[test]
    fn order_is_x_fastest() {
        let tg = TileGrid::new(4, 4, 1, 2, 2, 1);
        let t = tg.tiles();
        assert_eq!((t[0].x0, t[0].y0), (0, 0));
        assert_eq!((t[1].x0, t[1].y0), (2, 0));
        assert_eq!((t[2].x0, t[2].y0), (0, 2));
    }

    #[test]
    fn chunks_cover_all_tiles() {
        let tg = TileGrid::new(8, 8, 1, 2, 2, 1);
        assert_eq!(tg.len(), 16);
        let chunks = tg.chunks(3);
        assert_eq!(chunks.len(), 6);
        assert_eq!(chunks.last().unwrap().len(), 1);
        let covered: usize = chunks.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 16);
    }

    #[test]
    fn from_tuning_matches_new() {
        let t = TuningVector::new(4, 8, 2, 0, 1);
        assert_eq!(TileGrid::from_tuning(16, 16, 4, &t), TileGrid::new(16, 16, 4, 4, 8, 2));
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_panics() {
        TileGrid::new(4, 4, 4, 2, 2, 2).chunks(0);
    }
}
