//! A persistent worker pool with dynamic chunk scheduling.
//!
//! This is the runtime the chunk-size tuning parameter `c` talks about:
//! a parallel region consists of `n` chunks of consecutive tiles; workers
//! (plus the calling thread) repeatedly claim the next chunk index from a
//! shared atomic counter until the range is drained. Workers persist across
//! runs and park on a condition variable between jobs, so repeated
//! autotuning measurements do not pay thread creation costs.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

/// Type-erased parallel job: called once per chunk index.
type Job = &'static (dyn Fn(usize) + Sync);

struct Slot {
    epoch: u64,
    job: Option<Job>,
    n_chunks: usize,
    running: usize,
    shutdown: bool,
}

struct Shared {
    slot: Mutex<Slot>,
    work_cv: Condvar,
    done_cv: Condvar,
    cursor: AtomicUsize,
    panicked: AtomicBool,
}

/// A fixed-size pool executing chunk-indexed parallel-for jobs.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool that will use `threads` threads in total: the calling
    /// thread participates in every run, so `threads - 1` workers are
    /// spawned. `threads = 1` degenerates to inline sequential execution.
    ///
    /// # Panics
    /// Panics when `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a pool needs at least one thread");
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                epoch: 0,
                job: None,
                n_chunks: 0,
                running: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cursor: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
        });
        let workers = (0..threads - 1)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("stencil-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn stencil worker")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// A pool using all available parallelism.
    pub fn with_default_threads() -> Self {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::new(n)
    }

    /// Total threads participating in runs (workers + caller).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Executes `f(i)` for every `i in 0..n_chunks`, distributing indices
    /// dynamically over all threads. Blocks until every chunk completed.
    ///
    /// Takes `&mut self` so at most one job is in flight, which is what
    /// makes the lifetime erasure below sound: `f` outlives the call, and
    /// no worker can hold the job reference past the call's return.
    ///
    /// # Panics
    /// Propagates (as a panic) any panic raised inside `f`.
    pub fn run(&mut self, n_chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        if n_chunks == 0 {
            return;
        }
        if self.workers.is_empty() {
            for i in 0..n_chunks {
                f(i);
            }
            return;
        }
        // SAFETY: the job reference handed to workers never escapes this
        // method: we block until `running == 0`, i.e. every worker has left
        // its work loop for this epoch, and we clear the slot before
        // returning. `&mut self` excludes a second concurrent job.
        let job: Job = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        {
            let mut slot = self.shared.slot.lock();
            debug_assert!(slot.job.is_none(), "a job is already running");
            // sorl-lint: allow(atomic, "the cursor is a work-stealing hint; the job slot's mutex is the synchronization edge")
            self.shared.cursor.store(0, Ordering::Relaxed);
            slot.job = Some(job);
            slot.n_chunks = n_chunks;
            slot.running = self.workers.len();
            slot.epoch += 1;
        }
        self.shared.work_cv.notify_all();

        // The calling thread chips in.
        drain(&self.shared, f, n_chunks);

        let mut slot = self.shared.slot.lock();
        while slot.running > 0 {
            self.shared.done_cv.wait(&mut slot);
        }
        slot.job = None;
        drop(slot);
        if self.shared.panicked.swap(false, Ordering::SeqCst) {
            panic!("a stencil worker panicked during a parallel run");
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("threads", &self.threads()).finish_non_exhaustive()
    }
}

/// A cloneable handle to a [`ThreadPool`], shareable across subsystems.
///
/// `ThreadPool::run` takes `&mut self` (one job in flight is what makes its
/// lifetime erasure sound), which means an owned pool cannot be used from
/// several places — the execution engine, a `TuningSession`, a serving
/// worker — without threading `&mut` through all of them. A `SharedPool`
/// wraps the pool in an `Arc<Mutex<..>>` so any holder can submit jobs
/// through a shared reference; the mutex serializes submissions (jobs still
/// run on all pool threads), which is exactly the one-job-at-a-time
/// discipline `run` demands.
///
/// Cloning the handle is cheap and never spawns threads.
#[derive(Clone)]
pub struct SharedPool {
    inner: Arc<Mutex<ThreadPool>>,
    threads: usize,
}

impl SharedPool {
    /// A shared pool of `threads` threads (see [`ThreadPool::new`]).
    pub fn new(threads: usize) -> Self {
        Self::from_pool(ThreadPool::new(threads))
    }

    /// A shared pool using all available parallelism.
    pub fn with_default_threads() -> Self {
        Self::from_pool(ThreadPool::with_default_threads())
    }

    /// Wraps an existing pool into a shareable handle.
    pub fn from_pool(pool: ThreadPool) -> Self {
        let threads = pool.threads();
        SharedPool { inner: Arc::new(Mutex::new(pool)), threads }
    }

    /// Total threads participating in runs (workers + submitting caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `f(i)` for every `i in 0..n_chunks` on the shared pool,
    /// blocking until every chunk completed. Concurrent submitters queue on
    /// the internal mutex; the pool executes one job at a time.
    ///
    /// # Panics
    /// Propagates (as a panic) any panic raised inside `f`.
    pub fn run(&self, n_chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        self.inner.lock().run(n_chunks, f);
    }

    /// Number of live handles to the underlying pool (diagnostic).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }
}

impl From<ThreadPool> for SharedPool {
    fn from(pool: ThreadPool) -> Self {
        Self::from_pool(pool)
    }
}

impl std::fmt::Debug for SharedPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPool")
            .field("threads", &self.threads)
            .field("handles", &self.handle_count())
            .finish()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock();
            slot.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Claims chunk indices until the range is exhausted.
fn drain(shared: &Shared, f: &(dyn Fn(usize) + Sync), n_chunks: usize) {
    loop {
        // sorl-lint: allow(atomic, "index claiming only needs RMW atomicity; chunk data is owned by the claimer, not published via the cursor")
        let i = shared.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n_chunks {
            return;
        }
        if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
            shared.panicked.store(true, Ordering::SeqCst);
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let (job, n_chunks) = {
            let mut slot = shared.slot.lock();
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.job.is_some() && slot.epoch != seen_epoch {
                    break;
                }
                shared.work_cv.wait(&mut slot);
            }
            seen_epoch = slot.epoch;
            (slot.job.expect("checked above"), slot.n_chunks)
        };
        drain(shared, job, n_chunks);
        let mut slot = shared.slot.lock();
        slot.running -= 1;
        if slot.running == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_chunk_runs_exactly_once() {
        let mut pool = ThreadPool::new(4);
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        pool.run(100, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let mut pool = ThreadPool::new(3);
        let sum = AtomicU64::new(0);
        for _ in 0..50 {
            pool.run(17, &|i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(sum.load(Ordering::Relaxed), 50 * (16 * 17 / 2));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let mut pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut order = Vec::new();
        // Sequential execution lets us mutate captured state through a
        // RefCell-free pattern: the closure only needs Fn, so use a Mutex.
        let order_ref = parking_lot::Mutex::new(&mut order);
        pool.run(5, &|i| order_ref.lock().push(i));
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_chunks_is_a_noop() {
        let mut pool = ThreadPool::new(2);
        pool.run(0, &|_| panic!("must not be called"));
    }

    #[test]
    fn borrows_of_caller_state_work() {
        // The whole point of the lifetime erasure: the job may borrow stack
        // data of the caller.
        let data: Vec<u64> = (0..1000).collect();
        let total = AtomicU64::new(0);
        let mut pool = ThreadPool::new(4);
        pool.run(10, &|chunk| {
            let s: u64 = data[chunk * 100..(chunk + 1) * 100].iter().sum();
            total.fetch_add(s, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn worker_panic_propagates() {
        let mut pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool survives and is usable again.
        let ok = AtomicU64::new(0);
        pool.run(4, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        ThreadPool::new(0);
    }

    #[test]
    fn many_more_chunks_than_threads() {
        let mut pool = ThreadPool::new(2);
        let n = 10_000;
        let count = AtomicU64::new(0);
        pool.run(n, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), n as u64);
    }

    #[test]
    fn dropping_an_idle_pool_terminates_workers() {
        // Create, run once, drop: must not hang on parked workers.
        for threads in [2usize, 4, 8] {
            let mut pool = ThreadPool::new(threads);
            let n = AtomicU64::new(0);
            pool.run(3, &|_| {
                n.fetch_add(1, Ordering::Relaxed);
            });
            drop(pool);
        }
    }

    #[test]
    fn dropping_a_never_used_pool_terminates_workers() {
        for _ in 0..8 {
            let pool = ThreadPool::new(4);
            drop(pool);
        }
    }

    #[test]
    fn pools_can_coexist() {
        let mut a = ThreadPool::new(3);
        let mut b = ThreadPool::new(3);
        let total = AtomicU64::new(0);
        a.run(10, &|i| {
            total.fetch_add(i as u64, Ordering::Relaxed);
        });
        b.run(10, &|i| {
            total.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 2 * 45);
    }

    #[test]
    fn shared_pool_runs_jobs_from_shared_references() {
        let pool = SharedPool::new(3);
        assert_eq!(pool.threads(), 3);
        let sum = AtomicU64::new(0);
        // No `&mut` anywhere: submission goes through a shared handle.
        pool.run(17, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 16 * 17 / 2);
    }

    #[test]
    fn shared_pool_clones_use_one_underlying_pool() {
        let a = SharedPool::new(2);
        let b = a.clone();
        assert_eq!(a.handle_count(), 2);
        let total = Arc::new(AtomicU64::new(0));
        // Concurrent submitters from different threads serialize on the
        // mutex; every chunk of both jobs must still run exactly once.
        let (a2, t2) = (a.clone(), Arc::clone(&total));
        let submitter = std::thread::spawn(move || {
            a2.run(100, &|_| {
                t2.fetch_add(1, Ordering::Relaxed);
            });
        });
        b.run(100, &|_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        submitter.join().unwrap();
        assert_eq!(total.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn shared_pool_from_existing_pool_keeps_thread_count() {
        let owned = ThreadPool::new(4);
        let shared: SharedPool = owned.into();
        assert_eq!(shared.threads(), 4);
        let n = AtomicU64::new(0);
        shared.run(8, &|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn chunk_indices_are_distributed_across_threads() {
        // At least two distinct threads must participate. Each chunk
        // busy-works for ~300us so parked workers have ample time to wake
        // before the caller thread drains the queue (even on 2-core CI).
        let mut pool = ThreadPool::new(4);
        let ids = parking_lot::Mutex::new(std::collections::HashSet::new());
        pool.run(64, &|_| {
            ids.lock().insert(std::thread::current().id());
            let t0 = std::time::Instant::now();
            while t0.elapsed() < std::time::Duration::from_micros(300) {
                std::hint::spin_loop();
            }
        });
        assert!(ids.lock().len() >= 2, "only {} thread(s) participated", ids.lock().len());
    }
}
