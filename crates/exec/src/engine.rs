//! The tiled, unrolled, chunk-scheduled execution engine.

use std::time::Instant;

use stencil_model::{GridSize, StencilInstance, TuningVector};

use crate::grid::Grid;
use crate::kernels::StencilFn;
use crate::pool::SharedPool;
use crate::tiles::{Tile, TileGrid};

/// Measurement protocol: warmup runs followed by timed repetitions; the
/// median is reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasureConfig {
    /// Untimed warmup sweeps.
    pub warmup: u32,
    /// Timed sweeps (median reported).
    pub reps: u32,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig { warmup: 1, reps: 3 }
    }
}

/// Copyable index arithmetic of an output grid, captured before its buffer
/// is handed to the workers.
#[derive(Debug, Clone, Copy)]
struct Indexer {
    row: usize,
    plane: usize,
    hx: usize,
    hy: usize,
    hz: usize,
}

impl Indexer {
    fn of<T: Copy + Default>(g: &Grid<T>) -> Self {
        let (nx, _, _) = g.extent();
        let (hx, hy, hz) = g.halo();
        let row = nx + 2 * hx;
        let (_, ny, _) = g.extent();
        let plane = row * (ny + 2 * hy);
        Indexer { row, plane, hx, hy, hz }
    }

    #[inline]
    fn index(&self, x: usize, y: usize, z: usize) -> usize {
        (z + self.hz) * self.plane + (y + self.hy) * self.row + (x + self.hx)
    }
}

/// A raw pointer that may cross thread boundaries. Safety rests on the
/// engine writing each output point from exactly one tile and tiles being
/// disjoint (guaranteed by [`TileGrid`] and asserted in its tests).
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// The execution engine: a thread pool plus the blocked/unrolled sweep.
///
/// ```
/// use stencil_exec::{Engine, Grid, WeightedKernel};
/// use stencil_model::{DType, TuningVector};
///
/// // out[p] = (in[p-x] + in[p+x]) / 2, on a 16x8 plane with 4 threads.
/// let kernel = WeightedKernel::new(
///     "avg-x",
///     vec![(-1, 0, 0, 0, 0.5), (1, 0, 0, 0, 0.5)],
///     1,
///     DType::F64,
/// ).unwrap();
/// let mut input: Grid<f64> = Grid::new(16, 8, 1, 1, 0, 0);
/// input.fill_with(|x, _, _| x as f64);
/// let mut out: Grid<f64> = Grid::new(16, 8, 1, 1, 0, 0);
///
/// Engine::new(4).sweep(&kernel, &[&input], &mut out, &TuningVector::new(8, 4, 1, 2, 2));
/// assert_eq!(out.get(3, 5, 0), 3.0); // (2 + 4) / 2
/// ```
pub struct Engine {
    pool: SharedPool,
}

impl Engine {
    /// An engine running on `threads` threads.
    pub fn new(threads: usize) -> Self {
        Engine { pool: SharedPool::new(threads) }
    }

    /// An engine using all available parallelism.
    pub fn with_default_threads() -> Self {
        Engine { pool: SharedPool::with_default_threads() }
    }

    /// An engine running sweeps on an existing shared pool — the seam that
    /// lets tune → run → re-tune loops (and the serving layer) drive
    /// measurement and ranking off one set of worker threads.
    pub fn with_shared_pool(pool: SharedPool) -> Self {
        Engine { pool }
    }

    /// A cloneable handle to the engine's pool, for sharing with other
    /// subsystems (e.g. `sorl::session::TuningSession::with_shared_pool`).
    pub fn shared_pool(&self) -> SharedPool {
        self.pool.clone()
    }

    /// Threads used per sweep.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Performs one stencil sweep: for every interior point of `out`,
    /// `out[p] = kernel.apply(inputs, p)`, blocked and scheduled according
    /// to `tuning`.
    ///
    /// # Panics
    /// Panics when input/output extents disagree or halos are too small for
    /// the kernel's declared pattern radius.
    pub fn sweep<T, F>(
        &mut self,
        kernel: &F,
        inputs: &[&Grid<T>],
        out: &mut Grid<T>,
        tuning: &TuningVector,
    ) where
        T: Copy + Default + Send + Sync,
        F: StencilFn<T>,
    {
        let model = kernel.model();
        assert_eq!(inputs.len(), model.buffers() as usize, "input buffer count mismatch");
        let (nx, ny, nz) = out.extent();
        let (rx, ry, rz) = model.pattern().radius_per_axis();
        for g in inputs {
            assert_eq!(g.extent(), out.extent(), "input/output extents differ");
            let (hx, hy, hz) = g.halo();
            assert!(
                hx >= rx as usize && hy >= ry as usize && hz >= rz as usize,
                "input halo {:?} too small for pattern radius ({rx},{ry},{rz})",
                g.halo()
            );
        }

        let tiles = TileGrid::from_tuning(nx, ny, nz, tuning);
        let chunks = tiles.chunks(tuning.c as usize);
        let ix = Indexer::of(out);
        let out_ptr = SendPtr(out.raw_ptr());
        let unroll = tuning.u;
        let tile_slice = tiles.tiles();

        self.pool.run(chunks.len(), &|ci| {
            for ti in chunks[ci].clone() {
                process_tile(kernel, inputs, out_ptr, ix, tile_slice[ti], unroll);
            }
        });
    }

    /// Builds deterministic input grids for `instance`, runs
    /// `cfg.warmup + cfg.reps` sweeps and returns the median seconds per
    /// sweep.
    pub fn measure<T, F>(
        &mut self,
        kernel: &F,
        size: GridSize,
        tuning: &TuningVector,
        cfg: MeasureConfig,
    ) -> f64
    where
        T: Copy + Default + Send + Sync + FromF64,
        F: StencilFn<T>,
    {
        assert!(cfg.reps > 0, "need at least one timed repetition");
        let model = kernel.model();
        let instance = StencilInstance::new(model.clone(), size).expect("valid instance");
        let radius = instance.kernel().pattern().radius_per_axis();
        let buffers = model.buffers() as usize;
        let inputs: Vec<Grid<T>> = (0..buffers)
            .map(|b| {
                let mut g = Grid::for_size(size, radius);
                g.fill_with(|x, y, z| T::from_f64(test_field(b, x, y, z)));
                g
            })
            .collect();
        let input_refs: Vec<&Grid<T>> = inputs.iter().collect();
        let mut out = Grid::for_size(size, radius);

        for _ in 0..cfg.warmup {
            self.sweep(kernel, &input_refs, &mut out, tuning);
        }
        let mut times = Vec::with_capacity(cfg.reps as usize);
        for _ in 0..cfg.reps {
            let t0 = Instant::now();
            self.sweep(kernel, &input_refs, &mut out, tuning);
            times.push(t0.elapsed().as_secs_f64());
        }
        times.sort_by(f64::total_cmp);
        stencil_model::stats::median_sorted(&times)
    }
}

/// Conversion used to fill grids of either precision from one generator.
pub trait FromF64 {
    /// Converts (possibly lossily) from `f64`.
    fn from_f64(v: f64) -> Self;
}

impl FromF64 for f32 {
    fn from_f64(v: f64) -> Self {
        v as f32
    }
}

impl FromF64 for f64 {
    fn from_f64(v: f64) -> Self {
        v
    }
}

/// A smooth deterministic test field, different per buffer.
pub fn test_field(buffer: usize, x: i64, y: i64, z: i64) -> f64 {
    let b = buffer as f64 + 1.0;
    0.5 + 0.25 * ((x as f64) * 0.37 * b).sin() * ((y as f64) * 0.23 + b).cos()
        + 0.25 * ((z as f64) * 0.31 - b).sin()
}

/// Processes one tile, dispatching the unroll factor to a monomorphized
/// row loop (factors 0 and 1 both mean "no unrolling").
fn process_tile<T, F>(
    kernel: &F,
    inputs: &[&Grid<T>],
    out: SendPtr<T>,
    ix: Indexer,
    tile: Tile,
    unroll: u32,
) where
    T: Copy + Default,
    F: StencilFn<T>,
{
    match unroll {
        0 | 1 => tile_rows::<T, F, 1>(kernel, inputs, out, ix, tile),
        2 => tile_rows::<T, F, 2>(kernel, inputs, out, ix, tile),
        3 => tile_rows::<T, F, 3>(kernel, inputs, out, ix, tile),
        4 => tile_rows::<T, F, 4>(kernel, inputs, out, ix, tile),
        5 => tile_rows::<T, F, 5>(kernel, inputs, out, ix, tile),
        6 => tile_rows::<T, F, 6>(kernel, inputs, out, ix, tile),
        7 => tile_rows::<T, F, 7>(kernel, inputs, out, ix, tile),
        _ => tile_rows::<T, F, 8>(kernel, inputs, out, ix, tile),
    }
}

fn tile_rows<T, F, const U: usize>(
    kernel: &F,
    inputs: &[&Grid<T>],
    out: SendPtr<T>,
    ix: Indexer,
    tile: Tile,
) where
    T: Copy + Default,
    F: StencilFn<T>,
{
    for z in tile.z0..tile.z1 {
        for y in tile.y0..tile.y1 {
            let mut x = tile.x0;
            // Unrolled body: U stencil applications per iteration. The
            // fixed-trip inner loop is fully unrolled by the compiler.
            while x + U <= tile.x1 {
                for k in 0..U {
                    let xx = x + k;
                    let v = kernel.apply(inputs, xx, y, z);
                    // SAFETY: (xx, y, z) lies in this tile; tiles are
                    // disjoint and in-bounds, so this write is exclusive.
                    unsafe { *out.0.add(ix.index(xx, y, z)) = v };
                }
                x += U;
            }
            // Cleanup for the remainder of the row.
            while x < tile.x1 {
                let v = kernel.apply(inputs, x, y, z);
                // SAFETY: as above.
                unsafe { *out.0.add(ix.index(x, y, z)) = v };
                x += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::WeightedKernel;
    use crate::reference::reference_sweep;
    use stencil_model::DType;

    fn identity_kernel() -> WeightedKernel {
        WeightedKernel::new("identity", vec![(0, 0, 0, 0, 1.0)], 1, DType::F64).unwrap()
    }

    #[test]
    fn identity_sweep_copies_input() {
        let mut eng = Engine::new(2);
        let k = identity_kernel();
        let mut input: Grid<f64> = Grid::new(8, 8, 4, 0, 0, 0);
        input.fill_with(|x, y, z| (x * 100 + y * 10 + z) as f64);
        let mut out: Grid<f64> = Grid::new(8, 8, 4, 0, 0, 0);
        eng.sweep(&k, &[&input], &mut out, &TuningVector::new(4, 4, 2, 2, 2));
        assert_eq!(out.max_abs_diff(&input), 0.0);
    }

    #[test]
    fn all_unroll_factors_agree() {
        let k = WeightedKernel::new(
            "avg-x",
            vec![(-1, 0, 0, 0, 0.25), (0, 0, 0, 0, 0.5), (1, 0, 0, 0, 0.25)],
            1,
            DType::F64,
        )
        .unwrap();
        let mut input: Grid<f64> = Grid::new(13, 7, 3, 1, 0, 0);
        input.fill_with(|x, y, z| test_field(0, x, y, z));
        let mut reference: Grid<f64> = Grid::new(13, 7, 3, 1, 0, 0);
        reference_sweep(&k, &[&input], &mut reference);
        let mut eng = Engine::new(3);
        for u in 0..=8u32 {
            let mut out: Grid<f64> = Grid::new(13, 7, 3, 1, 0, 0);
            eng.sweep(&k, &[&input], &mut out, &TuningVector::new(5, 3, 2, u, 2));
            assert_eq!(out.max_abs_diff(&reference), 0.0, "u = {u}");
        }
    }

    /// Regression: for even rep counts the median must average the two
    /// middle values, not report the upper-middle one.
    #[test]
    fn even_rep_median_averages_the_middle_pair() {
        use stencil_model::stats::median_sorted;
        assert_eq!(median_sorted(&[1.0, 3.0]), 2.0); // reps = 2
        assert_eq!(median_sorted(&[1.0, 2.0, 4.0, 9.0]), 3.0); // reps = 4
        assert_eq!(median_sorted(&[1.0, 2.0, 3.0]), 2.0); // odd unchanged
        assert_eq!(median_sorted(&[7.0]), 7.0);
    }

    #[test]
    fn measure_supports_even_rep_counts() {
        let mut eng = Engine::new(2);
        let k = identity_kernel();
        for reps in [2u32, 4] {
            let secs = eng.measure::<f64, _>(
                &k,
                GridSize::square(32),
                &TuningVector::new(8, 8, 1, 0, 1),
                MeasureConfig { warmup: 0, reps },
            );
            assert!(secs > 0.0, "reps = {reps}");
        }
    }

    #[test]
    fn measure_returns_positive_median() {
        let mut eng = Engine::new(2);
        let k = identity_kernel();
        // The identity pattern is planar, so it measures on a 2-D size.
        let secs = eng.measure::<f64, _>(
            &k,
            GridSize::square(32),
            &TuningVector::new(8, 8, 1, 0, 1),
            MeasureConfig { warmup: 0, reps: 3 },
        );
        assert!(secs > 0.0);
    }

    #[test]
    #[should_panic(expected = "buffer count mismatch")]
    fn wrong_buffer_count_panics() {
        let mut eng = Engine::new(1);
        let k = identity_kernel();
        let mut out: Grid<f64> = Grid::new(4, 4, 1, 0, 0, 0);
        eng.sweep(&k, &[], &mut out, &TuningVector::new(2, 2, 1, 0, 1));
    }

    #[test]
    #[should_panic(expected = "halo")]
    fn missing_halo_panics() {
        let k = WeightedKernel::new("needs-halo", vec![(-1, 0, 0, 0, 1.0)], 1, DType::F64).unwrap();
        let input: Grid<f64> = Grid::new(4, 4, 1, 0, 0, 0); // no halo!
        let mut out: Grid<f64> = Grid::new(4, 4, 1, 0, 0, 0);
        Engine::new(1).sweep(&k, &[&input], &mut out, &TuningVector::new(2, 2, 1, 0, 1));
    }

    #[test]
    fn engines_can_share_one_pool() {
        let k = identity_kernel();
        let mut input: Grid<f64> = Grid::new(8, 8, 1, 0, 0, 0);
        input.fill_with(|x, y, _| (x * 10 + y) as f64);

        let primary = Engine::new(3);
        let pool = primary.shared_pool();
        let mut secondary = Engine::with_shared_pool(pool.clone());
        assert_eq!(secondary.threads(), 3);
        // The handle is shared, not copied: primary + its clone + secondary.
        assert_eq!(pool.handle_count(), 3);

        let mut out: Grid<f64> = Grid::new(8, 8, 1, 0, 0, 0);
        secondary.sweep(&k, &[&input], &mut out, &TuningVector::new(4, 4, 1, 0, 1));
        assert_eq!(out.max_abs_diff(&input), 0.0);
    }

    #[test]
    fn thread_counts_do_not_change_results() {
        let k = WeightedKernel::new(
            "star",
            vec![
                (0, 0, 0, 0, 0.4),
                (1, 0, 0, 0, 0.15),
                (-1, 0, 0, 0, 0.15),
                (0, 1, 0, 0, 0.15),
                (0, -1, 0, 0, 0.15),
            ],
            1,
            DType::F64,
        )
        .unwrap();
        let mut input: Grid<f64> = Grid::new(17, 19, 1, 1, 1, 0);
        input.fill_with(|x, y, z| test_field(0, x, y, z));
        let mut expected: Grid<f64> = Grid::new(17, 19, 1, 1, 1, 0);
        reference_sweep(&k, &[&input], &mut expected);
        for threads in [1usize, 2, 4, 8] {
            let mut eng = Engine::new(threads);
            let mut out: Grid<f64> = Grid::new(17, 19, 1, 1, 1, 0);
            eng.sweep(&k, &[&input], &mut out, &TuningVector::new(4, 4, 1, 3, 2));
            assert_eq!(out.max_abs_diff(&expected), 0.0, "threads = {threads}");
        }
    }
}
