//! Real multi-threaded stencil execution engine.
//!
//! This crate is the runnable counterpart of the simulated machine: it
//! actually applies stencil kernels to grids, honouring the same tuning
//! parameters the paper exposes through PATUS:
//!
//! * **loop blocking** — the iteration space is decomposed into
//!   `(bx, by, bz)` tiles ([`tiles`]),
//! * **loop unrolling** — the innermost (x) loop is specialized for unroll
//!   factors 0..=8 via const generics ([`engine`]),
//! * **chunked multi-threading** — `c` consecutive tiles form a chunk;
//!   chunks are claimed dynamically by the workers of a persistent
//!   thread pool ([`pool`]).
//!
//! The nine Table III benchmark kernels are implemented in [`kernels`],
//! together with a [`kernels::WeightedKernel`] for arbitrary linear
//! stencils. [`mod@reference`] provides a naive single-threaded interpreter
//! used by the test-suite to verify that no combination of tiling,
//! unrolling and chunking ever skips, duplicates or reorders a grid point
//! update.
//!
//! The engine is what examples and integration tests run; the large-scale
//! experiments use `stencil-machine` instead (see DESIGN.md for the
//! substitution rationale).

pub mod engine;
pub mod grid;
pub mod kernels;
pub mod pool;
pub mod reference;
pub mod simulation;
pub mod tiles;

pub use engine::{Engine, MeasureConfig};
pub use grid::Grid;
pub use kernels::{
    BenchmarkKernel, Blur, Divergence, Edge, GameOfLife, Gradient, Laplacian, Laplacian6,
    StencilFn, Tricubic, Wave, WeightedKernel,
};
pub use pool::{SharedPool, ThreadPool};
pub use simulation::Simulation;
pub use tiles::{Tile, TileGrid};
