//! Naive single-threaded reference interpreter.
//!
//! The reference applies the kernel in plain triple-loop order without
//! tiling, unrolling or threads. Because every engine schedule computes
//! the same per-point function on the same inputs, engine output must match
//! the reference *bit for bit* — any deviation indicates a skipped,
//! duplicated or mis-indexed point.

use crate::grid::Grid;
use crate::kernels::StencilFn;

/// Applies `kernel` to every interior point of `out` in canonical order.
///
/// # Panics
/// Panics when input and output extents disagree.
pub fn reference_sweep<T, F>(kernel: &F, inputs: &[&Grid<T>], out: &mut Grid<T>)
where
    T: Copy + Default,
    F: StencilFn<T>,
{
    for g in inputs {
        assert_eq!(g.extent(), out.extent(), "input/output extents differ");
    }
    let (nx, ny, nz) = out.extent();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let v = kernel.apply(inputs, x, y, z);
                out.set(x, y, z, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::WeightedKernel;
    use stencil_model::DType;

    #[test]
    fn reference_identity() {
        let k = WeightedKernel::new("id", vec![(0, 0, 0, 0, 1.0)], 1, DType::F64).unwrap();
        let mut input: Grid<f64> = Grid::new(3, 3, 1, 0, 0, 0);
        input.fill_with(|x, y, _| (x + 10 * y) as f64);
        let mut out: Grid<f64> = Grid::new(3, 3, 1, 0, 0, 0);
        reference_sweep(&k, &[&input], &mut out);
        assert_eq!(out.max_abs_diff(&input), 0.0);
    }

    #[test]
    fn reference_shift() {
        // out[p] = in[p + x] shifts the field left.
        let k = WeightedKernel::new("shift", vec![(1, 0, 0, 0, 1.0)], 1, DType::F64).unwrap();
        let mut input: Grid<f64> = Grid::new(4, 1, 1, 1, 0, 0);
        input.fill_with(|x, _, _| x as f64);
        let mut out: Grid<f64> = Grid::new(4, 1, 1, 1, 0, 0);
        reference_sweep(&k, &[&input], &mut out);
        for x in 0..4 {
            assert_eq!(out.get(x, 0, 0), (x + 1) as f64);
        }
    }

    #[test]
    #[should_panic(expected = "extents differ")]
    fn extent_mismatch_panics() {
        let k = WeightedKernel::new("id", vec![(0, 0, 0, 0, 1.0)], 1, DType::F64).unwrap();
        let input: Grid<f64> = Grid::new(3, 3, 1, 0, 0, 0);
        let mut out: Grid<f64> = Grid::new(4, 3, 1, 0, 0, 0);
        reference_sweep(&k, &[&input], &mut out);
    }
}
