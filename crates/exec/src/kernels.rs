//! Stencil kernel implementations.
//!
//! [`StencilFn`] is the compute interface of the engine: given the input
//! grids and a point, produce the updated value. Every implementation also
//! carries its [`StencilKernel`] model (shape, buffers, dtype) so the
//! engine can size halos and validate inputs, and so the autotuner can
//! extract features from the very same object it executes.
//!
//! The nine Table III benchmarks are provided as concrete types behind the
//! [`BenchmarkKernel`] enum; [`WeightedKernel`] covers arbitrary linear
//! stencils (used for the generated training corpus and by property tests).

use stencil_model::{DType, ModelError, Offset, StencilKernel, StencilPattern};

use crate::grid::Grid;

/// A per-point stencil function over grids of element type `T`.
pub trait StencilFn<T>: Sync {
    /// The declared kernel (shape/buffers/dtype) this function computes.
    fn model(&self) -> &StencilKernel;

    /// Computes the updated value at interior point `(x, y, z)`.
    fn apply(&self, inputs: &[&Grid<T>], x: usize, y: usize, z: usize) -> T;
}

// ---------------------------------------------------------------------------
// Generic weighted (linear) stencils
// ---------------------------------------------------------------------------

/// An arbitrary linear stencil: `out[p] = sum_i w_i * inputs[b_i][p + o_i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedKernel {
    model: StencilKernel,
    taps: Vec<Tap>,
}

/// One weighted access.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Tap {
    dx: i32,
    dy: i32,
    dz: i32,
    buffer: usize,
    weight: f64,
}

impl WeightedKernel {
    /// Builds a weighted kernel from `(dx, dy, dz, buffer, weight)` taps.
    /// The model pattern is the per-buffer sum of the tap positions, as in
    /// the paper's multi-buffer encoding.
    pub fn new(
        name: impl Into<String>,
        taps: Vec<(i32, i32, i32, usize, f64)>,
        buffers: u8,
        dtype: DType,
    ) -> Result<Self, ModelError> {
        let mut pattern = StencilPattern::new();
        let mut converted = Vec::with_capacity(taps.len());
        for &(dx, dy, dz, buffer, weight) in &taps {
            if buffer >= buffers as usize {
                return Err(ModelError::OutOfRange {
                    what: "tap buffer index",
                    value: buffer as i64,
                    lo: 0,
                    hi: buffers as i64 - 1,
                });
            }
            pattern.add(Offset::new(dx, dy, dz));
            converted.push(Tap { dx, dy, dz, buffer, weight });
        }
        let model = StencilKernel::new(name, pattern, buffers, dtype)?;
        Ok(WeightedKernel { model, taps: converted })
    }

    /// Builds a uniform-weight kernel over every point of `pattern`
    /// (weight = 1 / points), reading buffer 0 — the shape of kernel used
    /// for the generated training corpus.
    pub fn uniform(
        name: impl Into<String>,
        pattern: &StencilPattern,
        buffers: u8,
        dtype: DType,
    ) -> Result<Self, ModelError> {
        let w = 1.0 / pattern.total_accesses().max(1) as f64;
        let mut taps = Vec::new();
        for (o, count) in pattern.iter() {
            // Spread multi-count cells across buffers round-robin, so the
            // executable kernel touches every declared buffer.
            for rep in 0..count {
                taps.push((o.dx, o.dy, o.dz, (rep as usize) % buffers as usize, w));
            }
        }
        WeightedKernel::new(name, taps, buffers, dtype)
    }

    /// The declared kernel model. Inherent version so callers do not have
    /// to disambiguate between the `StencilFn<f32>` and `StencilFn<f64>`
    /// implementations.
    pub fn model(&self) -> &StencilKernel {
        &self.model
    }

    fn eval<T>(&self, inputs: &[&Grid<T>], x: usize, y: usize, z: usize) -> f64
    where
        T: Copy + Default + Into<f64>,
    {
        let mut acc = 0.0;
        for t in &self.taps {
            acc += t.weight * inputs[t.buffer].at(x, y, z, t.dx, t.dy, t.dz).into();
        }
        acc
    }
}

impl StencilFn<f64> for WeightedKernel {
    fn model(&self) -> &StencilKernel {
        &self.model
    }

    #[inline]
    fn apply(&self, inputs: &[&Grid<f64>], x: usize, y: usize, z: usize) -> f64 {
        self.eval(inputs, x, y, z)
    }
}

impl StencilFn<f32> for WeightedKernel {
    fn model(&self) -> &StencilKernel {
        &self.model
    }

    #[inline]
    fn apply(&self, inputs: &[&Grid<f32>], x: usize, y: usize, z: usize) -> f32 {
        self.eval(inputs, x, y, z) as f32
    }
}

// ---------------------------------------------------------------------------
// Table III kernels
// ---------------------------------------------------------------------------

macro_rules! kernel_struct {
    ($(#[$doc:meta])* $name:ident, $ctor:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            model: StencilKernel,
        }

        impl $name {
            /// Creates the kernel with its Table III model.
            pub fn new() -> Self {
                $name { model: StencilKernel::$ctor() }
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new()
            }
        }
    };
}

kernel_struct!(
    /// 2-D 5x5 box blur (single precision).
    Blur,
    blur
);

impl StencilFn<f32> for Blur {
    fn model(&self) -> &StencilKernel {
        &self.model
    }

    #[inline]
    fn apply(&self, inputs: &[&Grid<f32>], x: usize, y: usize, z: usize) -> f32 {
        let g = inputs[0];
        let mut acc = 0.0f32;
        for dy in -2..=2 {
            for dx in -2..=2 {
                acc += g.at(x, y, z, dx, dy, 0);
            }
        }
        acc * (1.0 / 25.0)
    }
}

kernel_struct!(
    /// 2-D 3x3 edge detection: `8 c - sum(neighbours)` (single precision).
    Edge,
    edge
);

impl StencilFn<f32> for Edge {
    fn model(&self) -> &StencilKernel {
        &self.model
    }

    #[inline]
    fn apply(&self, inputs: &[&Grid<f32>], x: usize, y: usize, z: usize) -> f32 {
        let g = inputs[0];
        let mut acc = 0.0f32;
        for dy in -1..=1 {
            for dx in -1..=1 {
                let w = if dx == 0 && dy == 0 { 8.0 } else { -1.0 };
                acc += w * g.at(x, y, z, dx, dy, 0);
            }
        }
        acc
    }
}

kernel_struct!(
    /// Conway's game of life on a float grid (alive = value > 0.5).
    GameOfLife,
    game_of_life
);

impl StencilFn<f32> for GameOfLife {
    fn model(&self) -> &StencilKernel {
        &self.model
    }

    #[inline]
    fn apply(&self, inputs: &[&Grid<f32>], x: usize, y: usize, z: usize) -> f32 {
        let g = inputs[0];
        let mut alive = 0u32;
        for dy in -1..=1 {
            for dx in -1..=1 {
                if (dx != 0 || dy != 0) && g.at(x, y, z, dx, dy, 0) > 0.5 {
                    alive += 1;
                }
            }
        }
        let me = g.at(x, y, z, 0, 0, 0) > 0.5;
        let next = matches!((me, alive), (true, 2) | (true, 3) | (false, 3));
        if next {
            1.0
        } else {
            0.0
        }
    }
}

kernel_struct!(
    /// 3-D wave step: `u + k^2 * lap13(u)` with an extra centre read for
    /// the (folded) previous time step — the paper's "13 laplacian + 1".
    Wave,
    wave
);

impl StencilFn<f32> for Wave {
    fn model(&self) -> &StencilKernel {
        &self.model
    }

    #[inline]
    fn apply(&self, inputs: &[&Grid<f32>], x: usize, y: usize, z: usize) -> f32 {
        let g = inputs[0];
        let c = g.at(x, y, z, 0, 0, 0);
        let prev = g.at(x, y, z, 0, 0, 0); // the "+1" access

        // 4th-order 13-point laplacian coefficients per axis:
        // -5/2 (centre), 4/3 (distance 1), -1/12 (distance 2).
        const W1: f32 = 4.0 / 3.0;
        const W2: f32 = -1.0 / 12.0;
        let mut lap = -7.5 * c; // 3 * (-5/2)
        lap += W1
            * (g.at(x, y, z, 1, 0, 0)
                + g.at(x, y, z, -1, 0, 0)
                + g.at(x, y, z, 0, 1, 0)
                + g.at(x, y, z, 0, -1, 0)
                + g.at(x, y, z, 0, 0, 1)
                + g.at(x, y, z, 0, 0, -1));
        lap += W2
            * (g.at(x, y, z, 2, 0, 0)
                + g.at(x, y, z, -2, 0, 0)
                + g.at(x, y, z, 0, 2, 0)
                + g.at(x, y, z, 0, -2, 0)
                + g.at(x, y, z, 0, 0, 2)
                + g.at(x, y, z, 0, 0, -2));
        2.0 * c - prev + 0.25 * lap
    }
}

kernel_struct!(
    /// Tricubic interpolation: 64-point weighted gather with per-point
    /// fractional coordinates from the two auxiliary buffers.
    Tricubic,
    tricubic
);

/// Catmull-Rom cubic weight for offset `i` in {-1, 0, 1, 2} at fraction `f`.
#[inline]
fn cubic_weight(i: i32, f: f32) -> f32 {
    // Catmull-Rom basis evaluated at distance |i - f|.
    let t = f - i as f32;
    let a = t.abs();
    if a < 1.0 {
        1.5 * a * a * a - 2.5 * a * a + 1.0
    } else if a < 2.0 {
        -0.5 * a * a * a + 2.5 * a * a - 4.0 * a + 2.0
    } else {
        0.0
    }
}

impl StencilFn<f32> for Tricubic {
    fn model(&self) -> &StencilKernel {
        &self.model
    }

    #[inline]
    fn apply(&self, inputs: &[&Grid<f32>], x: usize, y: usize, z: usize) -> f32 {
        let field = inputs[0];
        // Fractions in [0, 1) derived from the auxiliary buffers.
        let fx = inputs[1].at(x, y, z, 0, 0, 0).fract().abs();
        let fy = inputs[2].at(x, y, z, 0, 0, 0).fract().abs();
        let fz = (0.5 * (fx + fy)).fract();
        let mut acc = 0.0f32;
        for dz in -1..=2 {
            let wz = cubic_weight(dz, fz);
            for dy in -1..=2 {
                let wyz = cubic_weight(dy, fy) * wz;
                for dx in -1..=2 {
                    acc += cubic_weight(dx, fx) * wyz * field.at(x, y, z, dx, dy, dz);
                }
            }
        }
        acc
    }
}

kernel_struct!(
    /// Divergence of a vector field stored in three double buffers; each
    /// buffer is differenced along one axis (centre not read).
    Divergence,
    divergence
);

impl StencilFn<f64> for Divergence {
    fn model(&self) -> &StencilKernel {
        &self.model
    }

    #[inline]
    fn apply(&self, inputs: &[&Grid<f64>], x: usize, y: usize, z: usize) -> f64 {
        let gx = inputs[0];
        let gy = inputs[1];
        let gz = inputs[2];
        0.5 * ((gx.at(x, y, z, 1, 0, 0) - gx.at(x, y, z, -1, 0, 0))
            + (gy.at(x, y, z, 0, 1, 0) - gy.at(x, y, z, 0, -1, 0))
            + (gz.at(x, y, z, 0, 0, 1) - gz.at(x, y, z, 0, 0, -1)))
    }
}

kernel_struct!(
    /// Gradient magnitude of a scalar double field (centre not read).
    Gradient,
    gradient
);

impl StencilFn<f64> for Gradient {
    fn model(&self) -> &StencilKernel {
        &self.model
    }

    #[inline]
    fn apply(&self, inputs: &[&Grid<f64>], x: usize, y: usize, z: usize) -> f64 {
        let g = inputs[0];
        let dx = 0.5 * (g.at(x, y, z, 1, 0, 0) - g.at(x, y, z, -1, 0, 0));
        let dy = 0.5 * (g.at(x, y, z, 0, 1, 0) - g.at(x, y, z, 0, -1, 0));
        let dz = 0.5 * (g.at(x, y, z, 0, 0, 1) - g.at(x, y, z, 0, 0, -1));
        (dx * dx + dy * dy + dz * dz).sqrt()
    }
}

kernel_struct!(
    /// Classic 7-point laplacian (double).
    Laplacian,
    laplacian
);

impl StencilFn<f64> for Laplacian {
    fn model(&self) -> &StencilKernel {
        &self.model
    }

    #[inline]
    fn apply(&self, inputs: &[&Grid<f64>], x: usize, y: usize, z: usize) -> f64 {
        let g = inputs[0];
        g.at(x, y, z, 1, 0, 0)
            + g.at(x, y, z, -1, 0, 0)
            + g.at(x, y, z, 0, 1, 0)
            + g.at(x, y, z, 0, -1, 0)
            + g.at(x, y, z, 0, 0, 1)
            + g.at(x, y, z, 0, 0, -1)
            - 6.0 * g.at(x, y, z, 0, 0, 0)
    }
}

kernel_struct!(
    /// 6th-order 19-point laplacian (double).
    Laplacian6,
    laplacian6
);

impl StencilFn<f64> for Laplacian6 {
    fn model(&self) -> &StencilKernel {
        &self.model
    }

    #[inline]
    fn apply(&self, inputs: &[&Grid<f64>], x: usize, y: usize, z: usize) -> f64 {
        let g = inputs[0];
        // 6th-order coefficients: 1/90, -3/20, 3/2 per side, -49/18 centre.
        const W1: f64 = 1.5;
        const W2: f64 = -3.0 / 20.0;
        const W3: f64 = 1.0 / 90.0;
        const WC: f64 = -49.0 / 18.0;
        let mut acc = 3.0 * WC * g.at(x, y, z, 0, 0, 0);
        acc += W1
            * (g.at(x, y, z, 1, 0, 0)
                + g.at(x, y, z, -1, 0, 0)
                + g.at(x, y, z, 0, 1, 0)
                + g.at(x, y, z, 0, -1, 0)
                + g.at(x, y, z, 0, 0, 1)
                + g.at(x, y, z, 0, 0, -1));
        acc += W2
            * (g.at(x, y, z, 2, 0, 0)
                + g.at(x, y, z, -2, 0, 0)
                + g.at(x, y, z, 0, 2, 0)
                + g.at(x, y, z, 0, -2, 0)
                + g.at(x, y, z, 0, 0, 2)
                + g.at(x, y, z, 0, 0, -2));
        acc += W3
            * (g.at(x, y, z, 3, 0, 0)
                + g.at(x, y, z, -3, 0, 0)
                + g.at(x, y, z, 0, 3, 0)
                + g.at(x, y, z, 0, -3, 0)
                + g.at(x, y, z, 0, 0, 3)
                + g.at(x, y, z, 0, 0, -3));
        acc
    }
}

// ---------------------------------------------------------------------------
// The benchmark suite
// ---------------------------------------------------------------------------

/// The nine Table III kernels as a closed enum, dispatching to the typed
/// implementations above.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchmarkKernel {
    Blur,
    Edge,
    GameOfLife,
    Wave,
    Tricubic,
    Divergence,
    Gradient,
    Laplacian,
    Laplacian6,
}

impl BenchmarkKernel {
    /// All nine kernels in Table III order.
    pub const ALL: [BenchmarkKernel; 9] = [
        BenchmarkKernel::Blur,
        BenchmarkKernel::Edge,
        BenchmarkKernel::GameOfLife,
        BenchmarkKernel::Wave,
        BenchmarkKernel::Tricubic,
        BenchmarkKernel::Divergence,
        BenchmarkKernel::Gradient,
        BenchmarkKernel::Laplacian,
        BenchmarkKernel::Laplacian6,
    ];

    /// Looks a kernel up by its Table III name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.model().name() == name)
    }

    /// The kernel model (shape, buffers, dtype).
    pub fn model(&self) -> StencilKernel {
        match self {
            BenchmarkKernel::Blur => StencilKernel::blur(),
            BenchmarkKernel::Edge => StencilKernel::edge(),
            BenchmarkKernel::GameOfLife => StencilKernel::game_of_life(),
            BenchmarkKernel::Wave => StencilKernel::wave(),
            BenchmarkKernel::Tricubic => StencilKernel::tricubic(),
            BenchmarkKernel::Divergence => StencilKernel::divergence(),
            BenchmarkKernel::Gradient => StencilKernel::gradient(),
            BenchmarkKernel::Laplacian => StencilKernel::laplacian(),
            BenchmarkKernel::Laplacian6 => StencilKernel::laplacian6(),
        }
    }

    /// Measures a sweep with the engine (median seconds per sweep).
    pub fn measure(
        &self,
        engine: &mut crate::engine::Engine,
        size: stencil_model::GridSize,
        tuning: &stencil_model::TuningVector,
        cfg: crate::engine::MeasureConfig,
    ) -> f64 {
        match self {
            BenchmarkKernel::Blur => engine.measure::<f32, _>(&Blur::new(), size, tuning, cfg),
            BenchmarkKernel::Edge => engine.measure::<f32, _>(&Edge::new(), size, tuning, cfg),
            BenchmarkKernel::GameOfLife => {
                engine.measure::<f32, _>(&GameOfLife::new(), size, tuning, cfg)
            }
            BenchmarkKernel::Wave => engine.measure::<f32, _>(&Wave::new(), size, tuning, cfg),
            BenchmarkKernel::Tricubic => {
                engine.measure::<f32, _>(&Tricubic::new(), size, tuning, cfg)
            }
            BenchmarkKernel::Divergence => {
                engine.measure::<f64, _>(&Divergence::new(), size, tuning, cfg)
            }
            BenchmarkKernel::Gradient => {
                engine.measure::<f64, _>(&Gradient::new(), size, tuning, cfg)
            }
            BenchmarkKernel::Laplacian => {
                engine.measure::<f64, _>(&Laplacian::new(), size, tuning, cfg)
            }
            BenchmarkKernel::Laplacian6 => {
                engine.measure::<f64, _>(&Laplacian6::new(), size, tuning, cfg)
            }
        }
    }

    /// Runs an engine sweep and the reference interpreter on identical
    /// inputs and returns the maximum absolute difference (0.0 means the
    /// blocked/unrolled/parallel schedule is exactly equivalent).
    pub fn verify(
        &self,
        threads: usize,
        size: stencil_model::GridSize,
        tuning: &stencil_model::TuningVector,
    ) -> f64 {
        match self {
            BenchmarkKernel::Blur => verify_typed::<f32, _>(&Blur::new(), threads, size, tuning),
            BenchmarkKernel::Edge => verify_typed::<f32, _>(&Edge::new(), threads, size, tuning),
            BenchmarkKernel::GameOfLife => {
                verify_typed::<f32, _>(&GameOfLife::new(), threads, size, tuning)
            }
            BenchmarkKernel::Wave => verify_typed::<f32, _>(&Wave::new(), threads, size, tuning),
            BenchmarkKernel::Tricubic => {
                verify_typed::<f32, _>(&Tricubic::new(), threads, size, tuning)
            }
            BenchmarkKernel::Divergence => {
                verify_typed::<f64, _>(&Divergence::new(), threads, size, tuning)
            }
            BenchmarkKernel::Gradient => {
                verify_typed::<f64, _>(&Gradient::new(), threads, size, tuning)
            }
            BenchmarkKernel::Laplacian => {
                verify_typed::<f64, _>(&Laplacian::new(), threads, size, tuning)
            }
            BenchmarkKernel::Laplacian6 => {
                verify_typed::<f64, _>(&Laplacian6::new(), threads, size, tuning)
            }
        }
    }
}

/// Helper shared by [`BenchmarkKernel::verify`]: engine vs. reference.
fn verify_typed<T, F>(
    kernel: &F,
    threads: usize,
    size: stencil_model::GridSize,
    tuning: &stencil_model::TuningVector,
) -> f64
where
    T: Copy + Default + Send + Sync + crate::engine::FromF64 + Into<f64> + PartialOrd,
    F: StencilFn<T>,
{
    let radius = kernel.model().pattern().radius_per_axis();
    let buffers = kernel.model().buffers() as usize;
    let inputs: Vec<Grid<T>> = (0..buffers)
        .map(|b| {
            let mut g = Grid::for_size(size, radius);
            g.fill_with(|x, y, z| T::from_f64(crate::engine::test_field(b, x, y, z)));
            g
        })
        .collect();
    let input_refs: Vec<&Grid<T>> = inputs.iter().collect();

    let mut expected = Grid::for_size(size, radius);
    crate::reference::reference_sweep(kernel, &input_refs, &mut expected);

    let mut out = Grid::for_size(size, radius);
    let mut engine = crate::engine::Engine::new(threads);
    engine.sweep(kernel, &input_refs, &mut out, tuning);

    let (nx, ny, nz) = out.extent();
    let mut worst = 0.0f64;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let a: f64 = out.get(x, y, z).into();
                let b: f64 = expected.get(x, y, z).into();
                worst = worst.max((a - b).abs());
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_model::{GridSize, TuningVector};

    #[test]
    fn weighted_kernel_validates_buffer_indices() {
        assert!(WeightedKernel::new("bad", vec![(0, 0, 0, 2, 1.0)], 2, DType::F64).is_err());
        assert!(WeightedKernel::new("ok", vec![(0, 0, 0, 1, 1.0)], 2, DType::F64).is_ok());
    }

    #[test]
    fn uniform_kernel_weights_sum_to_one() {
        let p = stencil_model::ShapeFamily::Laplacian.build(3, 1).unwrap();
        let k = WeightedKernel::uniform("u", &p, 1, DType::F64).unwrap();
        let total: f64 = k.taps.iter().map(|t| t.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(k.taps.len(), 7);
    }

    #[test]
    fn uniform_kernel_touches_all_buffers_for_multicount_patterns() {
        let mut p = StencilPattern::new();
        p.add_count(Offset::ORIGIN, 3);
        let k = WeightedKernel::uniform("m", &p, 3, DType::F32).unwrap();
        let buffers: std::collections::HashSet<usize> = k.taps.iter().map(|t| t.buffer).collect();
        assert_eq!(buffers.len(), 3);
    }

    #[test]
    fn models_match_table3() {
        for k in BenchmarkKernel::ALL {
            let m = k.model();
            assert!(!m.pattern().is_empty());
        }
        assert_eq!(BenchmarkKernel::Blur.model().pattern().len(), 25);
        assert_eq!(BenchmarkKernel::Tricubic.model().buffers(), 3);
    }

    #[test]
    fn from_name_roundtrips() {
        for k in BenchmarkKernel::ALL {
            assert_eq!(BenchmarkKernel::from_name(k.model().name()), Some(k));
        }
        assert_eq!(BenchmarkKernel::from_name("nope"), None);
    }

    #[test]
    fn all_benchmarks_verify_against_reference() {
        // Small grids, an awkward tuning (non-dividing blocks, unrolling,
        // chunking) and 4 threads: the engine must agree exactly.
        for k in BenchmarkKernel::ALL {
            let size = if k.model().dim() == 2 { GridSize::square(33) } else { GridSize::cube(17) };
            let tuning = if k.model().dim() == 2 {
                TuningVector::new(5, 7, 1, 3, 2)
            } else {
                TuningVector::new(5, 7, 3, 3, 2)
            };
            let diff = k.verify(4, size, &tuning);
            assert_eq!(diff, 0.0, "{:?} diverged from reference", k);
        }
    }

    #[test]
    fn game_of_life_rules() {
        // A blinker oscillates: three cells in a row become a column.
        let k = GameOfLife::new();
        let mut g: Grid<f32> = Grid::new(5, 5, 1, 1, 1, 0);
        for x in 1..=3 {
            g.set(x, 2, 0, 1.0);
        }
        let refs = [&g];
        assert_eq!(k.apply(&refs, 2, 1, 0), 1.0); // grows above
        assert_eq!(k.apply(&refs, 2, 2, 0), 1.0); // centre survives
        assert_eq!(k.apply(&refs, 2, 3, 0), 1.0); // grows below
        assert_eq!(k.apply(&refs, 1, 2, 0), 0.0); // end dies
        assert_eq!(k.apply(&refs, 3, 2, 0), 0.0); // end dies
        assert_eq!(k.apply(&refs, 0, 0, 0), 0.0); // empty stays empty
    }

    #[test]
    fn laplacian_of_constant_field_is_zero() {
        let k = Laplacian::new();
        let mut g: Grid<f64> = Grid::new(3, 3, 3, 1, 1, 1);
        g.fill_with(|_, _, _| 7.0);
        assert!((k.apply(&[&g], 1, 1, 1)).abs() < 1e-12);
        let k6 = Laplacian6::new();
        let mut g6: Grid<f64> = Grid::new(7, 7, 7, 3, 3, 3);
        g6.fill_with(|_, _, _| 7.0);
        assert!((k6.apply(&[&g6], 3, 3, 3)).abs() < 1e-12);
    }

    #[test]
    fn laplacian_of_quadratic_is_constant() {
        // lap(x^2 + y^2 + z^2) = 6 for the 2nd-order 7-point stencil.
        let k = Laplacian::new();
        let mut g: Grid<f64> = Grid::new(3, 3, 3, 1, 1, 1);
        g.fill_with(|x, y, z| (x * x + y * y + z * z) as f64);
        assert!((k.apply(&[&g], 1, 1, 1) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_of_linear_field() {
        // grad(2x + y) has magnitude sqrt(4 + 1).
        let k = Gradient::new();
        let mut g: Grid<f64> = Grid::new(3, 3, 3, 1, 1, 1);
        g.fill_with(|x, y, _| (2 * x + y) as f64);
        assert!((k.apply(&[&g], 1, 1, 1) - 5.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn divergence_of_linear_vector_field() {
        // div(x, 2y, 3z) = 6.
        let k = Divergence::new();
        let mut gx: Grid<f64> = Grid::new(3, 3, 3, 1, 1, 1);
        let mut gy: Grid<f64> = Grid::new(3, 3, 3, 1, 1, 1);
        let mut gz: Grid<f64> = Grid::new(3, 3, 3, 1, 1, 1);
        gx.fill_with(|x, _, _| x as f64);
        gy.fill_with(|_, y, _| 2.0 * y as f64);
        gz.fill_with(|_, _, z| 3.0 * z as f64);
        assert!((k.apply(&[&gx, &gy, &gz], 1, 1, 1) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn blur_of_constant_is_identity() {
        let k = Blur::new();
        let mut g: Grid<f32> = Grid::new(5, 5, 1, 2, 2, 0);
        g.fill_with(|_, _, _| 3.0);
        assert!((k.apply(&[&g], 2, 2, 0) - 3.0).abs() < 1e-5);
    }

    #[test]
    fn edge_of_constant_is_zero() {
        let k = Edge::new();
        let mut g: Grid<f32> = Grid::new(3, 3, 1, 1, 1, 0);
        g.fill_with(|_, _, _| 3.0);
        assert!((k.apply(&[&g], 1, 1, 0)).abs() < 1e-5);
    }

    #[test]
    fn cubic_weights_partition_unity() {
        // Catmull-Rom weights over {-1, 0, 1, 2} sum to 1 for any fraction.
        for f in [0.0f32, 0.25, 0.5, 0.75, 0.99] {
            let s: f32 = (-1..=2).map(|i| cubic_weight(i, f)).sum();
            assert!((s - 1.0).abs() < 1e-5, "f = {f}: sum {s}");
        }
    }

    #[test]
    fn tricubic_of_constant_field_is_constant() {
        let k = Tricubic::new();
        let mut field: Grid<f32> = Grid::new(5, 5, 5, 2, 2, 2);
        field.fill_with(|_, _, _| 2.0);
        let mut fx: Grid<f32> = Grid::new(5, 5, 5, 2, 2, 2);
        fx.fill_with(|_, _, _| 0.3);
        let mut fy: Grid<f32> = Grid::new(5, 5, 5, 2, 2, 2);
        fy.fill_with(|_, _, _| 0.7);
        let v = k.apply(&[&field, &fx, &fy], 2, 2, 2);
        assert!((v - 2.0).abs() < 1e-4, "v = {v}");
    }

    #[test]
    fn wave_preserves_constant_field() {
        // For constant u: laplacian = 0, out = 2c - c + 0 = c.
        let k = Wave::new();
        let mut g: Grid<f32> = Grid::new(5, 5, 5, 2, 2, 2);
        g.fill_with(|_, _, _| 1.5);
        assert!((k.apply(&[&g], 2, 2, 2) - 1.5).abs() < 1e-4);
    }
}
