//! Time-stepped stencil simulations.
//!
//! Iterative stencil codes (Jacobi solvers, wave propagation, cellular
//! automata) sweep the same kernel repeatedly, reading time step `t` and
//! writing `t + 1`. [`Simulation`] owns the ping-pong grid pair, the engine
//! and the tuning, and exposes a step loop with Dirichlet boundary
//! semantics: halo cells keep their initial values and act as the fixed
//! boundary condition.

use stencil_model::{GridSize, TuningVector};

use crate::engine::{Engine, FromF64};
use crate::grid::Grid;
use crate::kernels::StencilFn;

/// A ping-pong time loop for single-buffer kernels.
pub struct Simulation<T, F> {
    kernel: F,
    current: Grid<T>,
    next: Grid<T>,
    engine: Engine,
    tuning: TuningVector,
    steps: u64,
}

impl<T, F> Simulation<T, F>
where
    T: Copy + Default + Send + Sync + FromF64,
    F: StencilFn<T>,
{
    /// Creates a simulation over a `size` domain initialized (interior and
    /// halo) by `init`; the halo values persist as the Dirichlet boundary.
    ///
    /// # Panics
    /// Panics when the kernel reads more than one buffer (ping-pong
    /// semantics need exactly one), or when kernel and size dimensionality
    /// disagree.
    pub fn new(
        kernel: F,
        size: GridSize,
        tuning: TuningVector,
        threads: usize,
        mut init: impl FnMut(i64, i64, i64) -> T,
    ) -> Self {
        let model = kernel.model();
        assert_eq!(model.buffers(), 1, "time-stepped simulations need single-buffer kernels");
        assert_eq!(model.dim(), size.dim(), "kernel/size dimensionality mismatch");
        let radius = model.pattern().radius_per_axis();
        let mut current = Grid::for_size(size, radius);
        current.fill_with(&mut init);
        // The next grid shares the boundary (halo) values; its interior is
        // overwritten by the first sweep.
        let mut next = Grid::for_size(size, radius);
        next.fill_with(&mut init);
        Simulation { kernel, current, next, engine: Engine::new(threads), tuning, steps: 0 }
    }

    /// Advances `n` time steps.
    pub fn step(&mut self, n: u64) {
        for _ in 0..n {
            self.engine.sweep(&self.kernel, &[&self.current], &mut self.next, &self.tuning);
            std::mem::swap(&mut self.current, &mut self.next);
            self.steps += 1;
        }
    }

    /// The state after the last completed step.
    pub fn state(&self) -> &Grid<T> {
        &self.current
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The tuning in use.
    pub fn tuning(&self) -> TuningVector {
        self.tuning
    }

    /// Replaces the tuning for subsequent steps (retuning mid-run is safe:
    /// every tuning computes the same function).
    pub fn set_tuning(&mut self, tuning: TuningVector) {
        self.tuning = tuning;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{GameOfLife, WeightedKernel};
    use stencil_model::DType;

    fn heat_kernel(alpha: f64) -> WeightedKernel {
        WeightedKernel::new(
            "heat",
            vec![
                (0, 0, 0, 0, 1.0 - 6.0 * alpha),
                (1, 0, 0, 0, alpha),
                (-1, 0, 0, 0, alpha),
                (0, 1, 0, 0, alpha),
                (0, -1, 0, 0, alpha),
                (0, 0, 1, 0, alpha),
                (0, 0, -1, 0, alpha),
            ],
            1,
            DType::F64,
        )
        .unwrap()
    }

    #[test]
    fn constant_field_is_a_fixed_point() {
        let mut sim = Simulation::new(
            heat_kernel(0.1),
            GridSize::cube(12),
            TuningVector::new(4, 4, 4, 2, 2),
            2,
            |_, _, _| 3.5f64,
        );
        sim.step(5);
        assert_eq!(sim.steps(), 5);
        for z in 0..12 {
            for y in 0..12 {
                for x in 0..12 {
                    assert!((sim.state().get(x, y, z) - 3.5).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn game_of_life_blinker_oscillates_with_period_two() {
        let init = |x: i64, y: i64, _: i64| {
            if y == 3 && (2..=4).contains(&x) {
                1.0f32
            } else {
                0.0
            }
        };
        let mut sim = Simulation::new(
            GameOfLife::new(),
            GridSize::square(7),
            TuningVector::new(4, 4, 1, 0, 1),
            1,
            init,
        );
        let before: Vec<f32> = (0..7)
            .flat_map(|y| (0..7).map(move |x| (x, y)))
            .map(|(x, y)| sim.state().get(x, y, 0))
            .collect();
        sim.step(1);
        // After one step the blinker is vertical.
        assert_eq!(sim.state().get(3, 2, 0), 1.0);
        assert_eq!(sim.state().get(3, 4, 0), 1.0);
        assert_eq!(sim.state().get(2, 3, 0), 0.0);
        sim.step(1);
        let after: Vec<f32> = (0..7)
            .flat_map(|y| (0..7).map(move |x| (x, y)))
            .map(|(x, y)| sim.state().get(x, y, 0))
            .collect();
        assert_eq!(before, after, "blinker must return after two steps");
    }

    #[test]
    fn matches_a_manual_ping_pong_loop() {
        let k = heat_kernel(0.05);
        let init = |x: i64, y: i64, z: i64| ((x * 5 + y * 3 + z) % 7) as f64;
        let mut sim = Simulation::new(
            k.clone(),
            GridSize::cube(10),
            TuningVector::new(4, 4, 4, 3, 2),
            2,
            init,
        );
        sim.step(4);

        // Manual loop with a different tuning: same values.
        let radius = (1, 1, 1);
        let mut a: Grid<f64> = Grid::for_size(GridSize::cube(10), radius);
        a.fill_with(init);
        let mut b: Grid<f64> = Grid::for_size(GridSize::cube(10), radius);
        b.fill_with(init);
        let mut engine = Engine::new(1);
        for _ in 0..4 {
            engine.sweep(&k, &[&a], &mut b, &TuningVector::new(10, 10, 10, 0, 1));
            std::mem::swap(&mut a, &mut b);
        }
        assert_eq!(sim.state().max_abs_diff(&a), 0.0);
    }

    #[test]
    fn retuning_mid_run_preserves_semantics() {
        let k = heat_kernel(0.08);
        let init = |x: i64, _: i64, _: i64| (x % 3) as f64;
        let run = |switch: bool| {
            let mut sim = Simulation::new(
                k.clone(),
                GridSize::cube(8),
                TuningVector::new(2, 2, 2, 0, 1),
                2,
                init,
            );
            sim.step(2);
            if switch {
                sim.set_tuning(TuningVector::new(8, 8, 8, 4, 2));
            }
            sim.step(2);
            sim.state().clone()
        };
        assert_eq!(run(false).max_abs_diff(&run(true)), 0.0);
    }

    #[test]
    #[should_panic(expected = "single-buffer")]
    fn multi_buffer_kernels_are_rejected() {
        let k =
            WeightedKernel::new("two", vec![(0, 0, 0, 0, 1.0), (0, 0, 0, 1, 1.0)], 2, DType::F64)
                .unwrap();
        let _ = Simulation::new(
            k,
            GridSize::cube(8),
            TuningVector::new(4, 4, 4, 0, 1),
            1,
            |_, _, _| 0.0f64,
        );
    }
}
