//! Padded 3-D grids.
//!
//! A [`Grid`] owns a dense field of `nx * ny * nz` interior points
//! surrounded by a per-axis halo (ghost cells) wide enough for the stencil
//! radius, so kernels never branch on boundaries. Storage is x-contiguous
//! (`x` fastest, then `y`, then `z`), matching the innermost-loop direction
//! of the engine. Two-dimensional grids use `nz = 1` with a zero z halo.

/// A dense 3-D grid with halo.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid<T> {
    nx: usize,
    ny: usize,
    nz: usize,
    hx: usize,
    hy: usize,
    hz: usize,
    row: usize,   // padded x extent
    plane: usize, // padded x*y extent
    data: Vec<T>,
}

impl<T: Copy + Default> Grid<T> {
    /// Creates a zero-initialized grid with the given interior extents and
    /// per-axis halo widths.
    ///
    /// # Panics
    /// Panics when any interior extent is zero.
    pub fn new(nx: usize, ny: usize, nz: usize, hx: usize, hy: usize, hz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "grid extents must be positive");
        let row = nx + 2 * hx;
        let col = ny + 2 * hy;
        let dep = nz + 2 * hz;
        let plane = row * col;
        Grid { nx, ny, nz, hx, hy, hz, row, plane, data: vec![T::default(); plane * dep] }
    }

    /// A grid sized for `size` with a uniform halo of `radius` on the
    /// active axes (z gets no halo for planar grids).
    pub fn for_size(size: stencil_model::GridSize, radius: (u32, u32, u32)) -> Self {
        Grid::new(
            size.x as usize,
            size.y as usize,
            size.z as usize,
            radius.0 as usize,
            radius.1 as usize,
            if size.is_2d() { 0 } else { radius.2 as usize },
        )
    }

    /// Interior extents `(nx, ny, nz)`.
    pub fn extent(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Halo widths `(hx, hy, hz)`.
    pub fn halo(&self) -> (usize, usize, usize) {
        (self.hx, self.hy, self.hz)
    }

    /// Number of interior points.
    pub fn points(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Linear index of interior coordinate `(x, y, z)` (0-based, halos
    /// excluded; negative offsets reach into the halo via [`Self::at`]).
    #[inline]
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        (z + self.hz) * self.plane + (y + self.hy) * self.row + (x + self.hx)
    }

    /// Reads interior point `(x, y, z)` displaced by `(dx, dy, dz)`, which
    /// may reach into the halo.
    #[inline]
    pub fn at(&self, x: usize, y: usize, z: usize, dx: i32, dy: i32, dz: i32) -> T {
        let idx = self.offset_index(x, y, z, dx, dy, dz);
        self.data[idx]
    }

    /// Linear index of a displaced interior coordinate.
    #[inline]
    pub fn offset_index(&self, x: usize, y: usize, z: usize, dx: i32, dy: i32, dz: i32) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        debug_assert!(dx.unsigned_abs() as usize <= self.hx || (x as i64 + dx as i64) >= 0);
        let xx = (x + self.hx) as i64 + dx as i64;
        let yy = (y + self.hy) as i64 + dy as i64;
        let zz = (z + self.hz) as i64 + dz as i64;
        debug_assert!(xx >= 0 && (xx as usize) < self.row);
        zz as usize * self.plane + yy as usize * self.row + xx as usize
    }

    /// Writes interior point `(x, y, z)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: T) {
        let idx = self.index(x, y, z);
        self.data[idx] = v;
    }

    /// Reads interior point `(x, y, z)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> T {
        self.data[self.index(x, y, z)]
    }

    /// Fills interior *and halo* from a function of the (possibly halo)
    /// coordinates relative to the interior origin.
    pub fn fill_with(&mut self, mut f: impl FnMut(i64, i64, i64) -> T) {
        let (row, plane) = (self.row, self.plane);
        let (hx, hy, hz) = (self.hx as i64, self.hy as i64, self.hz as i64);
        let dep = self.nz + 2 * self.hz;
        let col = self.ny + 2 * self.hy;
        for zz in 0..dep {
            for yy in 0..col {
                for xx in 0..row {
                    self.data[zz * plane + yy * row + xx] =
                        f(xx as i64 - hx, yy as i64 - hy, zz as i64 - hz);
                }
            }
        }
    }

    /// Raw storage (including halo), mostly for the engine's unsafe
    /// shared-write path.
    pub fn raw(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw storage.
    pub fn raw_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Raw pointer to the storage (for disjoint-tile parallel writes).
    pub(crate) fn raw_ptr(&mut self) -> *mut T {
        self.data.as_mut_ptr()
    }

    /// Total padded length of the raw storage.
    pub fn raw_len(&self) -> usize {
        self.data.len()
    }
}

impl Grid<f32> {
    /// Maximum absolute difference over the interior of two equally-shaped
    /// grids.
    pub fn max_abs_diff(&self, other: &Grid<f32>) -> f32 {
        grid_diff(self, other, |a, b| (a - b).abs())
    }
}

impl Grid<f64> {
    /// Maximum absolute difference over the interior of two equally-shaped
    /// grids.
    pub fn max_abs_diff(&self, other: &Grid<f64>) -> f64 {
        grid_diff(self, other, |a, b| (a - b).abs())
    }
}

fn grid_diff<T: Copy + Default + PartialOrd>(a: &Grid<T>, b: &Grid<T>, d: impl Fn(T, T) -> T) -> T {
    assert_eq!(a.extent(), b.extent(), "grid extents differ");
    let mut worst = T::default();
    for z in 0..a.nz {
        for y in 0..a.ny {
            for x in 0..a.nx {
                let v = d(a.get(x, y, z), b.get(x, y, z));
                if v > worst {
                    worst = v;
                }
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_respects_halo() {
        let mut g: Grid<f64> = Grid::new(4, 3, 2, 1, 1, 1);
        g.set(0, 0, 0, 42.0);
        assert_eq!(g.get(0, 0, 0), 42.0);
        // The raw index of (0,0,0) is offset by one halo layer on each axis.
        let row = 4 + 2;
        let plane = row * (3 + 2);
        assert_eq!(g.index(0, 0, 0), plane + row + 1);
    }

    #[test]
    fn at_reaches_halo() {
        let mut g: Grid<f64> = Grid::new(2, 2, 1, 1, 1, 0);
        g.fill_with(|x, y, _| (10 * x + y) as f64);
        // Interior (0,0) displaced by (-1, 0): halo coordinate x = -1.
        assert_eq!(g.at(0, 0, 0, -1, 0, 0), -10.0);
        assert_eq!(g.at(1, 1, 0, 1, 1, 0), 22.0);
    }

    #[test]
    fn fill_with_sees_relative_coordinates() {
        let mut g: Grid<f32> = Grid::new(3, 3, 3, 2, 2, 2);
        g.fill_with(|x, y, z| (x + y + z) as f32);
        assert_eq!(g.get(0, 0, 0), 0.0);
        assert_eq!(g.get(2, 2, 2), 6.0);
        assert_eq!(g.at(0, 0, 0, -2, -2, -2), -6.0);
    }

    #[test]
    fn for_size_2d_has_no_z_halo() {
        let g: Grid<f32> = Grid::for_size(stencil_model::GridSize::square(8), (2, 2, 2));
        assert_eq!(g.extent(), (8, 8, 1));
        assert_eq!(g.halo(), (2, 2, 0));
    }

    #[test]
    fn points_and_raw_len() {
        let g: Grid<f64> = Grid::new(4, 4, 4, 1, 1, 1);
        assert_eq!(g.points(), 64);
        assert_eq!(g.raw_len(), 6 * 6 * 6);
    }

    #[test]
    fn max_abs_diff_detects_mismatch() {
        let mut a: Grid<f64> = Grid::new(2, 2, 1, 0, 0, 0);
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        a.set(1, 1, 0, 3.0);
        b.set(1, 1, 0, 1.0);
        assert_eq!(a.max_abs_diff(&b), 2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_panics() {
        let _: Grid<f32> = Grid::new(0, 1, 1, 0, 0, 0);
    }
}
