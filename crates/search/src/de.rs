//! Differential evolution (DE/rand/1/bin).
//!
//! Operates in real-coded coordinates (log2 on log-scaled dimensions), the
//! classic Storn-Price scheme: for each target vector, a mutant
//! `a + F (b - c)` of three distinct random individuals is binomially
//! crossed with the target; the trial replaces the target when not worse.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::objective::Objective;
use crate::runner::{SearchAlgorithm, SearchResult};
use crate::space::IntSpace;
use crate::trace::Evaluator;

/// Configuration of differential evolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DifferentialEvolution {
    /// Population size.
    pub pop_size: usize,
    /// Differential weight `F`.
    pub f: f64,
    /// Crossover rate `CR`.
    pub cr: f64,
}

impl Default for DifferentialEvolution {
    fn default() -> Self {
        DifferentialEvolution { pop_size: 24, f: 0.7, cr: 0.9 }
    }
}

impl SearchAlgorithm for DifferentialEvolution {
    fn name(&self) -> &'static str {
        "differential evolution"
    }

    fn run(
        &self,
        space: &IntSpace,
        objective: &mut dyn Objective,
        budget: usize,
        seed: u64,
    ) -> SearchResult {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ev = Evaluator::new(objective, budget);
        let dim = space.len();

        // Population in real coordinates, with costs.
        let mut pop: Vec<(Vec<f64>, f64)> = Vec::with_capacity(self.pop_size);
        for _ in 0..self.pop_size {
            let x = space.random_point(&mut rng);
            match ev.eval(&x) {
                Some(f) => pop.push((space.to_real(&x), f)),
                None => break,
            }
        }

        'outer: while !ev.exhausted() && pop.len() >= 4 {
            for target in 0..pop.len() {
                // Three distinct indices, all different from `target`.
                let mut pick = || loop {
                    let i = rng.random_range(0..pop.len());
                    if i != target {
                        return i;
                    }
                };
                let (a, b, c) = (pick(), pick(), pick());
                let jrand = rng.random_range(0..dim);
                let mut trial_real = pop[target].0.clone();
                for (d, t) in trial_real.iter_mut().enumerate() {
                    if d == jrand || rng.random::<f64>() < self.cr {
                        let v = pop[a].0[d] + self.f * (pop[b].0[d] - pop[c].0[d]);
                        let (lo, hi) = space.real_bounds(d);
                        *t = v.clamp(lo, hi);
                    }
                }
                let trial = space.from_real(&trial_real);
                let Some(f) = ev.eval(&trial) else { break 'outer };
                if f <= pop[target].1 {
                    pop[target] = (space.to_real(&trial), f);
                }
            }
        }

        let (trace, best) = ev.finish();
        let (best_x, best_f) = best.expect("at least one evaluation");
        SearchResult { best_x, best_f, trace }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::test_support::check_algorithm;

    #[test]
    fn conforms_to_algorithm_contract() {
        check_algorithm(&DifferentialEvolution::default());
    }

    #[test]
    fn selection_is_greedy_never_worse() {
        use crate::objective::FnObjective;
        let space = crate::runner::test_support::tuning_space();
        let mut obj = FnObjective(|x: &[i64]| {
            space.to_real(x).iter().map(|v| (v - 3.0) * (v - 3.0)).sum::<f64>()
        });
        let res = DifferentialEvolution::default().run(&space, &mut obj, 400, 5);
        // With greedy replacement the final best is near the optimum.
        assert!(res.best_f < 2.0, "best {}", res.best_f);
    }

    #[test]
    fn degenerate_population_with_budget_below_four() {
        use crate::objective::FnObjective;
        let space = crate::runner::test_support::tuning_space();
        let mut obj = FnObjective(|x: &[i64]| x[0] as f64);
        let res = DifferentialEvolution::default().run(&space, &mut obj, 3, 1);
        assert_eq!(res.trace.len(), 3);
    }
}
