//! Multi-armed-bandit ensemble search (OpenTuner-style).
//!
//! The paper compares against OpenTuner, which runs several search
//! techniques and uses a multi-armed bandit (Auer et al.'s UCB1) to
//! allocate evaluations to whichever technique currently works best. This
//! module implements that idea at the operator level: the arms are
//! candidate *generation operators* (GA-style crossover+mutation, DE-style
//! differential mutation, ES-style gaussian perturbation, and uniform
//! restart) acting on one shared elite population; each evaluation pulls
//! one arm, and arms are credited with a sliding-window success rate
//! (OpenTuner's AUC credit), combined with a UCB1 exploration bonus.

use std::collections::VecDeque;

use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::objective::Objective;
use crate::runner::{SearchAlgorithm, SearchResult};
use crate::space::{gaussian, IntSpace};
use crate::trace::Evaluator;

/// Configuration of the bandit ensemble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BanditSearch {
    /// Shared elite population size.
    pub pop_size: usize,
    /// Sliding credit window per arm (evaluations).
    pub window: usize,
    /// UCB exploration coefficient.
    pub exploration: f64,
    /// Mutation strength of the perturbation operators (log2 units).
    pub strength: f64,
}

impl Default for BanditSearch {
    fn default() -> Self {
        BanditSearch { pop_size: 24, window: 64, exploration: 1.0, strength: 1.0 }
    }
}

/// The candidate-generation operators (the bandit's arms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arm {
    CrossoverMutate,
    Differential,
    Gaussian,
    Restart,
}

const ARMS: [Arm; 4] = [Arm::CrossoverMutate, Arm::Differential, Arm::Gaussian, Arm::Restart];

/// Sliding-window success statistics of one arm.
#[derive(Debug, Default)]
struct ArmStats {
    pulls: u64,
    window: VecDeque<bool>,
    window_hits: usize,
}

impl ArmStats {
    fn record(&mut self, success: bool, window: usize) {
        self.pulls += 1;
        self.window.push_back(success);
        if success {
            self.window_hits += 1;
        }
        while self.window.len() > window {
            if self.window.pop_front() == Some(true) {
                self.window_hits -= 1;
            }
        }
    }

    fn credit(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.window_hits as f64 / self.window.len() as f64
        }
    }
}

impl BanditSearch {
    /// UCB1 arm choice: window credit + exploration bonus.
    fn choose_arm(&self, stats: &[ArmStats], total: u64) -> usize {
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (i, s) in stats.iter().enumerate() {
            let score = if s.pulls == 0 {
                f64::INFINITY // pull every arm once first
            } else {
                s.credit() + self.exploration * ((total.max(1) as f64).ln() / s.pulls as f64).sqrt()
            };
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }

    /// Generates one candidate with the given operator.
    fn generate(
        &self,
        arm: Arm,
        rng: &mut ChaCha8Rng,
        space: &IntSpace,
        pop: &[(Vec<i64>, f64)],
    ) -> Vec<i64> {
        let pick = |rng: &mut ChaCha8Rng| &pop.choose(rng).expect("non-empty population").0;
        match arm {
            Arm::CrossoverMutate => {
                let (a, b) = (pick(rng).clone(), pick(rng).clone());
                let mut child = a;
                for (d, (c, bv)) in child.iter_mut().zip(&b).enumerate() {
                    if rng.random::<f64>() < 0.5 {
                        *c = *bv;
                    }
                    if rng.random::<f64>() < 0.2 {
                        *c = space.mutate_gene(rng, d, *c, self.strength);
                    }
                }
                child
            }
            Arm::Differential => {
                let (a, b, c) =
                    (space.to_real(pick(rng)), space.to_real(pick(rng)), space.to_real(pick(rng)));
                let real: Vec<f64> = a
                    .iter()
                    .zip(b.iter().zip(&c))
                    .enumerate()
                    .map(|(d, (&av, (&bv, &cv)))| {
                        let (lo, hi) = space.real_bounds(d);
                        (av + 0.7 * (bv - cv)).clamp(lo, hi)
                    })
                    .collect();
                space.from_real(&real)
            }
            Arm::Gaussian => {
                let base = space.to_real(pick(rng));
                let real: Vec<f64> = base
                    .iter()
                    .enumerate()
                    .map(|(d, &v)| {
                        let (lo, hi) = space.real_bounds(d);
                        (v + self.strength * gaussian(rng)).clamp(lo, hi)
                    })
                    .collect();
                space.from_real(&real)
            }
            Arm::Restart => space.random_point(rng),
        }
    }
}

impl SearchAlgorithm for BanditSearch {
    fn name(&self) -> &'static str {
        "bandit ensemble"
    }

    fn run(
        &self,
        space: &IntSpace,
        objective: &mut dyn Objective,
        budget: usize,
        seed: u64,
    ) -> SearchResult {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ev = Evaluator::new(objective, budget);

        let mut pop: Vec<(Vec<i64>, f64)> = Vec::with_capacity(self.pop_size);
        for _ in 0..self.pop_size {
            let x = space.random_point(&mut rng);
            match ev.eval(&x) {
                Some(f) => pop.push((x, f)),
                None => break,
            }
        }

        let mut stats: Vec<ArmStats> = ARMS.iter().map(|_| ArmStats::default()).collect();
        let mut total_pulls = 0u64;
        while !ev.exhausted() && !pop.is_empty() {
            let arm_idx = self.choose_arm(&stats, total_pulls);
            let candidate = self.generate(ARMS[arm_idx], &mut rng, space, &pop);
            let Some(f) = ev.eval(&candidate) else { break };
            total_pulls += 1;
            // Success: the candidate improves on the population's worst
            // member (it earns a slot), OpenTuner's improvement credit.
            let worst = pop
                .iter()
                .enumerate()
                .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
                .map(|(i, _)| i)
                .expect("non-empty");
            let success = f < pop[worst].1;
            if success {
                pop[worst] = (candidate, f);
            }
            stats[arm_idx].record(success, self.window);
        }

        let (trace, best) = ev.finish();
        let (best_x, best_f) = best.expect("at least one evaluation");
        SearchResult { best_x, best_f, trace }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use crate::runner::test_support::{check_algorithm, ripple_objective, tuning_space};

    #[test]
    fn conforms_to_algorithm_contract() {
        check_algorithm(&BanditSearch::default());
    }

    #[test]
    fn all_arms_get_explored() {
        // With infinite initial scores every arm is pulled at least once;
        // verify through the public behaviour: the search works on a
        // problem where only local refinement helps.
        let space = tuning_space();
        let mut obj = FnObjective(ripple_objective(&space, vec![5.0, 4.0, 3.0, 4.0, 2.0]));
        let res = BanditSearch::default().run(&space, &mut obj, 400, 3);
        assert!(res.best_f < 3.0, "best {}", res.best_f);
    }

    #[test]
    fn bandit_is_competitive_with_single_engines() {
        let space = tuning_space();
        let target = vec![6.0, 5.0, 4.0, 2.0, 3.0];
        let mean = |algo: &dyn SearchAlgorithm| -> f64 {
            (0..5u64)
                .map(|s| {
                    let mut obj = FnObjective(ripple_objective(&space, target.clone()));
                    algo.run(&space, &mut obj, 250, s).best_f
                })
                .sum::<f64>()
                / 5.0
        };
        let bandit = mean(&BanditSearch::default());
        let random = mean(&crate::random::RandomSearch);
        assert!(bandit < random, "bandit {bandit} vs random {random}");
    }

    #[test]
    fn window_statistics_slide() {
        let mut s = ArmStats::default();
        for i in 0..10 {
            s.record(i < 5, 4); // first 5 successes, then failures
        }
        assert_eq!(s.pulls, 10);
        assert_eq!(s.window.len(), 4);
        assert_eq!(s.credit(), 0.0); // the window only holds failures now
        s.record(true, 4);
        assert!(s.credit() > 0.0);
    }

    #[test]
    fn ucb_prefers_unpulled_arms_first() {
        let b = BanditSearch::default();
        let mut stats: Vec<ArmStats> = ARMS.iter().map(|_| ArmStats::default()).collect();
        stats[0].record(true, 8);
        stats[0].pulls = 5;
        // Arms 1..3 are unpulled -> chosen before the credited arm 0.
        let chosen = b.choose_arm(&stats, 5);
        assert_ne!(chosen, 0);
    }
}
