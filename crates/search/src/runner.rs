//! The common interface of all search engines.

use crate::objective::Objective;
use crate::space::IntSpace;
use crate::trace::EvalTrace;

/// Outcome of one budgeted search run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// Best point found.
    pub best_x: Vec<i64>,
    /// Its cost.
    pub best_f: f64,
    /// Per-evaluation record (Fig. 5 material).
    pub trace: EvalTrace,
}

/// A budgeted, seeded, single-objective minimizer over an [`IntSpace`].
pub trait SearchAlgorithm {
    /// Short display name (used in figures and CSV headers).
    fn name(&self) -> &'static str;

    /// Runs the search for exactly `budget` evaluations (fewer only if the
    /// algorithm converges to a fixed point and stops resampling — none of
    /// the provided engines do).
    fn run(
        &self,
        space: &IntSpace,
        objective: &mut dyn Objective,
        budget: usize,
        seed: u64,
    ) -> SearchResult;
}

/// The paper's four search baselines with their default parameters, in the
/// order of Fig. 4's legend.
pub fn paper_baselines() -> Vec<Box<dyn SearchAlgorithm>> {
    vec![
        Box::new(crate::ga::GenerationalGa::default()),
        Box::new(crate::de::DifferentialEvolution::default()),
        Box::new(crate::es::EvolutionStrategy::default()),
        Box::new(crate::ssga::SteadyStateGa::default()),
    ]
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::objective::FnObjective;

    /// A smooth multimodal test function in the tuning-like space: distance
    /// to a target in real (log) coordinates plus a sinusoidal ripple.
    pub fn ripple_objective(space: &IntSpace, target: Vec<f64>) -> impl FnMut(&[i64]) -> f64 + '_ {
        move |x: &[i64]| {
            let r = space.to_real(x);
            let d2: f64 = r.iter().zip(&target).map(|(a, b)| (a - b) * (a - b)).sum();
            let ripple: f64 = r.iter().map(|v| (v * 2.7).sin() * 0.05).sum();
            d2 + ripple + 1.0
        }
    }

    pub fn tuning_space() -> IntSpace {
        IntSpace::new(
            vec![(2, 1024), (2, 1024), (2, 1024), (0, 8), (1, 256)],
            vec![true, true, true, false, true],
        )
    }

    /// Shared conformance checks for any algorithm.
    pub fn check_algorithm(algo: &dyn SearchAlgorithm) {
        let space = tuning_space();
        let target = vec![5.0, 4.0, 3.0, 4.0, 2.0];

        // 1. Budget is respected exactly.
        let mut obj = FnObjective(ripple_objective(&space, target.clone()));
        let res = algo.run(&space, &mut obj, 300, 42);
        assert_eq!(res.trace.len(), 300, "{} must spend the budget", algo.name());

        // 2. Result is in bounds and consistent with the trace.
        assert!(space.contains(&res.best_x), "{}", algo.name());
        assert_eq!(Some(res.best_f), res.trace.final_best());

        // 3. Deterministic for a fixed seed.
        let mut obj2 = FnObjective(ripple_objective(&space, target.clone()));
        let res2 = algo.run(&space, &mut obj2, 300, 42);
        assert_eq!(res.best_x, res2.best_x, "{}", algo.name());
        assert_eq!(res.trace.values(), res2.trace.values(), "{}", algo.name());

        // 4. Different seeds explore differently.
        let mut obj3 = FnObjective(ripple_objective(&space, target.clone()));
        let res3 = algo.run(&space, &mut obj3, 300, 43);
        assert_ne!(res.trace.values(), res3.trace.values(), "{}", algo.name());

        // 5. Finds a reasonable optimum: the global minimum is ~1.0 (ripple
        // aside); a typical random point sits above ~20. Structured engines
        // get much closer (asserted in their own tests); even random search
        // must land well below the prior mean within 300 evaluations.
        assert!(res.best_f < 8.0, "{}: best {} too far from optimum", algo.name(), res.best_f);

        // 6. Improves over the first evaluations.
        let early = res.trace.best_after(8).unwrap();
        assert!(res.best_f <= early);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baselines_has_four_named_engines() {
        let algos = paper_baselines();
        let names: Vec<_> = algos.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["genetic algorithm", "differential evolution", "evolutive strategy", "sGA"]
        );
    }
}
