//! Integer box search spaces with per-dimension scaling.

use rand::Rng;

/// An axis-aligned integer box, each dimension with inclusive bounds and a
/// flag selecting log-scale (power-of-two-ish) or linear treatment for
/// sampling, mutation and real-coded recombination.
#[derive(Debug, Clone, PartialEq)]
pub struct IntSpace {
    bounds: Vec<(i64, i64)>,
    log_scaled: Vec<bool>,
}

impl IntSpace {
    /// Creates a space.
    ///
    /// # Panics
    /// Panics when the two vectors disagree in length, a bound is inverted,
    /// or a log-scaled dimension has a non-positive lower bound.
    pub fn new(bounds: Vec<(i64, i64)>, log_scaled: Vec<bool>) -> Self {
        assert_eq!(bounds.len(), log_scaled.len(), "bounds/log flags length mismatch");
        for (d, &(lo, hi)) in bounds.iter().enumerate() {
            assert!(lo <= hi, "dimension {d}: inverted bounds [{lo}, {hi}]");
            assert!(!log_scaled[d] || lo > 0, "dimension {d}: log scale requires positive bounds");
        }
        IntSpace { bounds, log_scaled }
    }

    /// A linear space (no log-scaled dimensions).
    pub fn linear(bounds: Vec<(i64, i64)>) -> Self {
        let n = bounds.len();
        Self::new(bounds, vec![false; n])
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// True for a zero-dimensional space.
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// Inclusive bounds of dimension `d`.
    pub fn bounds(&self, d: usize) -> (i64, i64) {
        self.bounds[d]
    }

    /// Whether dimension `d` is log-scaled.
    pub fn is_log(&self, d: usize) -> bool {
        self.log_scaled[d]
    }

    /// Whether `x` lies inside the box.
    pub fn contains(&self, x: &[i64]) -> bool {
        x.len() == self.len()
            && x.iter().zip(&self.bounds).all(|(&v, &(lo, hi))| (lo..=hi).contains(&v))
    }

    /// Clamps `x` into the box in place.
    pub fn clamp(&self, x: &mut [i64]) {
        assert_eq!(x.len(), self.len());
        for (v, &(lo, hi)) in x.iter_mut().zip(&self.bounds) {
            *v = (*v).clamp(lo, hi);
        }
    }

    /// Samples a uniform random point; log dimensions sample log-uniformly.
    pub fn random_point<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<i64> {
        (0..self.len()).map(|d| self.random_gene(rng, d)).collect()
    }

    /// Samples one gene.
    pub fn random_gene<R: Rng + ?Sized>(&self, rng: &mut R, d: usize) -> i64 {
        let (lo, hi) = self.bounds[d];
        if lo == hi {
            return lo;
        }
        if self.log_scaled[d] {
            let (llo, lhi) = ((lo as f64).ln(), (hi as f64).ln());
            let v = rng.random_range(llo..=lhi).exp().round() as i64;
            v.clamp(lo, hi)
        } else {
            rng.random_range(lo..=hi)
        }
    }

    /// Gaussian mutation of one gene with `strength` expressed in log2
    /// units for log dimensions and in absolute units (scaled to the range)
    /// for linear ones. Always returns an in-bounds value.
    pub fn mutate_gene<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        d: usize,
        value: i64,
        strength: f64,
    ) -> i64 {
        let (lo, hi) = self.bounds[d];
        if lo == hi {
            return lo;
        }
        let z: f64 = gaussian(rng);
        let mutated = if self.log_scaled[d] {
            let lv = (value.max(1) as f64).log2();
            (lv + z * strength).exp2().round() as i64
        } else {
            let span = (hi - lo) as f64;
            value + (z * strength * (span / 8.0).max(1.0)).round() as i64
        };
        mutated.clamp(lo, hi)
    }

    /// Maps a point to real coordinates (log2 for log dims).
    pub fn to_real(&self, x: &[i64]) -> Vec<f64> {
        assert_eq!(x.len(), self.len());
        x.iter()
            .enumerate()
            .map(|(d, &v)| if self.log_scaled[d] { (v.max(1) as f64).log2() } else { v as f64 })
            .collect()
    }

    /// Maps real coordinates back to a clamped integer point.
    pub fn from_real(&self, v: &[f64]) -> Vec<i64> {
        assert_eq!(v.len(), self.len());
        let mut x: Vec<i64> = v
            .iter()
            .enumerate()
            .map(
                |(d, &r)| {
                    if self.log_scaled[d] {
                        r.exp2().round() as i64
                    } else {
                        r.round() as i64
                    }
                },
            )
            .collect();
        self.clamp(&mut x);
        x
    }

    /// Real-coordinate bounds of dimension `d` (log2 for log dims).
    pub fn real_bounds(&self, d: usize) -> (f64, f64) {
        let (lo, hi) = self.bounds[d];
        if self.log_scaled[d] {
            ((lo as f64).log2(), (hi as f64).log2())
        } else {
            (lo as f64, hi as f64)
        }
    }
}

/// A standard normal draw (Box-Muller, consuming two uniforms).
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tuning_like_space() -> IntSpace {
        IntSpace::new(
            vec![(2, 1024), (2, 1024), (2, 1024), (0, 8), (1, 256)],
            vec![true, true, true, false, true],
        )
    }

    #[test]
    fn construction_validates() {
        let s = tuning_like_space();
        assert_eq!(s.len(), 5);
        assert!(s.is_log(0));
        assert!(!s.is_log(3));
    }

    #[test]
    #[should_panic(expected = "inverted bounds")]
    fn inverted_bounds_panic() {
        IntSpace::linear(vec![(5, 2)]);
    }

    #[test]
    #[should_panic(expected = "log scale requires positive")]
    fn log_with_zero_lower_bound_panics() {
        IntSpace::new(vec![(0, 8)], vec![true]);
    }

    #[test]
    fn random_points_in_bounds() {
        let s = tuning_like_space();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..500 {
            let p = s.random_point(&mut rng);
            assert!(s.contains(&p), "{p:?}");
        }
    }

    #[test]
    fn mutation_stays_in_bounds() {
        let s = tuning_like_space();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..200 {
            let p = s.random_point(&mut rng);
            for (d, &v) in p.iter().enumerate() {
                let m = s.mutate_gene(&mut rng, d, v, 2.0);
                let (lo, hi) = s.bounds(d);
                assert!((lo..=hi).contains(&m));
            }
        }
    }

    #[test]
    fn mutation_actually_moves() {
        let s = tuning_like_space();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let moved = (0..100).filter(|_| s.mutate_gene(&mut rng, 0, 32, 1.0) != 32).count();
        assert!(moved > 50, "only {moved} mutations moved");
    }

    #[test]
    fn real_roundtrip() {
        let s = tuning_like_space();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..200 {
            let p = s.random_point(&mut rng);
            assert_eq!(s.from_real(&s.to_real(&p)), p);
        }
    }

    #[test]
    fn from_real_clamps() {
        let s = IntSpace::new(vec![(2, 16)], vec![true]);
        assert_eq!(s.from_real(&[10.0]), vec![16]); // 2^10 clamps to 16
        assert_eq!(s.from_real(&[-3.0]), vec![2]);
    }

    #[test]
    fn clamp_and_contains() {
        let s = IntSpace::linear(vec![(0, 10), (5, 5)]);
        let mut x = vec![20, 7];
        assert!(!s.contains(&x));
        s.clamp(&mut x);
        assert_eq!(x, vec![10, 5]);
        assert!(s.contains(&x));
    }

    #[test]
    fn degenerate_dimension_is_fixed() {
        let s = IntSpace::linear(vec![(3, 3)]);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(s.random_gene(&mut rng, 0), 3);
        assert_eq!(s.mutate_gene(&mut rng, 0, 3, 10.0), 3);
    }

    #[test]
    fn log_sampling_covers_decades() {
        let s = IntSpace::new(vec![(2, 1024)], vec![true]);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let (mut lo, mut hi) = (0, 0);
        for _ in 0..1000 {
            let g = s.random_gene(&mut rng, 0);
            if g <= 8 {
                lo += 1;
            }
            if g >= 256 {
                hi += 1;
            }
        }
        assert!(lo > 100, "low end {lo}");
        assert!(hi > 100, "high end {hi}");
    }

    #[test]
    fn real_bounds_match_scale() {
        let s = tuning_like_space();
        assert_eq!(s.real_bounds(0), (1.0, 10.0));
        assert_eq!(s.real_bounds(3), (0.0, 8.0));
    }
}
