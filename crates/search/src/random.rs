//! Uniform random search — the sanity baseline every structured search must
//! beat.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::objective::Objective;
use crate::runner::{SearchAlgorithm, SearchResult};
use crate::space::IntSpace;
use crate::trace::Evaluator;

/// Samples independent uniform points for the whole budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomSearch;

impl SearchAlgorithm for RandomSearch {
    fn name(&self) -> &'static str {
        "random search"
    }

    fn run(
        &self,
        space: &IntSpace,
        objective: &mut dyn Objective,
        budget: usize,
        seed: u64,
    ) -> SearchResult {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ev = Evaluator::new(objective, budget);
        while !ev.exhausted() {
            let x = space.random_point(&mut rng);
            if ev.eval(&x).is_none() {
                break;
            }
        }
        let (trace, best) = ev.finish();
        let (best_x, best_f) = best.expect("at least one evaluation");
        SearchResult { best_x, best_f, trace }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use crate::runner::test_support::{check_algorithm, ripple_objective, tuning_space};

    #[test]
    fn conforms_to_algorithm_contract() {
        check_algorithm(&RandomSearch);
    }

    #[test]
    fn structured_searches_beat_random_on_average() {
        let space = tuning_space();
        let target = vec![5.0, 4.0, 3.0, 4.0, 2.0];
        let budget = 200;
        let mean_best = |algo: &dyn SearchAlgorithm| -> f64 {
            (0..5)
                .map(|s| {
                    let mut obj = FnObjective(ripple_objective(&space, target.clone()));
                    algo.run(&space, &mut obj, budget, s).best_f
                })
                .sum::<f64>()
                / 5.0
        };
        let random = mean_best(&RandomSearch);
        let ga = mean_best(&crate::ga::GenerationalGa::default());
        let de = mean_best(&crate::de::DifferentialEvolution::default());
        assert!(ga < random, "GA {ga} vs random {random}");
        assert!(de < random, "DE {de} vs random {random}");
    }
}
