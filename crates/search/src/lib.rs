//! Iterative-compilation search engines (paper Section VI-A).
//!
//! The paper compares its ordinal-regression tuner against four stochastic
//! search techniques, each run for a fixed budget of 1024 evaluations:
//!
//! * a **generational genetic algorithm** ([`ga::GenerationalGa`]) — also
//!   the source of the paper's base configuration for speedups,
//! * a **steady-state genetic algorithm** ([`ssga::SteadyStateGa`], "sGA"),
//! * **differential evolution** ([`de::DifferentialEvolution`]),
//! * an **evolution strategy** ([`es::EvolutionStrategy`]).
//!
//! All algorithms are generic over an integer box space ([`space::IntSpace`])
//! with per-dimension log-scale annotations (blocking and chunk sizes move
//! in powers of two, the unroll factor linearly), minimize a black-box
//! [`objective::Objective`] (simulated or measured runtime), respect an
//! exact evaluation budget, record best-so-far traces per evaluation
//! ([`trace::EvalTrace`], the Fig. 5 curves) and are fully deterministic
//! given a seed.

pub mod bandit;
pub mod de;
pub mod es;
pub mod ga;
pub mod objective;
pub mod random;
pub mod runner;
pub mod space;
pub mod ssga;
pub mod trace;

pub use bandit::BanditSearch;
pub use de::DifferentialEvolution;
pub use es::EvolutionStrategy;
pub use ga::GenerationalGa;
pub use objective::{CachingObjective, FnObjective, Objective};
pub use random::RandomSearch;
pub use runner::{paper_baselines, SearchAlgorithm, SearchResult};
pub use space::IntSpace;
pub use trace::{EvalTrace, Evaluator};
