//! Budgeted evaluation with best-so-far recording.

use crate::objective::Objective;

/// The record of one search run: the cost of every evaluation in order plus
/// the running best. `best_so_far()[i]` is the best cost after `i + 1`
/// evaluations — exactly the series plotted in the paper's Fig. 5.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvalTrace {
    values: Vec<f64>,
    best: Vec<f64>,
}

impl EvalTrace {
    /// Records one evaluation.
    pub fn record(&mut self, value: f64) {
        let best = match self.best.last() {
            Some(&b) => b.min(value),
            None => value,
        };
        self.values.push(value);
        self.best.push(best);
    }

    /// Number of recorded evaluations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw cost of each evaluation in order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Running best cost after each evaluation.
    pub fn best_so_far(&self) -> &[f64] {
        &self.best
    }

    /// Best cost after at most `evals` evaluations (`None` before the first).
    pub fn best_after(&self, evals: usize) -> Option<f64> {
        if evals == 0 || self.best.is_empty() {
            return None;
        }
        Some(self.best[evals.min(self.best.len()) - 1])
    }

    /// Final best cost.
    pub fn final_best(&self) -> Option<f64> {
        self.best.last().copied()
    }
}

/// Wraps an objective with an exact evaluation budget and a trace.
///
/// `eval` returns `None` once the budget is exhausted; algorithms unwind
/// when they see it, guaranteeing that no run consumes more than `budget`
/// true evaluations.
pub struct Evaluator<'a> {
    objective: &'a mut dyn Objective,
    budget: usize,
    trace: EvalTrace,
    best_x: Option<(Vec<i64>, f64)>,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator with the given budget.
    pub fn new(objective: &'a mut dyn Objective, budget: usize) -> Self {
        Evaluator { objective, budget, trace: EvalTrace::default(), best_x: None }
    }

    /// Evaluates `x`, or returns `None` when the budget is spent.
    pub fn eval(&mut self, x: &[i64]) -> Option<f64> {
        if self.trace.len() >= self.budget {
            return None;
        }
        let v = self.objective.eval(x);
        self.trace.record(v);
        if self.best_x.as_ref().is_none_or(|(_, b)| v < *b) {
            self.best_x = Some((x.to_vec(), v));
        }
        Some(v)
    }

    /// Remaining evaluations.
    pub fn remaining(&self) -> usize {
        self.budget - self.trace.len()
    }

    /// Whether the budget is spent.
    pub fn exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Finishes the run, returning the trace and the incumbent.
    pub fn finish(self) -> (EvalTrace, Option<(Vec<i64>, f64)>) {
        (self.trace, self.best_x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;

    #[test]
    fn best_so_far_is_monotone() {
        let mut t = EvalTrace::default();
        for v in [5.0, 7.0, 3.0, 4.0, 1.0] {
            t.record(v);
        }
        assert_eq!(t.values(), &[5.0, 7.0, 3.0, 4.0, 1.0]);
        assert_eq!(t.best_so_far(), &[5.0, 5.0, 3.0, 3.0, 1.0]);
        assert_eq!(t.final_best(), Some(1.0));
        assert_eq!(t.best_after(2), Some(5.0));
        assert_eq!(t.best_after(3), Some(3.0));
        assert_eq!(t.best_after(100), Some(1.0));
        assert_eq!(t.best_after(0), None);
    }

    #[test]
    fn evaluator_enforces_budget_exactly() {
        let mut calls = 0usize;
        let mut obj = FnObjective(|_: &[i64]| {
            calls += 1;
            1.0
        });
        let mut ev = Evaluator::new(&mut obj, 3);
        assert!(ev.eval(&[0]).is_some());
        assert!(ev.eval(&[1]).is_some());
        assert_eq!(ev.remaining(), 1);
        assert!(ev.eval(&[2]).is_some());
        assert!(ev.exhausted());
        assert!(ev.eval(&[3]).is_none());
        assert!(ev.eval(&[4]).is_none());
        let (trace, _) = ev.finish();
        assert_eq!(trace.len(), 3);
        assert_eq!(calls, 3);
    }

    #[test]
    fn evaluator_tracks_incumbent() {
        let mut obj = FnObjective(|x: &[i64]| x[0] as f64);
        let mut ev = Evaluator::new(&mut obj, 10);
        ev.eval(&[5]);
        ev.eval(&[2]);
        ev.eval(&[8]);
        let (_, best) = ev.finish();
        let (x, f) = best.unwrap();
        assert_eq!(x, vec![2]);
        assert_eq!(f, 2.0);
    }

    #[test]
    fn empty_trace() {
        let t = EvalTrace::default();
        assert!(t.is_empty());
        assert_eq!(t.final_best(), None);
    }
}
