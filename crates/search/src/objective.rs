//! Black-box objectives.

use std::collections::HashMap;

/// A black-box cost function over integer points; smaller is better.
///
/// In the autotuning setting one evaluation means compiling and running a
/// stencil variant — the expensive operation whose count the paper budgets.
pub trait Objective {
    /// Evaluates the cost at `x`.
    fn eval(&mut self, x: &[i64]) -> f64;
}

/// Wraps a closure as an [`Objective`].
pub struct FnObjective<F: FnMut(&[i64]) -> f64>(pub F);

impl<F: FnMut(&[i64]) -> f64> Objective for FnObjective<F> {
    fn eval(&mut self, x: &[i64]) -> f64 {
        (self.0)(x)
    }
}

/// Memoizing wrapper: repeated points return the cached value without
/// consulting the inner objective.
///
/// The paper's search baselines do *not* memoize (every evaluation costs a
/// compile-and-run), so the experiments use bare objectives; the cache is
/// provided for users who want cheap re-evaluation semantics.
pub struct CachingObjective<O: Objective> {
    inner: O,
    cache: HashMap<Vec<i64>, f64>,
    hits: u64,
    misses: u64,
}

impl<O: Objective> CachingObjective<O> {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: O) -> Self {
        CachingObjective { inner, cache: HashMap::new(), hits: 0, misses: 0 }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (true evaluations) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Consumes the wrapper, returning the inner objective.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: Objective> Objective for CachingObjective<O> {
    fn eval(&mut self, x: &[i64]) -> f64 {
        if let Some(&v) = self.cache.get(x) {
            self.hits += 1;
            return v;
        }
        let v = self.inner.eval(x);
        self.cache.insert(x.to_vec(), v);
        self.misses += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_objective_delegates() {
        let mut obj = FnObjective(|x: &[i64]| x.iter().map(|&v| v as f64).sum());
        assert_eq!(obj.eval(&[1, 2, 3]), 6.0);
    }

    #[test]
    fn caching_avoids_reevaluation() {
        let mut calls = 0u32;
        {
            let inner = FnObjective(|x: &[i64]| {
                calls += 1;
                x[0] as f64
            });
            let mut cached = CachingObjective::new(inner);
            assert_eq!(cached.eval(&[5]), 5.0);
            assert_eq!(cached.eval(&[5]), 5.0);
            assert_eq!(cached.eval(&[6]), 6.0);
            assert_eq!(cached.hits(), 1);
            assert_eq!(cached.misses(), 2);
        }
        assert_eq!(calls, 2);
    }
}
