//! (mu + lambda) evolution strategy with self-adaptive step sizes
//! ("evolutive strategy" in the paper's figures).
//!
//! Each individual carries its own per-dimension step sizes, mutated with
//! the standard log-normal rule before being applied; selection keeps the
//! best `mu` of parents and offspring together (plus-selection).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::objective::Objective;
use crate::runner::{SearchAlgorithm, SearchResult};
use crate::space::{gaussian, IntSpace};
use crate::trace::Evaluator;

/// Configuration of the evolution strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvolutionStrategy {
    /// Number of parents kept after selection.
    pub mu: usize,
    /// Number of offspring per generation.
    pub lambda: usize,
    /// Initial step size in real coordinates (log2 units on log dims).
    pub sigma_init: f64,
    /// Lower bound on step sizes (keeps search alive).
    pub sigma_min: f64,
}

impl Default for EvolutionStrategy {
    fn default() -> Self {
        EvolutionStrategy { mu: 8, lambda: 16, sigma_init: 1.5, sigma_min: 0.05 }
    }
}

#[derive(Debug, Clone)]
struct EsIndividual {
    real: Vec<f64>,
    sigma: Vec<f64>,
    f: f64,
}

impl SearchAlgorithm for EvolutionStrategy {
    fn name(&self) -> &'static str {
        "evolutive strategy"
    }

    fn run(
        &self,
        space: &IntSpace,
        objective: &mut dyn Objective,
        budget: usize,
        seed: u64,
    ) -> SearchResult {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ev = Evaluator::new(objective, budget);
        let dim = space.len();
        // Standard self-adaptation constants.
        let tau_global = 1.0 / (2.0 * dim as f64).sqrt();
        let tau_local = 1.0 / (2.0 * (dim as f64).sqrt()).sqrt();

        let mut parents: Vec<EsIndividual> = Vec::with_capacity(self.mu);
        for _ in 0..self.mu {
            let x = space.random_point(&mut rng);
            match ev.eval(&x) {
                Some(f) => parents.push(EsIndividual {
                    real: space.to_real(&x),
                    sigma: vec![self.sigma_init; dim],
                    f,
                }),
                None => break,
            }
        }

        'outer: while !ev.exhausted() && !parents.is_empty() {
            let mut offspring: Vec<EsIndividual> = Vec::with_capacity(self.lambda);
            for _ in 0..self.lambda {
                let p = &parents[rng.random_range(0..parents.len())];
                // Log-normal step-size self-adaptation.
                let g = gaussian(&mut rng);
                let mut sigma = p.sigma.clone();
                let mut real = p.real.clone();
                for d in 0..dim {
                    sigma[d] = (sigma[d] * (tau_global * g + tau_local * gaussian(&mut rng)).exp())
                        .max(self.sigma_min);
                    let (lo, hi) = space.real_bounds(d);
                    real[d] = (real[d] + sigma[d] * gaussian(&mut rng)).clamp(lo, hi);
                }
                let x = space.from_real(&real);
                let Some(f) = ev.eval(&x) else {
                    parents.extend(offspring);
                    break 'outer;
                };
                offspring.push(EsIndividual { real: space.to_real(&x), sigma, f });
            }
            // Plus-selection: best mu of parents and offspring.
            parents.extend(offspring);
            parents.sort_by(|a, b| a.f.total_cmp(&b.f));
            parents.truncate(self.mu);
        }

        let (trace, best) = ev.finish();
        let (best_x, best_f) = best.expect("at least one evaluation");
        SearchResult { best_x, best_f, trace }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::test_support::check_algorithm;

    #[test]
    fn conforms_to_algorithm_contract() {
        check_algorithm(&EvolutionStrategy::default());
    }

    #[test]
    fn plus_selection_never_loses_the_best() {
        use crate::objective::FnObjective;
        let space = crate::runner::test_support::tuning_space();
        let mut obj = FnObjective(|x: &[i64]| space.to_real(x).iter().map(|v| v * v).sum::<f64>());
        let res = EvolutionStrategy::default().run(&space, &mut obj, 200, 17);
        let bests = res.trace.best_so_far();
        for w in bests.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn converges_on_sphere() {
        use crate::objective::FnObjective;
        let space = crate::runner::test_support::tuning_space();
        let target = [6.0, 6.0, 4.0, 4.0, 4.0];
        let mut obj = FnObjective(|x: &[i64]| {
            space.to_real(x).iter().zip(&target).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
        });
        let res = EvolutionStrategy::default().run(&space, &mut obj, 600, 23);
        assert!(res.best_f < 1.0, "best {}", res.best_f);
    }
}
