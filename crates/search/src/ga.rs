//! Generational genetic algorithm.
//!
//! Tournament selection, uniform crossover, per-gene Gaussian mutation
//! (log-space for block/chunk dimensions) and elitism. This is the paper's
//! most stable baseline; its 1024-evaluation result is also the *base
//! configuration* against which Fig. 4 speedups are computed.

use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::objective::Objective;
use crate::runner::{SearchAlgorithm, SearchResult};
use crate::space::IntSpace;
use crate::trace::Evaluator;

/// Configuration of the generational GA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationalGa {
    /// Population size.
    pub pop_size: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Probability of applying crossover to a couple.
    pub crossover_prob: f64,
    /// Per-gene mutation probability.
    pub mutation_prob: f64,
    /// Mutation strength (log2 units on log dimensions).
    pub mutation_strength: f64,
    /// Number of elites copied unchanged into the next generation.
    pub elitism: usize,
}

impl Default for GenerationalGa {
    fn default() -> Self {
        GenerationalGa {
            pop_size: 32,
            tournament: 2,
            crossover_prob: 0.9,
            mutation_prob: 0.15,
            mutation_strength: 1.0,
            elitism: 2,
        }
    }
}

/// One scored individual.
#[derive(Debug, Clone)]
struct Individual {
    x: Vec<i64>,
    f: f64,
}

impl GenerationalGa {
    fn select<'a, R: Rng>(&self, rng: &mut R, pop: &'a [Individual]) -> &'a Individual {
        let mut best: Option<&Individual> = None;
        for _ in 0..self.tournament.max(1) {
            let cand = pop.choose(rng).expect("non-empty population");
            if best.is_none_or(|b| cand.f < b.f) {
                best = Some(cand);
            }
        }
        best.expect("tournament picked someone")
    }

    fn crossover<R: Rng>(&self, rng: &mut R, a: &[i64], b: &[i64]) -> (Vec<i64>, Vec<i64>) {
        let mut c = a.to_vec();
        let mut d = b.to_vec();
        if rng.random::<f64>() < self.crossover_prob {
            for i in 0..a.len() {
                if rng.random::<f64>() < 0.5 {
                    std::mem::swap(&mut c[i], &mut d[i]);
                }
            }
        }
        (c, d)
    }

    fn mutate<R: Rng>(&self, rng: &mut R, space: &IntSpace, x: &mut [i64]) {
        for (d, v) in x.iter_mut().enumerate() {
            if rng.random::<f64>() < self.mutation_prob {
                *v = space.mutate_gene(rng, d, *v, self.mutation_strength);
            }
        }
    }
}

impl GenerationalGa {
    /// Like [`SearchAlgorithm::run`], but the first `seeds.len()` initial
    /// individuals are taken from `seeds` (clamped into the space) instead
    /// of being drawn at random. This is how the hybrid tuner injects the
    /// ordinal-regression model's top-ranked configurations into the search
    /// (the paper's future-work direction).
    pub fn run_with_seeds(
        &self,
        space: &IntSpace,
        objective: &mut dyn Objective,
        budget: usize,
        seed: u64,
        seeds: &[Vec<i64>],
    ) -> SearchResult {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ev = Evaluator::new(objective, budget);

        // Initial population: injected seeds first, random fill afterwards.
        let mut pop: Vec<Individual> = Vec::with_capacity(self.pop_size);
        'init: for i in 0..self.pop_size {
            let x = match seeds.get(i) {
                Some(s) => {
                    let mut s = s.clone();
                    space.clamp(&mut s);
                    s
                }
                None => space.random_point(&mut rng),
            };
            match ev.eval(&x) {
                Some(f) => pop.push(Individual { x, f }),
                None => break 'init,
            }
        }

        while !ev.exhausted() && !pop.is_empty() {
            // Elites survive unchanged (no re-evaluation).
            let mut next: Vec<Individual> = {
                let mut sorted: Vec<&Individual> = pop.iter().collect();
                sorted.sort_by(|a, b| a.f.total_cmp(&b.f));
                sorted.into_iter().take(self.elitism).cloned().collect()
            };
            'breed: while next.len() < self.pop_size {
                let pa = self.select(&mut rng, &pop).x.clone();
                let pb = self.select(&mut rng, &pop).x.clone();
                let (mut ca, mut cb) = self.crossover(&mut rng, &pa, &pb);
                self.mutate(&mut rng, space, &mut ca);
                self.mutate(&mut rng, space, &mut cb);
                for child in [ca, cb] {
                    if next.len() >= self.pop_size {
                        break;
                    }
                    match ev.eval(&child) {
                        Some(f) => next.push(Individual { x: child, f }),
                        None => break 'breed,
                    }
                }
            }
            pop = next;
        }

        let (trace, best) = ev.finish();
        let (best_x, best_f) = best.expect("budget was at least one evaluation");
        SearchResult { best_x, best_f, trace }
    }
}

impl SearchAlgorithm for GenerationalGa {
    fn name(&self) -> &'static str {
        "genetic algorithm"
    }

    fn run(
        &self,
        space: &IntSpace,
        objective: &mut dyn Objective,
        budget: usize,
        seed: u64,
    ) -> SearchResult {
        self.run_with_seeds(space, objective, budget, seed, &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::test_support::check_algorithm;

    #[test]
    fn conforms_to_algorithm_contract() {
        check_algorithm(&GenerationalGa::default());
    }

    #[test]
    fn tiny_budget_smaller_than_population_works() {
        use crate::objective::FnObjective;
        let space = crate::runner::test_support::tuning_space();
        let mut obj = FnObjective(|x: &[i64]| x[0] as f64);
        let res = GenerationalGa::default().run(&space, &mut obj, 5, 1);
        assert_eq!(res.trace.len(), 5);
    }

    #[test]
    fn elites_preserve_the_incumbent_across_generations() {
        use crate::objective::FnObjective;
        let space = crate::runner::test_support::tuning_space();
        let scorer = crate::runner::test_support::tuning_space();
        let mut obj = FnObjective(|x: &[i64]| scorer.to_real(x).iter().sum());
        let res = GenerationalGa::default().run(&space, &mut obj, 200, 9);
        // Best-so-far can only improve; final best equals trace minimum.
        let min = res.trace.values().iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(res.best_f, min);
    }

    #[test]
    fn seeded_population_evaluates_seeds_first() {
        use crate::objective::FnObjective;
        let space = crate::runner::test_support::tuning_space();
        let seeds = vec![vec![4, 4, 4, 4, 4], vec![8, 8, 8, 0, 1]];
        let mut seen: Vec<Vec<i64>> = Vec::new();
        {
            let mut obj = FnObjective(|x: &[i64]| {
                seen.push(x.to_vec());
                x[0] as f64
            });
            GenerationalGa::default().run_with_seeds(&space, &mut obj, 40, 2, &seeds);
        }
        assert_eq!(seen[0], seeds[0]);
        assert_eq!(seen[1], seeds[1]);
    }

    #[test]
    fn out_of_bounds_seeds_are_clamped() {
        use crate::objective::FnObjective;
        let space = crate::runner::test_support::tuning_space();
        let seeds = vec![vec![100_000, -5, 3, 99, 0]];
        let mut first: Option<Vec<i64>> = None;
        {
            let mut obj = FnObjective(|x: &[i64]| {
                if first.is_none() {
                    first = Some(x.to_vec());
                }
                1.0
            });
            GenerationalGa::default().run_with_seeds(&space, &mut obj, 10, 2, &seeds);
        }
        assert!(space.contains(&first.unwrap()));
    }
}
