//! Steady-state genetic algorithm ("sGA" in the paper's figures).
//!
//! Unlike the generational GA, only one offspring is produced per step; it
//! replaces the current worst individual when it improves on it. This gives
//! faster incorporation of good genes at the cost of diversity.

use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::objective::Objective;
use crate::runner::{SearchAlgorithm, SearchResult};
use crate::space::IntSpace;
use crate::trace::Evaluator;

/// Configuration of the steady-state GA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteadyStateGa {
    /// Population size.
    pub pop_size: usize,
    /// Tournament size.
    pub tournament: usize,
    /// Probability of applying crossover.
    pub crossover_prob: f64,
    /// Per-gene mutation probability.
    pub mutation_prob: f64,
    /// Mutation strength (log2 units on log dimensions).
    pub mutation_strength: f64,
}

impl Default for SteadyStateGa {
    fn default() -> Self {
        SteadyStateGa {
            pop_size: 32,
            tournament: 2,
            crossover_prob: 0.9,
            mutation_prob: 0.2,
            mutation_strength: 1.0,
        }
    }
}

impl SearchAlgorithm for SteadyStateGa {
    fn name(&self) -> &'static str {
        "sGA"
    }

    fn run(
        &self,
        space: &IntSpace,
        objective: &mut dyn Objective,
        budget: usize,
        seed: u64,
    ) -> SearchResult {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ev = Evaluator::new(objective, budget);

        let mut pop: Vec<(Vec<i64>, f64)> = Vec::with_capacity(self.pop_size);
        for _ in 0..self.pop_size {
            let x = space.random_point(&mut rng);
            match ev.eval(&x) {
                Some(f) => pop.push((x, f)),
                None => break,
            }
        }

        while !ev.exhausted() && pop.len() >= 2 {
            // Tournament-select two parents.
            let parent = |rng: &mut ChaCha8Rng, pop: &[(Vec<i64>, f64)]| -> Vec<i64> {
                let mut best: Option<&(Vec<i64>, f64)> = None;
                for _ in 0..self.tournament.max(1) {
                    let cand = pop.choose(rng).expect("non-empty");
                    if best.is_none_or(|b| cand.1 < b.1) {
                        best = Some(cand);
                    }
                }
                best.expect("chosen").0.clone()
            };
            let pa = parent(&mut rng, &pop);
            let pb = parent(&mut rng, &pop);
            // Uniform crossover into one child.
            let mut child: Vec<i64> = pa.clone();
            if rng.random::<f64>() < self.crossover_prob {
                for (c, &b) in child.iter_mut().zip(&pb) {
                    if rng.random::<f64>() < 0.5 {
                        *c = b;
                    }
                }
            }
            for (d, v) in child.iter_mut().enumerate() {
                if rng.random::<f64>() < self.mutation_prob {
                    *v = space.mutate_gene(&mut rng, d, *v, self.mutation_strength);
                }
            }
            let Some(f) = ev.eval(&child) else { break };
            // Replace the worst individual when the child improves on it.
            let worst = pop
                .iter()
                .enumerate()
                .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
                .map(|(i, _)| i)
                .expect("non-empty");
            if f < pop[worst].1 {
                pop[worst] = (child, f);
            }
        }

        let (trace, best) = ev.finish();
        let (best_x, best_f) = best.expect("at least one evaluation");
        SearchResult { best_x, best_f, trace }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::test_support::check_algorithm;

    #[test]
    fn conforms_to_algorithm_contract() {
        check_algorithm(&SteadyStateGa::default());
    }

    #[test]
    fn population_only_improves() {
        use crate::objective::FnObjective;
        let space = crate::runner::test_support::tuning_space();
        // Track the population's best over time via the trace: steady-state
        // replacement never worsens the best.
        let mut obj = FnObjective(|x: &[i64]| x.iter().map(|&v| v as f64).sum());
        let res = SteadyStateGa::default().run(&space, &mut obj, 150, 3);
        let bests = res.trace.best_so_far();
        for w in bests.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }
}
