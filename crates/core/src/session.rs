//! Reusable tuning sessions: the batched, parallel ranking hot path.
//!
//! [`StandaloneTuner::tune`](crate::tuner::StandaloneTuner::tune) answers a
//! single query; a [`TuningSession`] is the API for serving *many* queries
//! back-to-back — the deployment shape the paper's sub-millisecond
//! "Regression" latency is about. A session owns
//!
//! * the cached predefined candidate sets (materialized once per process,
//!   see [`predefined_candidates`]),
//! * per-thread scratch buffers for feature rows and the score vector
//!   (steady-state queries perform **zero** per-candidate heap
//!   allocations), and
//! * an optional [`SharedPool`] handle (the same pool the execution engine
//!   uses) that fans contiguous candidate chunks across worker threads.
//!
//! Scoring is batched: the per-instance query block is encoded once
//! ([`stencil_model::QueryFeatures`]), each candidate only completes the
//! tuning-dependent suffix into a lane-padded
//! [`stencil_model::CandidateMatrix`] block, and blocks are scored with
//! [`ranksvm::LinearRanker::score_rows_into`] — which dispatches to the
//! explicit AVX2 kernel when the host supports it. Sequential and parallel
//! sessions produce bit-for-bit identical scores: every row's dot product
//! is computed independently (and the SIMD kernel reproduces the scalar
//! reduction exactly), so neither threading nor dispatch reorders floating
//! point reductions.
//!
//! Beyond single queries, a session pipelines whole *batches* of instances
//! through one scoring pass ([`TuningSession::tune_batch`],
//! [`TuningSession::top_k_batch`]): every queued instance contributes its
//! candidate rows to one global row range that is chunked across the pool,
//! so encode/score work is amortized across queries — the substrate the
//! `sorl-serve` micro-batching service builds on.

use std::sync::OnceLock;
use std::time::Instant;

use stencil_exec::{SharedPool, ThreadPool};
use stencil_model::{
    CandidateMatrix, ModelError, QueryFeatures, StencilInstance, TuningSpace, TuningVector,
};

use crate::ranker::{validate_candidates, StencilRanker};
use crate::tuner::{TopK, TunerDecision};

/// Rows encoded per `score_rows_into` call: big enough to amortize the
/// call, small enough that a block's feature matrix stays cache-resident.
const BLOCK_ROWS: usize = 64;

static SET_2D: OnceLock<Vec<TuningVector>> = OnceLock::new();
static SET_3D: OnceLock<Vec<TuningVector>> = OnceLock::new();

/// The paper's predefined candidate set for a dimensionality (1600 vectors
/// for 2-D, 8640 for 3-D), materialized once per process and shared by
/// every tuner and session thereafter.
///
/// # Panics
/// Panics when `dim` is not 2 or 3.
pub fn predefined_candidates(dim: u8) -> &'static [TuningVector] {
    let cell = match dim {
        2 => &SET_2D,
        3 => &SET_3D,
        _ => panic!("stencil dimensionality must be 2 or 3, got {dim}"),
    };
    cell.get_or_init(|| TuningSpace::for_dim(dim).expect("dim checked above").predefined_set())
}

/// Per-worker scratch: one lane-padded feature block, reused across
/// queries so steady-state scoring allocates nothing.
#[derive(Debug)]
struct WorkerScratch {
    matrix: CandidateMatrix,
}

/// One instance's contribution to a multi-query scoring pass: its
/// precomputed query block, its candidate slice, and where its scores start
/// in the session's global score buffer.
struct Segment<'a> {
    qf: QueryFeatures,
    candidates: &'a [TuningVector],
    offset: usize,
}

impl Segment<'_> {
    fn end(&self) -> usize {
        self.offset + self.candidates.len()
    }
}

/// A raw pointer that may cross thread boundaries. Soundness rests on each
/// parallel chunk touching a disjoint score range and its own scratch slot
/// (chunk index == scratch index), mirroring the engine's tile writes.
struct SendPtr<T>(*mut T);
// Manual impls: the derive would demand `T: Copy`, but the wrapper only
// copies the pointer.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// A long-lived tuning server around a trained [`StencilRanker`].
///
/// Use a session when tuning is on a hot path (many instances, repeated
/// queries); use [`StandaloneTuner`](crate::tuner::StandaloneTuner) for
/// one-shot convenience. Methods take `&mut self` because the session
/// reuses its scratch buffers between queries.
///
/// ```no_run
/// use sorl::pipeline::{PipelineConfig, TrainingPipeline};
/// use sorl::session::TuningSession;
/// use stencil_model::{GridSize, StencilInstance, StencilKernel};
///
/// let out = TrainingPipeline::new(PipelineConfig::default()).run();
/// let mut session = TuningSession::parallel(out.ranker, 8);
/// for size in [64, 96, 128, 192] {
///     let q = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(size)).unwrap();
///     let d = session.tune(&q);
///     println!("{q}: {} in {:.3} ms", d.tuning, d.seconds * 1e3);
/// }
/// ```
#[derive(Debug)]
pub struct TuningSession {
    ranker: StencilRanker,
    pool: Option<SharedPool>,
    scratch: Vec<WorkerScratch>,
    scores: Vec<f64>,
}

impl TuningSession {
    /// A sequential session (batched scoring, no worker threads).
    pub fn new(ranker: StencilRanker) -> Self {
        Self::build(ranker, None)
    }

    /// A session fanning candidate chunks over `threads` threads
    /// (`threads <= 1` degenerates to the sequential session).
    pub fn parallel(ranker: StencilRanker, threads: usize) -> Self {
        let pool = (threads > 1).then(|| SharedPool::new(threads));
        Self::build(ranker, pool)
    }

    /// A session taking ownership of an existing pool.
    pub fn with_pool(ranker: StencilRanker, pool: ThreadPool) -> Self {
        Self::build(ranker, Some(pool.into()))
    }

    /// A session on a shared pool handle — e.g. the execution engine's
    /// pool (`Engine::shared_pool`) between measurement phases, or the one
    /// pool a serving process fans every subsystem across.
    pub fn with_shared_pool(ranker: StencilRanker, pool: SharedPool) -> Self {
        Self::build(ranker, Some(pool))
    }

    fn build(ranker: StencilRanker, pool: Option<SharedPool>) -> Self {
        let threads = pool.as_ref().map_or(1, SharedPool::threads);
        let dim = ranker.encoder().dim();
        let scratch = (0..threads)
            .map(|_| WorkerScratch { matrix: CandidateMatrix::with_row_capacity(dim, BLOCK_ROWS) })
            .collect();
        TuningSession { ranker, pool, scratch, scores: Vec::new() }
    }

    /// The underlying ranker.
    pub fn ranker(&self) -> &StencilRanker {
        &self.ranker
    }

    /// Threads used per query (1 for a sequential session).
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(1, SharedPool::threads)
    }

    /// A cloneable handle to the session's pool, for sharing with other
    /// subsystems (`None` for a sequential session).
    pub fn shared_pool(&self) -> Option<SharedPool> {
        self.pool.clone()
    }

    /// Releases the session, handing back its pool handle for reuse.
    pub fn into_pool(self) -> Option<SharedPool> {
        self.pool
    }

    /// Tunes `instance` over the cached predefined set for its
    /// dimensionality — the paper's standalone-tuner query, served with
    /// zero steady-state allocation. The cached set is admissible by
    /// construction, so this skips the per-query batch validation.
    pub fn tune(&mut self, instance: &StencilInstance) -> TunerDecision {
        let candidates = predefined_candidates(instance.dim());
        let t0 = Instant::now();
        self.score_candidates(instance, candidates, true)
            .expect("predefined set is admissible by construction");
        let best = best_index(&self.scores);
        TunerDecision {
            tuning: candidates[best],
            score: self.scores[best],
            candidates: candidates.len(),
            seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// Tunes `instance` over an explicit candidate list.
    ///
    /// Unlike `StandaloneTuner::tune_over` this does not panic on bad
    /// input: an empty list or an inadmissible candidate is reported as an
    /// error (naming the offending candidate index).
    pub fn tune_over(
        &mut self,
        instance: &StencilInstance,
        candidates: &[TuningVector],
    ) -> Result<TunerDecision, ModelError> {
        if candidates.is_empty() {
            return Err(ModelError::OutOfRange {
                what: "candidate count",
                value: 0,
                lo: 1,
                hi: i64::MAX,
            });
        }
        let t0 = Instant::now();
        self.score_candidates(instance, candidates, false)?;
        let best = best_index(&self.scores);
        Ok(TunerDecision {
            tuning: candidates[best],
            score: self.scores[best],
            candidates: candidates.len(),
            seconds: t0.elapsed().as_secs_f64(),
        })
    }

    /// Tunes a whole batch of instances through **one** pipelined scoring
    /// pass over the cached predefined sets: every instance's query block
    /// is encoded once, all candidate rows from all instances form one
    /// global row range, and that range is chunked across the pool (a chunk
    /// may span several instances). Decisions are bit-for-bit identical to
    /// a [`tune`](Self::tune) loop — each row's score is an independent dot
    /// product, so neither batching nor chunk boundaries change any value.
    ///
    /// The reported `seconds` on every decision is the wall time of the
    /// whole batch pass (the per-query cost is amortized and not separable).
    pub fn tune_batch(&mut self, instances: &[StencilInstance]) -> Vec<TunerDecision> {
        let t0 = Instant::now();
        let refs: Vec<&StencilInstance> = instances.iter().collect();
        let offsets = self.score_predefined_batch(&refs);
        let seconds = t0.elapsed().as_secs_f64();
        instances
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let seg = &self.scores[offsets[i]..offsets[i + 1]];
                let best = best_index(seg);
                TunerDecision {
                    tuning: predefined_candidates(instances[i].dim())[best],
                    score: seg[best],
                    candidates: seg.len(),
                    seconds,
                }
            })
            .collect()
    }

    /// The `k` best predefined configurations for `instance`, best-first
    /// with scores, selected via partial select over the session's score
    /// buffer (no full sort, no allocation beyond the result).
    pub fn top_k_predefined(&mut self, instance: &StencilInstance, k: usize) -> TopK {
        let candidates = predefined_candidates(instance.dim());
        let t0 = Instant::now();
        self.score_candidates(instance, candidates, true)
            .expect("predefined set is admissible by construction");
        let entries = ranksvm::top_k_desc(&self.scores, k)
            .into_iter()
            .map(|i| (candidates[i], self.scores[i]))
            .collect();
        TopK { entries, candidates: candidates.len(), seconds: t0.elapsed().as_secs_f64() }
    }

    /// Top-k over an explicit candidate list (validated, like
    /// [`tune_over`](Self::tune_over)).
    pub fn top_k(
        &mut self,
        instance: &StencilInstance,
        candidates: &[TuningVector],
        k: usize,
    ) -> Result<TopK, ModelError> {
        let t0 = Instant::now();
        self.score_candidates(instance, candidates, false)?;
        let entries = ranksvm::top_k_desc(&self.scores, k)
            .into_iter()
            .map(|i| (candidates[i], self.scores[i]))
            .collect();
        Ok(TopK { entries, candidates: candidates.len(), seconds: t0.elapsed().as_secs_f64() })
    }

    /// Top-k answers for a whole batch of `(instance, k)` queries through
    /// one pipelined scoring pass over the cached predefined sets — the
    /// workhorse of the `sorl-serve` micro-batching service. Entry `i` of
    /// the result answers query `i`; each is exactly what
    /// [`top_k_predefined`](Self::top_k_predefined) would return for that
    /// query (scores bit-for-bit, `seconds` = whole-batch wall time).
    pub fn top_k_batch(&mut self, queries: &[(&StencilInstance, usize)]) -> Vec<TopK> {
        let t0 = Instant::now();
        let refs: Vec<&StencilInstance> = queries.iter().map(|&(q, _)| q).collect();
        let offsets = self.score_predefined_batch(&refs);
        let seconds = t0.elapsed().as_secs_f64();
        queries
            .iter()
            .enumerate()
            .map(|(i, &(q, k))| {
                let seg = &self.scores[offsets[i]..offsets[i + 1]];
                let candidates = predefined_candidates(q.dim());
                let entries = ranksvm::top_k_desc(seg, k)
                    .into_iter()
                    .map(|j| (candidates[j], seg[j]))
                    .collect();
                TopK { entries, candidates: seg.len(), seconds }
            })
            .collect()
    }

    /// Scores `candidates` for `instance`, returning a borrow of the
    /// session's internal score buffer (valid until the next query).
    pub fn scores(
        &mut self,
        instance: &StencilInstance,
        candidates: &[TuningVector],
    ) -> Result<&[f64], ModelError> {
        self.score_candidates(instance, candidates, false)?;
        Ok(&self.scores)
    }

    /// Full best-first ranking of `candidates` (allocates the index vector;
    /// scoring itself still runs on the zero-alloc batch path).
    pub fn rank(
        &mut self,
        instance: &StencilInstance,
        candidates: &[TuningVector],
    ) -> Result<Vec<usize>, ModelError> {
        self.score_candidates(instance, candidates, false)?;
        Ok(ranksvm::argsort_desc(&self.scores))
    }

    /// The batched scoring core for one instance: validates the batch up
    /// front (skipped for `prevalidated` callers such as the cached
    /// predefined sets, which are admissible by construction), then scores
    /// through the segment pipeline.
    fn score_candidates(
        &mut self,
        instance: &StencilInstance,
        candidates: &[TuningVector],
        prevalidated: bool,
    ) -> Result<(), ModelError> {
        let qf = self.ranker.encoder().query_features(instance);
        if !prevalidated {
            validate_candidates(&qf, candidates)?;
        }
        self.score_segments(&[Segment { qf, candidates, offset: 0 }], candidates.len());
        Ok(())
    }

    /// Encodes every instance's query block and scores all rows of the
    /// whole batch (each instance over the cached predefined set for its
    /// dimensionality) in one pass. Returns the per-instance score offsets
    /// (`offsets[i]..offsets[i + 1]` is instance `i`'s segment).
    fn score_predefined_batch(&mut self, instances: &[&StencilInstance]) -> Vec<usize> {
        let encoder = self.ranker.encoder();
        let mut segments = Vec::with_capacity(instances.len());
        let mut offsets = Vec::with_capacity(instances.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for &q in instances {
            let candidates = predefined_candidates(q.dim());
            segments.push(Segment { qf: encoder.query_features(q), candidates, offset: total });
            total += candidates.len();
            offsets.push(total);
        }
        self.score_segments(&segments, total);
        offsets
    }

    /// The scoring engine: resizes the score buffer to `total` rows and
    /// fills it, fanning contiguous row chunks across the pool when one is
    /// attached. A chunk may straddle segment boundaries; each in-chunk
    /// sub-range is encoded with its segment's query block.
    fn score_segments(&mut self, segments: &[Segment<'_>], total: usize) {
        debug_assert_eq!(segments.last().map_or(0, Segment::end), total);
        self.scores.clear();
        self.scores.resize(total, 0.0);
        if total == 0 {
            return;
        }

        let n_chunks = match &self.pool {
            Some(pool) => pool.threads().min(total).max(1),
            None => 1,
        };
        // Even contiguous partition: chunk ci covers [lo(ci), lo(ci + 1)).
        let chunk_lo = |ci: usize| ci * total / n_chunks;

        if n_chunks == 1 {
            let scratch = &mut self.scratch[0];
            score_chunk(&self.ranker, segments, 0, total, scratch, &mut self.scores);
            return;
        }

        let ranker = &self.ranker;
        let scores_ptr = SendPtr(self.scores.as_mut_ptr());
        let scratch_ptr = SendPtr(self.scratch.as_mut_ptr());
        let pool = self.pool.as_ref().expect("n_chunks > 1 implies a pool");
        pool.run(n_chunks, &|ci| {
            // Mention the whole wrapper bindings so edition-2021 precise
            // capture grabs the (Sync) `SendPtr`s, not their raw-pointer
            // fields.
            let (scores_base, scratch_base) = {
                let (s, w) = (scores_ptr, scratch_ptr);
                (s.0, w.0)
            };
            let (lo, hi) = (chunk_lo(ci), chunk_lo(ci + 1));
            // SAFETY: chunk ranges are disjoint and in-bounds, and each
            // chunk index runs exactly once, so the score sub-slice and the
            // per-chunk scratch slot (ci < n_chunks <= scratch.len()) are
            // accessed exclusively for the duration of `run`.
            let (scores, scratch) = unsafe {
                (
                    std::slice::from_raw_parts_mut(scores_base.add(lo), hi - lo),
                    &mut *scratch_base.add(ci),
                )
            };
            score_chunk(ranker, segments, lo, hi, scratch, scores);
        });
    }
}

/// Index of the highest score in a freshly filled score slice (first
/// occurrence wins ties, matching `argsort_desc`'s tie-break).
fn best_index(scores: &[f64]) -> usize {
    let mut best = 0usize;
    for i in 1..scores.len() {
        if scores[i] > scores[best] {
            best = i;
        }
    }
    best
}

/// Scores the global row range `[lo, hi)` into `scores` (whose slot 0
/// corresponds to global row `lo`), walking the segments it intersects.
fn score_chunk(
    ranker: &StencilRanker,
    segments: &[Segment<'_>],
    lo: usize,
    hi: usize,
    scratch: &mut WorkerScratch,
    scores: &mut [f64],
) {
    let mut si = segments.partition_point(|s| s.end() <= lo);
    let mut row = lo;
    while row < hi {
        let seg = &segments[si];
        let stop = seg.end().min(hi);
        let (a, b) = (row - seg.offset, stop - seg.offset);
        score_range(
            ranker,
            &seg.qf,
            &seg.candidates[a..b],
            scratch,
            &mut scores[row - lo..stop - lo],
        );
        row = stop;
        si += 1;
    }
}

/// Encodes and scores one contiguous candidate range in blocks of
/// [`BLOCK_ROWS`], reusing the worker's packed candidate matrix. The
/// encoder writes each row straight into the matrix buffer; the kernel
/// reads the padded rows at the matrix stride (pad cells are never part of
/// a dot product, so scores match the unpadded layout bit-for-bit).
fn score_range(
    ranker: &StencilRanker,
    qf: &QueryFeatures,
    candidates: &[TuningVector],
    scratch: &mut WorkerScratch,
    scores: &mut [f64],
) {
    let encoder = ranker.encoder();
    let mut start = 0;
    while start < candidates.len() {
        let n = (candidates.len() - start).min(BLOCK_ROWS);
        scratch.matrix.clear();
        for &t in &candidates[start..start + n] {
            scratch.matrix.push_row_with(|out| encoder.append_candidate(qf, t, out));
        }
        ranker.model().score_rows_into(
            scratch.matrix.rows_data(),
            scratch.matrix.stride(),
            &mut scores[start..start + n],
        );
        start += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksvm::LinearRanker;
    use stencil_model::{FeatureEncoder, GridSize, StencilKernel};

    /// Deterministic pseudo-random weights (xorshift), dense over every
    /// feature so batch/legacy discrepancies cannot hide behind zeros.
    fn dense_ranker() -> StencilRanker {
        let encoder = FeatureEncoder::default_interaction();
        let mut state = 0x9e3779b97f4a7c15u64;
        let w: Vec<f64> = (0..encoder.dim())
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state as f64 / u64::MAX as f64) - 0.5
            })
            .collect();
        StencilRanker::new(encoder, LinearRanker::from_weights(w))
    }

    fn lap128() -> StencilInstance {
        StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(128)).unwrap()
    }

    fn blur1024() -> StencilInstance {
        StencilInstance::new(StencilKernel::blur(), GridSize::square(1024)).unwrap()
    }

    #[test]
    fn predefined_candidates_are_cached_and_sized() {
        assert_eq!(predefined_candidates(2).len(), 1600);
        assert_eq!(predefined_candidates(3).len(), 8640);
        // Same allocation on repeated calls.
        assert!(std::ptr::eq(predefined_candidates(3), predefined_candidates(3)));
    }

    #[test]
    #[should_panic(expected = "must be 2 or 3")]
    fn predefined_candidates_rejects_bad_dim() {
        predefined_candidates(4);
    }

    #[test]
    fn session_matches_ranker_scores_exactly() {
        let ranker = dense_ranker();
        let mut seq = TuningSession::new(ranker.clone());
        let mut par = TuningSession::parallel(ranker.clone(), 4);
        for q in [lap128(), blur1024()] {
            let cands = predefined_candidates(q.dim());
            let reference = ranker.scores(&q, cands).unwrap();
            assert_eq!(seq.scores(&q, cands).unwrap(), &reference[..]);
            assert_eq!(par.scores(&q, cands).unwrap(), &reference[..]);
        }
    }

    #[test]
    fn session_tune_agrees_with_ranker_rank() {
        let ranker = dense_ranker();
        let mut session = TuningSession::parallel(ranker.clone(), 3);
        let q = lap128();
        let d = session.tune(&q);
        assert_eq!(d.candidates, 8640);
        let order = ranker.rank(&q, predefined_candidates(3)).unwrap();
        assert_eq!(d.tuning, predefined_candidates(3)[order[0]]);
        assert_eq!(session.rank(&q, predefined_candidates(3)).unwrap(), order);
    }

    #[test]
    fn tune_over_reports_errors_instead_of_panicking() {
        let mut session = TuningSession::new(dense_ranker());
        let q = blur1024();
        assert!(session.tune_over(&q, &[]).is_err());
        let bad = [TuningVector::new(8, 8, 1, 0, 1), TuningVector::new(8, 8, 8, 0, 1)];
        let err = session.tune_over(&q, &bad).unwrap_err();
        assert!(err.to_string().contains("#1"), "{err}");
    }

    #[test]
    fn tune_batch_matches_per_instance_tune_loop() {
        let ranker = dense_ranker();
        for threads in [1usize, 4] {
            let mut batch_session = TuningSession::parallel(ranker.clone(), threads);
            let mut loop_session = TuningSession::new(ranker.clone());
            // Mixed dimensionalities, repeated instances, varied sizes: the
            // batch pipeline must agree with the loop on every decision.
            let instances = vec![
                lap128(),
                blur1024(),
                StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(96)).unwrap(),
                lap128(),
                StencilInstance::new(StencilKernel::blur(), GridSize::square(640)).unwrap(),
            ];
            let batch = batch_session.tune_batch(&instances);
            assert_eq!(batch.len(), instances.len());
            for (q, d) in instances.iter().zip(&batch) {
                let reference = loop_session.tune(q);
                assert_eq!(d.tuning, reference.tuning, "{q} (threads = {threads})");
                assert_eq!(d.score, reference.score, "{q} (threads = {threads})");
                assert_eq!(d.candidates, reference.candidates, "{q}");
            }
        }
    }

    #[test]
    fn tune_batch_of_nothing_is_empty() {
        let mut session = TuningSession::new(dense_ranker());
        assert!(session.tune_batch(&[]).is_empty());
        assert!(session.top_k_batch(&[]).is_empty());
    }

    #[test]
    fn top_k_predefined_is_the_rank_prefix() {
        let ranker = dense_ranker();
        let mut session = TuningSession::parallel(ranker.clone(), 3);
        for q in [lap128(), blur1024()] {
            let set = predefined_candidates(q.dim());
            let order = ranker.rank(&q, set).unwrap();
            let scores = ranker.scores(&q, set).unwrap();
            for k in [0usize, 1, 5, 64] {
                let top = session.top_k_predefined(&q, k);
                assert_eq!(top.len(), k.min(set.len()));
                assert_eq!(top.candidates, set.len());
                for (r, &(t, s)) in top.entries.iter().enumerate() {
                    assert_eq!(t, set[order[r]], "{q} rank {r}");
                    assert_eq!(s, scores[order[r]], "{q} rank {r}");
                }
            }
        }
    }

    #[test]
    fn top_k_batch_matches_individual_top_k() {
        let ranker = dense_ranker();
        let mut batch_session = TuningSession::parallel(ranker.clone(), 4);
        let mut loop_session = TuningSession::new(ranker);
        let (a, b) = (lap128(), blur1024());
        let queries = [(&a, 3usize), (&b, 1), (&a, 10), (&b, 0)];
        let batch = batch_session.top_k_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (&(q, k), got) in queries.iter().zip(&batch) {
            let want = loop_session.top_k_predefined(q, k);
            assert_eq!(got.entries, want.entries, "{q} k = {k}");
            assert_eq!(got.candidates, want.candidates, "{q} k = {k}");
        }
    }

    #[test]
    fn top_k_over_explicit_candidates_validates() {
        let mut session = TuningSession::new(dense_ranker());
        let q = blur1024();
        let bad = [TuningVector::new(8, 8, 8, 0, 1)];
        assert!(session.top_k(&q, &bad, 1).is_err());
        let good = [TuningVector::new(8, 8, 1, 0, 1), TuningVector::new(16, 16, 1, 2, 2)];
        let top = session.top_k(&q, &good, 5).unwrap();
        assert_eq!(top.len(), 2, "k is capped at the candidate count");
        assert!(top.entries[0].1 >= top.entries[1].1);
    }

    #[test]
    fn sessions_can_share_one_pool_handle() {
        let ranker = dense_ranker();
        let a = TuningSession::parallel(ranker.clone(), 4);
        let pool = a.shared_pool().expect("parallel session has a pool");
        let mut b = TuningSession::with_shared_pool(ranker.clone(), pool.clone());
        assert_eq!(b.threads(), 4);
        // Both sessions, one pool: scores still match the sequential path.
        let mut seq = TuningSession::new(ranker);
        let q = lap128();
        assert_eq!(b.tune(&q).tuning, seq.tune(&q).tuning);
        drop(a);
        assert_eq!(b.tune(&q).score, seq.tune(&q).score);
    }

    #[test]
    fn one_pool_serves_many_epochs() {
        // ThreadPool stress from the ranking side: a single pool must
        // survive many query epochs (mixed dimensionalities and candidate
        // counts) and keep producing results identical to sequential.
        let ranker = dense_ranker();
        let mut seq = TuningSession::new(ranker.clone());
        let mut par = TuningSession::parallel(ranker, 4);
        assert_eq!(par.threads(), 4);
        for epoch in 0..40 {
            let q = if epoch % 2 == 0 { lap128() } else { blur1024() };
            let cands = predefined_candidates(q.dim());
            // Vary the batch size so chunk boundaries move around.
            let n = cands.len() - (epoch * 37) % 1000;
            let a = par.tune_over(&q, &cands[..n]).unwrap();
            let b = seq.tune_over(&q, &cands[..n]).unwrap();
            assert_eq!(a.tuning, b.tuning, "epoch {epoch}");
            assert_eq!(a.score, b.score, "epoch {epoch}");
        }
        // The pool can be handed back for reuse.
        assert!(par.into_pool().is_some());
        assert!(seq.into_pool().is_none());
    }
}
