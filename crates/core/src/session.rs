//! Reusable tuning sessions: the batched, parallel ranking hot path.
//!
//! [`StandaloneTuner::tune`](crate::tuner::StandaloneTuner::tune) answers a
//! single query; a [`TuningSession`] is the API for serving *many* queries
//! back-to-back — the deployment shape the paper's sub-millisecond
//! "Regression" latency is about. A session owns
//!
//! * the cached predefined candidate sets (materialized once per process,
//!   see [`predefined_candidates`]),
//! * per-thread scratch buffers for feature rows and the score vector
//!   (steady-state queries perform **zero** per-candidate heap
//!   allocations), and
//! * an optional persistent [`ThreadPool`] (the same pool type the
//!   execution engine uses) that fans contiguous candidate chunks across
//!   worker threads.
//!
//! Scoring is batched: the per-instance query block is encoded once
//! ([`stencil_model::QueryFeatures`]), each candidate only completes the
//! tuning-dependent suffix into a row-major block, and blocks are scored
//! with [`ranksvm::LinearRanker::score_batch_into`]. Sequential and
//! parallel sessions produce bit-for-bit identical scores: every row's dot
//! product is computed independently, so threading never reorders floating
//! point reductions.

use std::sync::OnceLock;
use std::time::Instant;

use stencil_exec::ThreadPool;
use stencil_model::{ModelError, QueryFeatures, StencilInstance, TuningSpace, TuningVector};

use crate::ranker::{validate_candidates, StencilRanker};
use crate::tuner::TunerDecision;

/// Rows encoded per `score_batch_into` call: big enough to amortize the
/// call, small enough that a block's feature matrix stays cache-resident.
const BLOCK_ROWS: usize = 64;

static SET_2D: OnceLock<Vec<TuningVector>> = OnceLock::new();
static SET_3D: OnceLock<Vec<TuningVector>> = OnceLock::new();

/// The paper's predefined candidate set for a dimensionality (1600 vectors
/// for 2-D, 8640 for 3-D), materialized once per process and shared by
/// every tuner and session thereafter.
///
/// # Panics
/// Panics when `dim` is not 2 or 3.
pub fn predefined_candidates(dim: u8) -> &'static [TuningVector] {
    let cell = match dim {
        2 => &SET_2D,
        3 => &SET_3D,
        _ => panic!("stencil dimensionality must be 2 or 3, got {dim}"),
    };
    cell.get_or_init(|| TuningSpace::for_dim(dim).expect("dim checked above").predefined_set())
}

/// Per-worker scratch: one row-major feature block, reused across queries.
#[derive(Debug, Default)]
struct WorkerScratch {
    matrix: Vec<f64>,
}

/// A raw pointer that may cross thread boundaries. Soundness rests on each
/// parallel chunk touching a disjoint score range and its own scratch slot
/// (chunk index == scratch index), mirroring the engine's tile writes.
struct SendPtr<T>(*mut T);
// Manual impls: the derive would demand `T: Copy`, but the wrapper only
// copies the pointer.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// A long-lived tuning server around a trained [`StencilRanker`].
///
/// Use a session when tuning is on a hot path (many instances, repeated
/// queries); use [`StandaloneTuner`](crate::tuner::StandaloneTuner) for
/// one-shot convenience. Methods take `&mut self` because the session
/// reuses its scratch buffers between queries.
///
/// ```no_run
/// use sorl::pipeline::{PipelineConfig, TrainingPipeline};
/// use sorl::session::TuningSession;
/// use stencil_model::{GridSize, StencilInstance, StencilKernel};
///
/// let out = TrainingPipeline::new(PipelineConfig::default()).run();
/// let mut session = TuningSession::parallel(out.ranker, 8);
/// for size in [64, 96, 128, 192] {
///     let q = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(size)).unwrap();
///     let d = session.tune(&q);
///     println!("{q}: {} in {:.3} ms", d.tuning, d.seconds * 1e3);
/// }
/// ```
#[derive(Debug)]
pub struct TuningSession {
    ranker: StencilRanker,
    pool: Option<ThreadPool>,
    scratch: Vec<WorkerScratch>,
    scores: Vec<f64>,
}

impl TuningSession {
    /// A sequential session (batched scoring, no worker threads).
    pub fn new(ranker: StencilRanker) -> Self {
        Self::build(ranker, None)
    }

    /// A session fanning candidate chunks over `threads` threads
    /// (`threads <= 1` degenerates to the sequential session).
    pub fn parallel(ranker: StencilRanker, threads: usize) -> Self {
        let pool = (threads > 1).then(|| ThreadPool::new(threads));
        Self::build(ranker, pool)
    }

    /// A session reusing an existing pool, e.g. one shared with the
    /// execution engine between measurement phases.
    pub fn with_pool(ranker: StencilRanker, pool: ThreadPool) -> Self {
        Self::build(ranker, Some(pool))
    }

    fn build(ranker: StencilRanker, pool: Option<ThreadPool>) -> Self {
        let threads = pool.as_ref().map_or(1, ThreadPool::threads);
        let dim = ranker.encoder().dim();
        let scratch = (0..threads)
            .map(|_| WorkerScratch { matrix: Vec::with_capacity(BLOCK_ROWS * dim) })
            .collect();
        TuningSession { ranker, pool, scratch, scores: Vec::new() }
    }

    /// The underlying ranker.
    pub fn ranker(&self) -> &StencilRanker {
        &self.ranker
    }

    /// Threads used per query (1 for a sequential session).
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(1, ThreadPool::threads)
    }

    /// Releases the session, handing back its pool for reuse elsewhere.
    pub fn into_pool(self) -> Option<ThreadPool> {
        self.pool
    }

    /// Tunes `instance` over the cached predefined set for its
    /// dimensionality — the paper's standalone-tuner query, served with
    /// zero steady-state allocation. The cached set is admissible by
    /// construction, so this skips the per-query batch validation.
    pub fn tune(&mut self, instance: &StencilInstance) -> TunerDecision {
        let candidates = predefined_candidates(instance.dim());
        let t0 = Instant::now();
        self.score_candidates(instance, candidates, true)
            .expect("predefined set is admissible by construction");
        let best = self.best_index();
        TunerDecision {
            tuning: candidates[best],
            score: self.scores[best],
            candidates: candidates.len(),
            seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// Tunes `instance` over an explicit candidate list.
    ///
    /// Unlike `StandaloneTuner::tune_over` this does not panic on bad
    /// input: an empty list or an inadmissible candidate is reported as an
    /// error (naming the offending candidate index).
    pub fn tune_over(
        &mut self,
        instance: &StencilInstance,
        candidates: &[TuningVector],
    ) -> Result<TunerDecision, ModelError> {
        if candidates.is_empty() {
            return Err(ModelError::OutOfRange {
                what: "candidate count",
                value: 0,
                lo: 1,
                hi: i64::MAX,
            });
        }
        let t0 = Instant::now();
        self.score_candidates(instance, candidates, false)?;
        let best = self.best_index();
        Ok(TunerDecision {
            tuning: candidates[best],
            score: self.scores[best],
            candidates: candidates.len(),
            seconds: t0.elapsed().as_secs_f64(),
        })
    }

    /// Index of the highest score in the freshly filled score buffer (first
    /// occurrence wins ties, matching `argsort_desc`'s tie-break).
    fn best_index(&self) -> usize {
        let mut best = 0usize;
        for i in 1..self.scores.len() {
            if self.scores[i] > self.scores[best] {
                best = i;
            }
        }
        best
    }

    /// Scores `candidates` for `instance`, returning a borrow of the
    /// session's internal score buffer (valid until the next query).
    pub fn scores(
        &mut self,
        instance: &StencilInstance,
        candidates: &[TuningVector],
    ) -> Result<&[f64], ModelError> {
        self.score_candidates(instance, candidates, false)?;
        Ok(&self.scores)
    }

    /// Full best-first ranking of `candidates` (allocates the index vector;
    /// scoring itself still runs on the zero-alloc batch path).
    pub fn rank(
        &mut self,
        instance: &StencilInstance,
        candidates: &[TuningVector],
    ) -> Result<Vec<usize>, ModelError> {
        self.score_candidates(instance, candidates, false)?;
        Ok(ranksvm::argsort_desc(&self.scores))
    }

    /// The batched scoring core: validates the batch up front (skipped for
    /// `prevalidated` callers such as the cached predefined sets, which are
    /// admissible by construction), then encodes and scores block-wise into
    /// `self.scores`, fanning contiguous candidate chunks across the pool
    /// when one is attached.
    fn score_candidates(
        &mut self,
        instance: &StencilInstance,
        candidates: &[TuningVector],
        prevalidated: bool,
    ) -> Result<(), ModelError> {
        let qf = self.ranker.encoder().query_features(instance);
        if !prevalidated {
            validate_candidates(&qf, candidates)?;
        }

        self.scores.clear();
        self.scores.resize(candidates.len(), 0.0);

        let n_chunks = match &self.pool {
            Some(pool) => pool.threads().min(candidates.len()).max(1),
            None => 1,
        };
        // Even contiguous partition: chunk ci covers [lo(ci), lo(ci + 1)).
        let chunk_lo = |ci: usize| ci * candidates.len() / n_chunks;

        if n_chunks == 1 {
            let scratch = &mut self.scratch[0];
            score_range(&self.ranker, &qf, candidates, scratch, &mut self.scores);
            return Ok(());
        }

        let ranker = &self.ranker;
        let scores_ptr = SendPtr(self.scores.as_mut_ptr());
        let scratch_ptr = SendPtr(self.scratch.as_mut_ptr());
        let pool = self.pool.as_mut().expect("n_chunks > 1 implies a pool");
        pool.run(n_chunks, &|ci| {
            // Mention the whole wrapper bindings so edition-2021 precise
            // capture grabs the (Sync) `SendPtr`s, not their raw-pointer
            // fields.
            let (scores_base, scratch_base) = {
                let (s, w) = (scores_ptr, scratch_ptr);
                (s.0, w.0)
            };
            let (lo, hi) = (chunk_lo(ci), chunk_lo(ci + 1));
            // SAFETY: chunk ranges are disjoint and in-bounds, and each
            // chunk index runs exactly once, so the score sub-slice and the
            // per-chunk scratch slot (ci < n_chunks <= scratch.len()) are
            // accessed exclusively for the duration of `run`.
            let (scores, scratch) = unsafe {
                (
                    std::slice::from_raw_parts_mut(scores_base.add(lo), hi - lo),
                    &mut *scratch_base.add(ci),
                )
            };
            score_range(ranker, &qf, &candidates[lo..hi], scratch, scores);
        });
        Ok(())
    }
}

/// Encodes and scores one contiguous candidate range in blocks of
/// [`BLOCK_ROWS`], reusing the worker's row-major matrix buffer.
fn score_range(
    ranker: &StencilRanker,
    qf: &QueryFeatures,
    candidates: &[TuningVector],
    scratch: &mut WorkerScratch,
    scores: &mut [f64],
) {
    let encoder = ranker.encoder();
    let dim = encoder.dim();
    let mut start = 0;
    while start < candidates.len() {
        let n = (candidates.len() - start).min(BLOCK_ROWS);
        scratch.matrix.clear();
        for &t in &candidates[start..start + n] {
            encoder.append_candidate(qf, t, &mut scratch.matrix);
        }
        ranker.model().score_batch_into(&scratch.matrix, dim, &mut scores[start..start + n]);
        start += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksvm::LinearRanker;
    use stencil_model::{FeatureEncoder, GridSize, StencilKernel};

    /// Deterministic pseudo-random weights (xorshift), dense over every
    /// feature so batch/legacy discrepancies cannot hide behind zeros.
    fn dense_ranker() -> StencilRanker {
        let encoder = FeatureEncoder::default_interaction();
        let mut state = 0x9e3779b97f4a7c15u64;
        let w: Vec<f64> = (0..encoder.dim())
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state as f64 / u64::MAX as f64) - 0.5
            })
            .collect();
        StencilRanker::new(encoder, LinearRanker::from_weights(w))
    }

    fn lap128() -> StencilInstance {
        StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(128)).unwrap()
    }

    fn blur1024() -> StencilInstance {
        StencilInstance::new(StencilKernel::blur(), GridSize::square(1024)).unwrap()
    }

    #[test]
    fn predefined_candidates_are_cached_and_sized() {
        assert_eq!(predefined_candidates(2).len(), 1600);
        assert_eq!(predefined_candidates(3).len(), 8640);
        // Same allocation on repeated calls.
        assert!(std::ptr::eq(predefined_candidates(3), predefined_candidates(3)));
    }

    #[test]
    #[should_panic(expected = "must be 2 or 3")]
    fn predefined_candidates_rejects_bad_dim() {
        predefined_candidates(4);
    }

    #[test]
    fn session_matches_ranker_scores_exactly() {
        let ranker = dense_ranker();
        let mut seq = TuningSession::new(ranker.clone());
        let mut par = TuningSession::parallel(ranker.clone(), 4);
        for q in [lap128(), blur1024()] {
            let cands = predefined_candidates(q.dim());
            let reference = ranker.scores(&q, cands).unwrap();
            assert_eq!(seq.scores(&q, cands).unwrap(), &reference[..]);
            assert_eq!(par.scores(&q, cands).unwrap(), &reference[..]);
        }
    }

    #[test]
    fn session_tune_agrees_with_ranker_rank() {
        let ranker = dense_ranker();
        let mut session = TuningSession::parallel(ranker.clone(), 3);
        let q = lap128();
        let d = session.tune(&q);
        assert_eq!(d.candidates, 8640);
        let order = ranker.rank(&q, predefined_candidates(3)).unwrap();
        assert_eq!(d.tuning, predefined_candidates(3)[order[0]]);
        assert_eq!(session.rank(&q, predefined_candidates(3)).unwrap(), order);
    }

    #[test]
    fn tune_over_reports_errors_instead_of_panicking() {
        let mut session = TuningSession::new(dense_ranker());
        let q = blur1024();
        assert!(session.tune_over(&q, &[]).is_err());
        let bad = [TuningVector::new(8, 8, 1, 0, 1), TuningVector::new(8, 8, 8, 0, 1)];
        let err = session.tune_over(&q, &bad).unwrap_err();
        assert!(err.to_string().contains("#1"), "{err}");
    }

    #[test]
    fn one_pool_serves_many_epochs() {
        // ThreadPool stress from the ranking side: a single pool must
        // survive many query epochs (mixed dimensionalities and candidate
        // counts) and keep producing results identical to sequential.
        let ranker = dense_ranker();
        let mut seq = TuningSession::new(ranker.clone());
        let mut par = TuningSession::parallel(ranker, 4);
        assert_eq!(par.threads(), 4);
        for epoch in 0..40 {
            let q = if epoch % 2 == 0 { lap128() } else { blur1024() };
            let cands = predefined_candidates(q.dim());
            // Vary the batch size so chunk boundaries move around.
            let n = cands.len() - (epoch * 37) % 1000;
            let a = par.tune_over(&q, &cands[..n]).unwrap();
            let b = seq.tune_over(&q, &cands[..n]).unwrap();
            assert_eq!(a.tuning, b.tuning, "epoch {epoch}");
            assert_eq!(a.score, b.score, "epoch {epoch}");
        }
        // The pool can be handed back for reuse.
        assert!(par.into_pool().is_some());
        assert!(seq.into_pool().is_none());
    }
}
