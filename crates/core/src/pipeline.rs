//! The end-to-end training pipeline (paper Fig. 3) with phase timings.
//!
//! Code generation -> (modelled) double compilation -> training-set
//! execution on the machine -> partial-ranking assembly -> SVM-rank
//! training. The returned [`PhaseTimings`] carry exactly the columns of
//! Table II: modelled compile time, training-set generation time (simulated
//! machine seconds), model training time and per-query regression time.

use serde::{Deserialize, Serialize};

use ranksvm::{RankSvmTrainer, TrainConfig, TrainReport};
use stencil_gen::{Corpus, TrainingSetBuilder};
use stencil_machine::{CompileModel, Machine};
use stencil_model::{EncodingKind, FeatureConfig, FeatureEncoder};

use crate::ranker::StencilRanker;

/// Configuration of a full training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Number of training samples (the paper sweeps 960..32000).
    pub training_size: usize,
    /// SVM training parameters (the paper uses `C = 0.01`).
    pub train: TrainConfig,
    /// Feature layout.
    pub encoding: EncodingKind,
    /// Seed for tuning-vector sampling.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            training_size: 3840,
            train: TrainConfig::paper(),
            encoding: EncodingKind::Interaction,
            seed: 0x534F_524C, // "SORL"
        }
    }
}

/// Table II columns for one training-set size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Modelled PATUS + gcc compile time for the whole corpus, seconds
    /// ("TS Comp.", ~32 h in the paper, shared by all sizes).
    pub ts_compile_modelled: f64,
    /// Simulated machine time to execute the training set, seconds
    /// ("TS Generation").
    pub ts_generation_simulated: f64,
    /// Wall-clock seconds this process spent building the training set.
    pub ts_generation_wall: f64,
    /// Wall-clock seconds spent training the ranking SVM ("Training").
    pub training_wall: f64,
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// The trained ranker.
    pub ranker: StencilRanker,
    /// Phase timings (Table II row).
    pub timings: PhaseTimings,
    /// Trainer diagnostics.
    pub report: TrainReport,
    /// Number of samples actually used.
    pub samples: usize,
}

/// Drives corpus generation, simulated execution and training.
#[derive(Debug, Clone)]
pub struct TrainingPipeline {
    config: PipelineConfig,
    machine: Machine,
    compile_model: CompileModel,
}

impl TrainingPipeline {
    /// A pipeline on the default simulated Xeon.
    pub fn new(config: PipelineConfig) -> Self {
        TrainingPipeline {
            config,
            machine: Machine::xeon_e5_2680_v3(),
            compile_model: CompileModel::default(),
        }
    }

    /// Replaces the machine (e.g. a noiseless one for calibration tests).
    pub fn with_machine(mut self, machine: Machine) -> Self {
        self.machine = machine;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs the full pipeline.
    pub fn run(&self) -> PipelineOutcome {
        let encoder = FeatureEncoder::new(FeatureConfig {
            encoding: self.config.encoding,
            ..FeatureConfig::default()
        });
        let corpus = Corpus::paper();
        let ts_compile_modelled = self.compile_model.corpus_seconds(corpus.kernels());

        let builder = TrainingSetBuilder::paper()
            .with_corpus(corpus)
            .with_machine(self.machine.clone())
            .with_encoder(encoder.clone())
            .with_seed(self.config.seed);
        let ts = builder.build_size(self.config.training_size);

        let trainer = RankSvmTrainer::new(self.config.train);
        let t0 = std::time::Instant::now();
        let (model, report) = trainer.train(&ts.dataset);
        let training_wall = t0.elapsed().as_secs_f64();

        PipelineOutcome {
            samples: ts.dataset.len(),
            ranker: StencilRanker::new(encoder, model),
            timings: PhaseTimings {
                ts_compile_modelled,
                ts_generation_simulated: ts.simulated_seconds,
                ts_generation_wall: ts.wall_seconds,
                training_wall,
            },
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_produces_trained_model() {
        let out =
            TrainingPipeline::new(PipelineConfig { training_size: 960, ..Default::default() })
                .run();
        assert_eq!(out.samples, 960);
        assert!(out.report.pairs > 0);
        assert!(out.ranker.model().norm() > 0.0);
        assert!(out.timings.training_wall > 0.0);
        assert!(out.timings.ts_generation_simulated > 0.0);
    }

    #[test]
    fn compile_time_is_in_paper_ballpark() {
        // The paper reports ~32 hours to compile the 60-code corpus; the
        // model should land within a loose band around that.
        let out =
            TrainingPipeline::new(PipelineConfig { training_size: 320, ..Default::default() })
                .run();
        let hours = out.timings.ts_compile_modelled / 3600.0;
        assert!(
            (20.0..48.0).contains(&hours),
            "modelled corpus compile time {hours:.1} h outside [20, 48]"
        );
    }

    #[test]
    fn training_learns_the_simulated_landscape() {
        // Pair accuracy on the training set must be far above chance.
        let out = TrainingPipeline::new(PipelineConfig {
            training_size: 1920,
            train: TrainConfig::paper(),
            ..Default::default()
        })
        .run();
        assert!(
            out.report.train_pair_accuracy > 0.7,
            "pair accuracy {}",
            out.report.train_pair_accuracy
        );
    }

    #[test]
    fn pipeline_is_deterministic() {
        let cfg = PipelineConfig { training_size: 640, ..Default::default() };
        let a = TrainingPipeline::new(cfg).run();
        let b = TrainingPipeline::new(cfg).run();
        assert_eq!(a.ranker.model().weights(), b.ranker.model().weights());
    }

    #[test]
    fn paper_concat_encoding_also_trains() {
        let out = TrainingPipeline::new(PipelineConfig {
            training_size: 960,
            encoding: EncodingKind::PaperConcat,
            ..Default::default()
        })
        .run();
        assert!(out.report.train_pair_accuracy > 0.5);
    }
}
