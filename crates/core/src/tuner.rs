//! The standalone autotuner (paper Section VI-A).
//!
//! Given an unseen stencil instance, the tuner ranks the *predefined*
//! hierarchically sampled configuration set (1600 candidates for 2-D
//! stencils, 8640 for 3-D) with the trained model and returns the
//! top-ranked tuning vector — no execution, no compilation, sub-millisecond
//! latency. The achievable performance is bounded by the best configuration
//! inside the predefined set, exactly as the paper notes.

use std::time::Instant;

use stencil_model::{StencilInstance, TuningVector};

use crate::ranker::StencilRanker;
use crate::session::predefined_candidates;

/// The tuner's answer for one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct TunerDecision {
    /// The configuration to run.
    pub tuning: TuningVector,
    /// Its model score.
    pub score: f64,
    /// Number of candidates that were ranked.
    pub candidates: usize,
    /// Ranking latency in seconds (the paper's "Regression" column).
    pub seconds: f64,
}

/// Ranks predefined candidate sets with a trained [`StencilRanker`].
#[derive(Debug, Clone)]
pub struct StandaloneTuner {
    ranker: StencilRanker,
}

impl StandaloneTuner {
    /// Wraps a trained ranker.
    pub fn new(ranker: StencilRanker) -> Self {
        StandaloneTuner { ranker }
    }

    /// The underlying ranker.
    pub fn ranker(&self) -> &StencilRanker {
        &self.ranker
    }

    /// Tunes `instance` over the paper's predefined set for its
    /// dimensionality (cached process-wide, so repeated calls never
    /// re-materialize the 1600/8640 candidate vectors).
    pub fn tune(&self, instance: &StencilInstance) -> TunerDecision {
        self.tune_over(instance, predefined_candidates(instance.dim()))
    }

    /// Tunes `instance` over an explicit candidate list (e.g. user-supplied
    /// settings, or samples proposed by a higher-level search).
    ///
    /// # Panics
    /// Panics on an empty candidate list or inadmissible candidates.
    pub fn tune_over(
        &self,
        instance: &StencilInstance,
        candidates: &[TuningVector],
    ) -> TunerDecision {
        assert!(!candidates.is_empty(), "candidate set must not be empty");
        let t0 = Instant::now();
        let scores = self.ranker.scores(instance, candidates).expect("admissible candidates");
        let mut best = 0usize;
        for i in 1..scores.len() {
            if scores[i] > scores[best] {
                best = i;
            }
        }
        TunerDecision {
            tuning: candidates[best],
            score: scores[best],
            candidates: candidates.len(),
            seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// Full ranking of the predefined set, best first (used by the hybrid
    /// tuner and by the ranking-quality experiments).
    pub fn rank_predefined(&self, instance: &StencilInstance) -> Vec<TuningVector> {
        let set = predefined_candidates(instance.dim());
        let order = self.ranker.rank(instance, set).expect("predefined set is admissible");
        order.into_iter().map(|i| set[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{PipelineConfig, TrainingPipeline};
    use stencil_model::{GridSize, StencilKernel, TuningSpace};

    fn trained_tuner() -> StandaloneTuner {
        let out =
            TrainingPipeline::new(PipelineConfig { training_size: 960, ..Default::default() })
                .run();
        StandaloneTuner::new(out.ranker)
    }

    #[test]
    fn tunes_2d_and_3d_instances() {
        let tuner = trained_tuner();
        let lap = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(128)).unwrap();
        let d = tuner.tune(&lap);
        assert_eq!(d.candidates, 8640);
        assert!(TuningSpace::d3().contains(&d.tuning));

        let blur = StencilInstance::new(StencilKernel::blur(), GridSize::square(1024)).unwrap();
        let d2 = tuner.tune(&blur);
        assert_eq!(d2.candidates, 1600);
        assert_eq!(d2.tuning.bz, 1);
    }

    #[test]
    fn ranking_latency_is_fast() {
        // The paper reports < 1 ms; allow a loose bound for debug builds
        // and noisy CI machines.
        let tuner = trained_tuner();
        let lap = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(128)).unwrap();
        let d = tuner.tune(&lap);
        assert!(d.seconds < 2.0, "ranking took {}s", d.seconds);
    }

    #[test]
    fn rank_predefined_returns_full_permutation() {
        let tuner = trained_tuner();
        let lap = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(128)).unwrap();
        let ranked = tuner.rank_predefined(&lap);
        assert_eq!(ranked.len(), 8640);
        assert_eq!(ranked[0], tuner.tune(&lap).tuning);
        let mut sorted = ranked.clone();
        sorted.sort_by_key(|t| t.as_array());
        sorted.dedup();
        assert_eq!(sorted.len(), 8640, "ranking must be a permutation");
    }

    #[test]
    fn tune_over_explicit_candidates() {
        let tuner = trained_tuner();
        let lap = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(128)).unwrap();
        let cands = vec![TuningVector::new(2, 2, 2, 0, 64), TuningVector::new(64, 16, 8, 2, 2)];
        let d = tuner.tune_over(&lap, &cands);
        assert!(cands.contains(&d.tuning));
        assert_eq!(d.candidates, 2);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_candidates_panic() {
        let tuner = trained_tuner();
        let lap = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(64)).unwrap();
        tuner.tune_over(&lap, &[]);
    }
}
