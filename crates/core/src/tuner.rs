//! The standalone autotuner (paper Section VI-A).
//!
//! Given an unseen stencil instance, the tuner ranks the *predefined*
//! hierarchically sampled configuration set (1600 candidates for 2-D
//! stencils, 8640 for 3-D) with the trained model and returns the
//! top-ranked tuning vector — no execution, no compilation, sub-millisecond
//! latency. The achievable performance is bounded by the best configuration
//! inside the predefined set, exactly as the paper notes.

use std::time::Instant;

use serde::{Deserialize, Serialize};
use stencil_model::{StencilInstance, TuningVector};

use crate::ranker::StencilRanker;
use crate::session::predefined_candidates;

/// The tuner's answer for one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct TunerDecision {
    /// The configuration to run.
    pub tuning: TuningVector,
    /// Its model score.
    pub score: f64,
    /// Number of candidates that were ranked.
    pub candidates: usize,
    /// Ranking latency in seconds (the paper's "Regression" column).
    pub seconds: f64,
}

/// The `k` best configurations for one instance, best-first, with scores.
///
/// Heavy-traffic callers prefer this over [`TunerDecision`]: the runner-up
/// configurations seed iterative searches (see
/// [`HybridTuner`](crate::hybrid::HybridTuner)) and give fallbacks when the
/// top choice is rejected downstream, and the entries come from a partial
/// select, never a full `rank()` sort. Serializable, so answers can cross
/// a shard-transport process boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopK {
    /// `(configuration, score)` pairs, best first. Exactly the first
    /// `entries.len()` elements of the full ranking, tie-breaks included.
    pub entries: Vec<(TuningVector, f64)>,
    /// Number of candidates that were scored.
    pub candidates: usize,
    /// Selection latency in seconds.
    pub seconds: f64,
}

impl TopK {
    /// The best configuration (`None` when no candidates were scored).
    pub fn best(&self) -> Option<TuningVector> {
        self.entries.first().map(|&(t, _)| t)
    }

    /// Number of returned configurations (`<= k` when the candidate set was
    /// smaller than the request).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no configurations were returned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The returned configurations, best first, without scores.
    pub fn tunings(&self) -> impl Iterator<Item = TuningVector> + '_ {
        self.entries.iter().map(|&(t, _)| t)
    }
}

/// A full best-first ranking over the process-wide cached predefined set:
/// ranked *indices* into the cached slice, so no candidate vectors are
/// cloned — iterate (or index) on demand.
#[derive(Debug, Clone)]
pub struct RankedPredefined {
    set: &'static [TuningVector],
    order: Vec<usize>,
}

impl RankedPredefined {
    /// Number of ranked candidates.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the ranking is empty (never for the predefined sets).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The candidate at rank `r` (0 = best).
    pub fn get(&self, r: usize) -> TuningVector {
        self.set[self.order[r]]
    }

    /// All candidates, best first.
    pub fn iter(&self) -> impl Iterator<Item = TuningVector> + '_ {
        self.order.iter().map(|&i| self.set[i])
    }

    /// The underlying cached candidate slice (unordered).
    pub fn set(&self) -> &'static [TuningVector] {
        self.set
    }

    /// Ranked indices into [`set`](Self::set), best first.
    pub fn order(&self) -> &[usize] {
        &self.order
    }
}

/// Ranks predefined candidate sets with a trained [`StencilRanker`].
#[derive(Debug, Clone)]
pub struct StandaloneTuner {
    ranker: StencilRanker,
}

impl StandaloneTuner {
    /// Wraps a trained ranker.
    pub fn new(ranker: StencilRanker) -> Self {
        StandaloneTuner { ranker }
    }

    /// The underlying ranker.
    pub fn ranker(&self) -> &StencilRanker {
        &self.ranker
    }

    /// Tunes `instance` over the paper's predefined set for its
    /// dimensionality (cached process-wide, so repeated calls never
    /// re-materialize the 1600/8640 candidate vectors).
    pub fn tune(&self, instance: &StencilInstance) -> TunerDecision {
        self.tune_over(instance, predefined_candidates(instance.dim()))
    }

    /// Tunes `instance` over an explicit candidate list (e.g. user-supplied
    /// settings, or samples proposed by a higher-level search).
    ///
    /// # Panics
    /// Panics on an empty candidate list or inadmissible candidates.
    pub fn tune_over(
        &self,
        instance: &StencilInstance,
        candidates: &[TuningVector],
    ) -> TunerDecision {
        assert!(!candidates.is_empty(), "candidate set must not be empty");
        let t0 = Instant::now();
        let scores = self.ranker.scores(instance, candidates).expect("admissible candidates");
        let mut best = 0usize;
        for i in 1..scores.len() {
            if scores[i] > scores[best] {
                best = i;
            }
        }
        TunerDecision {
            tuning: candidates[best],
            score: scores[best],
            candidates: candidates.len(),
            seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// The `k` best predefined configurations with scores, best-first, via
    /// a partial select over the cached set (no full sort, no cloning of
    /// the candidate set).
    pub fn top_k(&self, instance: &StencilInstance, k: usize) -> TopK {
        let set = predefined_candidates(instance.dim());
        let t0 = Instant::now();
        let entries = self.ranker.top_k(instance, set, k).expect("predefined set is admissible");
        TopK { entries, candidates: set.len(), seconds: t0.elapsed().as_secs_f64() }
    }

    /// Full ranking of the predefined set, best first (used by the
    /// ranking-quality experiments). Returns ranked indices over the cached
    /// process-wide slice — the candidate set itself is never cloned;
    /// callers that only need the first few entries should prefer
    /// [`top_k`](Self::top_k).
    pub fn rank_predefined(&self, instance: &StencilInstance) -> RankedPredefined {
        let set = predefined_candidates(instance.dim());
        let order = self.ranker.rank(instance, set).expect("predefined set is admissible");
        RankedPredefined { set, order }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{PipelineConfig, TrainingPipeline};
    use stencil_model::{GridSize, StencilKernel, TuningSpace};

    fn trained_tuner() -> StandaloneTuner {
        let out =
            TrainingPipeline::new(PipelineConfig { training_size: 960, ..Default::default() })
                .run();
        StandaloneTuner::new(out.ranker)
    }

    #[test]
    fn tunes_2d_and_3d_instances() {
        let tuner = trained_tuner();
        let lap = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(128)).unwrap();
        let d = tuner.tune(&lap);
        assert_eq!(d.candidates, 8640);
        assert!(TuningSpace::d3().contains(&d.tuning));

        let blur = StencilInstance::new(StencilKernel::blur(), GridSize::square(1024)).unwrap();
        let d2 = tuner.tune(&blur);
        assert_eq!(d2.candidates, 1600);
        assert_eq!(d2.tuning.bz, 1);
    }

    #[test]
    fn ranking_latency_is_fast() {
        // The paper reports < 1 ms; allow a loose bound for debug builds
        // and noisy CI machines.
        let tuner = trained_tuner();
        let lap = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(128)).unwrap();
        let d = tuner.tune(&lap);
        assert!(d.seconds < 2.0, "ranking took {}s", d.seconds);
    }

    #[test]
    fn rank_predefined_returns_full_permutation() {
        let tuner = trained_tuner();
        let lap = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(128)).unwrap();
        let ranked = tuner.rank_predefined(&lap);
        assert_eq!(ranked.len(), 8640);
        assert!(!ranked.is_empty());
        assert_eq!(ranked.get(0), tuner.tune(&lap).tuning);
        // The ranking borrows the process-wide cached slice: no clone.
        assert!(std::ptr::eq(ranked.set(), predefined_candidates(3)));
        let mut sorted: Vec<_> = ranked.iter().collect();
        assert_eq!(sorted[0], ranked.get(0));
        sorted.sort_by_key(|t| t.as_array());
        sorted.dedup();
        assert_eq!(sorted.len(), 8640, "ranking must be a permutation");
    }

    #[test]
    fn top_k_is_the_prefix_of_the_full_ranking() {
        let tuner = trained_tuner();
        let lap = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(128)).unwrap();
        let ranked = tuner.rank_predefined(&lap);
        for k in [0usize, 1, 8, 37] {
            let top = tuner.top_k(&lap, k);
            assert_eq!(top.len(), k);
            assert_eq!(top.candidates, 8640);
            for (r, t) in top.tunings().enumerate() {
                assert_eq!(t, ranked.get(r), "rank {r} of k = {k}");
            }
        }
        assert_eq!(tuner.top_k(&lap, 1).best(), Some(tuner.tune(&lap).tuning));
        assert!(tuner.top_k(&lap, 0).is_empty());
        // k past the set size returns the whole ranking.
        assert_eq!(tuner.top_k(&lap, 100_000).len(), 8640);
    }

    #[test]
    fn tune_over_explicit_candidates() {
        let tuner = trained_tuner();
        let lap = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(128)).unwrap();
        let cands = vec![TuningVector::new(2, 2, 2, 0, 64), TuningVector::new(64, 16, 8, 2, 2)];
        let d = tuner.tune_over(&lap, &cands);
        assert!(cands.contains(&d.tuning));
        assert_eq!(d.candidates, 2);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_candidates_panic() {
        let tuner = trained_tuner();
        let lap = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(64)).unwrap();
        tuner.tune_over(&lap, &[]);
    }
}
