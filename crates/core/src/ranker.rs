//! The trained stencil ranker: feature encoder + linear ranking model.

use std::io::Write;
use std::path::Path;

use serde::{Deserialize, Serialize};

use ranksvm::LinearRanker;
use stencil_model::{
    CandidateMatrix, FeatureEncoder, ModelError, QueryFeatures, StencilExecution, StencilInstance,
    TuningVector,
};

/// A ranking function over stencil executions: encodes `(q, t)` and scores
/// it with a linear model; higher scores predict faster executions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StencilRanker {
    encoder: FeatureEncoder,
    model: LinearRanker,
}

impl StencilRanker {
    /// Wraps a fitted model.
    ///
    /// # Panics
    /// Panics when model and encoder dimensions disagree.
    pub fn new(encoder: FeatureEncoder, model: LinearRanker) -> Self {
        assert_eq!(encoder.dim(), model.dim(), "encoder/model dimension mismatch");
        StencilRanker { encoder, model }
    }

    /// The feature encoder.
    pub fn encoder(&self) -> &FeatureEncoder {
        &self.encoder
    }

    /// The linear model.
    pub fn model(&self) -> &LinearRanker {
        &self.model
    }

    /// Scores one admissible execution (higher = predicted faster).
    pub fn score(&self, exec: &StencilExecution) -> f64 {
        self.model.score(&self.encoder.encode(exec))
    }

    /// Precomputes the per-instance query block for batch scoring.
    pub fn query_features(&self, instance: &StencilInstance) -> QueryFeatures {
        self.encoder.query_features(instance)
    }

    /// Scores `candidates` for `instance` on the batched path: the query
    /// block is encoded once, every candidate is validated up front (an
    /// inadmissible one yields [`ModelError::InadmissibleCandidate`] naming
    /// its index), and rows are completed block-wise into a reused
    /// [`CandidateMatrix`] scored by the batch kernel — no `StencilInstance`
    /// clone, no per-candidate `TuningSpace` construction, no per-row
    /// allocation. Scores are bit-for-bit identical to per-row
    /// [`score`](Self::score) calls.
    pub fn scores(
        &self,
        instance: &StencilInstance,
        candidates: &[TuningVector],
    ) -> Result<Vec<f64>, ModelError> {
        const BLOCK: usize = 64;
        let qf = self.encoder.query_features(instance);
        validate_candidates(&qf, candidates)?;
        let mut out = vec![0.0; candidates.len()];
        let mut block = CandidateMatrix::with_row_capacity(self.encoder.dim(), BLOCK);
        let mut start = 0;
        while start < candidates.len() {
            let n = (candidates.len() - start).min(BLOCK);
            block.clear();
            for &t in &candidates[start..start + n] {
                block.push_row_with(|row| self.encoder.append_candidate(&qf, t, row));
            }
            self.model.score_rows_into(
                block.rows_data(),
                block.stride(),
                &mut out[start..start + n],
            );
            start += n;
        }
        Ok(out)
    }

    /// Ranks `candidates` best-first; ties break towards the lower index so
    /// the ranking is deterministic.
    pub fn rank(
        &self,
        instance: &StencilInstance,
        candidates: &[TuningVector],
    ) -> Result<Vec<usize>, ModelError> {
        Ok(ranksvm::argsort_desc(&self.scores(instance, candidates)?))
    }

    /// The `k` best candidates with their scores, best-first — a partial
    /// select (`O(n + k log k)`), not a full sort, so heavy-traffic callers
    /// asking for a handful of alternatives never pay for ranking the whole
    /// set. The result (order and tie-breaks included) is exactly the first
    /// `k` entries of [`rank`](Self::rank); fewer than `k` candidates yield
    /// all of them.
    pub fn top_k(
        &self,
        instance: &StencilInstance,
        candidates: &[TuningVector],
        k: usize,
    ) -> Result<Vec<(TuningVector, f64)>, ModelError> {
        let scores = self.scores(instance, candidates)?;
        Ok(ranksvm::top_k_desc(&scores, k)
            .into_iter()
            .map(|i| (candidates[i], scores[i]))
            .collect())
    }

    /// The top-ranked candidate (`None` for an empty candidate list).
    pub fn top1(
        &self,
        instance: &StencilInstance,
        candidates: &[TuningVector],
    ) -> Result<Option<TuningVector>, ModelError> {
        Ok(self.rank(instance, candidates)?.first().map(|&i| candidates[i]))
    }

    /// A stable 64-bit fingerprint of the whole ranking function: the
    /// encoder configuration (every field that shapes the feature layout
    /// or its normalization, in declaration order) folded together with
    /// the model's [`weight_fingerprint`](LinearRanker::weight_fingerprint)
    /// via the pinned FNV-1a stream of
    /// [`stencil_model::fingerprint::Fnv1a`].
    ///
    /// Two rankers with equal fingerprints produce identical scores for
    /// every admissible execution, so persisted decision caches are
    /// versioned by this value: a snapshot written under one fingerprint
    /// is rejected on restore under any other (retrained weights, changed
    /// encoding — either invalidates every cached decision).
    pub fn fingerprint(&self) -> u64 {
        use stencil_model::EncodingKind;
        let c = self.encoder.config();
        let mut h = stencil_model::fingerprint::Fnv1a::new();
        h.write_u64(c.max_offset as u64);
        h.write_u64(match c.encoding {
            EncodingKind::PaperConcat => 0,
            EncodingKind::Interaction => 1,
        });
        h.write_u64(c.count_cap as u64);
        h.write_u64(c.max_buffers as u64);
        h.write_f64(c.size_log2_max);
        h.write_f64(c.block_log2_max);
        h.write_f64(c.chunk_log2_max);
        h.write_u64(c.unroll_max as u64);
        h.write_u64(self.model.weight_fingerprint());
        h.finish()
    }

    /// Serializes the ranker to pretty JSON at `path`.
    pub fn save_json(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self).expect("ranker serializes");
        let mut f = std::fs::File::create(path)?;
        f.write_all(json.as_bytes())
    }

    /// Loads a ranker saved by [`save_json`](Self::save_json).
    pub fn load_json(path: &Path) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Validates a whole candidate batch against the query's tuning space
/// before any scoring happens, so a bad batch fails fast with the offending
/// candidate's index instead of aborting mid-iteration.
pub fn validate_candidates(
    qf: &QueryFeatures,
    candidates: &[TuningVector],
) -> Result<(), ModelError> {
    for (index, t) in candidates.iter().enumerate() {
        if let Err(source) = qf.space().validate(t) {
            return Err(ModelError::InadmissibleCandidate { index, source: Box::new(source) });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_model::{GridSize, StencilKernel};

    /// A hand-made ranker whose only non-zero weight sits on the unroll
    /// feature of the concatenated block, so candidates with higher u rank
    /// first — enough to test the plumbing deterministically.
    fn unroll_loving_ranker() -> StencilRanker {
        let encoder = FeatureEncoder::paper_concat();
        let mut w = vec![0.0; encoder.dim()];
        let unroll_feature = encoder.dim() - 2; // [.., bx, by, bz, u, c]
        w[unroll_feature] = 1.0;
        StencilRanker::new(encoder, LinearRanker::from_weights(w))
    }

    fn lap128() -> StencilInstance {
        StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(128)).unwrap()
    }

    #[test]
    fn rank_orders_by_score() {
        let r = unroll_loving_ranker();
        let cands = vec![
            TuningVector::new(8, 8, 8, 2, 1),
            TuningVector::new(8, 8, 8, 8, 1),
            TuningVector::new(8, 8, 8, 0, 1),
        ];
        let order = r.rank(&lap128(), &cands).unwrap();
        assert_eq!(order, vec![1, 0, 2]);
        assert_eq!(r.top1(&lap128(), &cands).unwrap(), Some(cands[1]));
    }

    #[test]
    fn ties_break_deterministically() {
        let r = unroll_loving_ranker();
        let cands = vec![TuningVector::new(16, 8, 8, 4, 1), TuningVector::new(8, 16, 8, 4, 2)];
        assert_eq!(r.rank(&lap128(), &cands).unwrap(), vec![0, 1]);
    }

    #[test]
    fn empty_candidates() {
        let r = unroll_loving_ranker();
        assert_eq!(r.top1(&lap128(), &[]).unwrap(), None);
        assert!(r.rank(&lap128(), &[]).unwrap().is_empty());
        assert!(r.top_k(&lap128(), &[], 3).unwrap().is_empty());
    }

    #[test]
    fn top_k_matches_rank_prefix() {
        let r = unroll_loving_ranker();
        let cands = vec![
            TuningVector::new(8, 8, 8, 2, 1),
            TuningVector::new(8, 8, 8, 8, 1),
            TuningVector::new(8, 8, 8, 0, 1),
            TuningVector::new(16, 8, 8, 8, 1), // ties with #1 on the unroll feature
        ];
        let order = r.rank(&lap128(), &cands).unwrap();
        let scores = r.scores(&lap128(), &cands).unwrap();
        for k in 0..=cands.len() + 1 {
            let top = r.top_k(&lap128(), &cands, k).unwrap();
            assert_eq!(top.len(), k.min(cands.len()));
            for (got, &want) in top.iter().zip(&order) {
                assert_eq!(got.0, cands[want], "k = {k}");
                assert_eq!(got.1, scores[want], "k = {k}");
            }
        }
    }

    #[test]
    fn inadmissible_candidate_is_an_error() {
        let r = unroll_loving_ranker();
        // bz > 1 for a 2-D instance.
        let blur = StencilInstance::new(StencilKernel::blur(), GridSize::square(512)).unwrap();
        assert!(r.scores(&blur, &[TuningVector::new(8, 8, 8, 0, 1)]).is_err());
    }

    #[test]
    fn inadmissible_candidate_error_reports_its_index() {
        let r = unroll_loving_ranker();
        let blur = StencilInstance::new(StencilKernel::blur(), GridSize::square(512)).unwrap();
        // Candidates 0 and 1 are fine; #2 has bz != 1, #3 has bx out of range.
        let cands = [
            TuningVector::new(8, 8, 1, 0, 1),
            TuningVector::new(16, 4, 1, 2, 4),
            TuningVector::new(8, 8, 8, 0, 1),
            TuningVector::new(1, 8, 1, 0, 1),
        ];
        let err = r.scores(&blur, &cands).unwrap_err();
        match &err {
            ModelError::InadmissibleCandidate { index, source } => {
                assert_eq!(*index, 2, "first offending candidate wins");
                assert!(source.to_string().contains("bz"), "{source}");
            }
            other => panic!("expected InadmissibleCandidate, got {other:?}"),
        }
        assert!(err.to_string().contains("#2"));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        StencilRanker::new(FeatureEncoder::paper_concat(), LinearRanker::zeros(3));
    }

    #[test]
    fn fingerprint_tracks_weights_and_encoder_config() {
        let r = unroll_loving_ranker();
        assert_eq!(r.fingerprint(), r.clone().fingerprint(), "deterministic");
        // Different weights: different ranking function.
        let other = StencilRanker::new(
            FeatureEncoder::paper_concat(),
            LinearRanker::zeros(FeatureEncoder::paper_concat().dim()),
        );
        assert_ne!(r.fingerprint(), other.fingerprint());
        // Same weights under a different encoding: also different (the
        // paper-concat and interaction layouts have different dims here,
        // but even the config fields alone must discriminate).
        let a = StencilRanker::new(
            FeatureEncoder::paper_concat(),
            LinearRanker::zeros(FeatureEncoder::paper_concat().dim()),
        );
        let b = StencilRanker::new(
            FeatureEncoder::default_interaction(),
            LinearRanker::zeros(FeatureEncoder::default_interaction().dim()),
        );
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_survives_a_json_roundtrip() {
        // A ranker saved and reloaded is the same ranking function, so the
        // snapshot it once validated must still validate.
        let r = unroll_loving_ranker();
        let dir = std::env::temp_dir().join("sorl-ranker-fp-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ranker.json");
        r.save_json(&path).unwrap();
        let back = StencilRanker::load_json(&path).unwrap();
        assert_eq!(r.fingerprint(), back.fingerprint());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_roundtrip() {
        let r = unroll_loving_ranker();
        let dir = std::env::temp_dir().join("sorl-ranker-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ranker.json");
        r.save_json(&path).unwrap();
        let back = StencilRanker::load_json(&path).unwrap();
        let cands = vec![TuningVector::new(8, 8, 8, 3, 1)];
        assert_eq!(r.scores(&lap128(), &cands).unwrap(), back.scores(&lap128(), &cands).unwrap());
        std::fs::remove_file(&path).ok();
    }
}
