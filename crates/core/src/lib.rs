//! Structural Ordinal Regression Learning (SORL) for stencil autotuning —
//! the paper's contribution assembled from the workspace substrates.
//!
//! # Overview
//!
//! The tuner learns, once per target machine, a *ranking function* over
//! stencil executions: given an unseen stencil instance `q = (kernel,
//! size)` and a set of candidate tuning vectors, it orders the candidates
//! by predicted performance **without executing any of them**, then returns
//! the top-ranked configuration. Training data comes from a generated
//! corpus of stencil codes whose executions are grouped into per-instance
//! partial rankings and fed to a pairwise linear ranking SVM.
//!
//! ```
//! use sorl::pipeline::{PipelineConfig, TrainingPipeline};
//! use stencil_model::{GridSize, StencilInstance, StencilKernel};
//!
//! // Train a small model (a few seconds; larger sizes rank better).
//! let outcome = TrainingPipeline::new(PipelineConfig {
//!     training_size: 960,
//!     ..Default::default()
//! })
//! .run();
//!
//! // Tune an unseen stencil: rank the predefined candidate set.
//! let tuner = sorl::tuner::StandaloneTuner::new(outcome.ranker);
//! let q = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(128)).unwrap();
//! let decision = tuner.tune(&q);
//! println!("run {} with {}", q, decision.tuning);
//! ```
//!
//! # Modules
//!
//! * [`pipeline`] — training-set generation + model fitting with phase
//!   timings (Table II),
//! * [`ranker`] — the trained model: feature encoding + linear scoring,
//!   with JSON persistence,
//! * [`tuner`] — the standalone autotuner over the hierarchical predefined
//!   configuration sets (1600 / 8640 candidates),
//! * [`session`] — [`session::TuningSession`], the batched, optionally
//!   multi-threaded hot path for serving many tuning queries back-to-back
//!   with cached candidate sets and zero steady-state allocation,
//! * [`hybrid`] — ranker-seeded iterative search (the paper's future-work
//!   coupling of the model with search),
//! * [`benchmarks`] — the 17 Table III evaluation benchmarks,
//! * [`objective`] — adapters exposing simulated machines as search
//!   objectives,
//! * [`experiments`] — shared measurement helpers for the experiment
//!   binaries in `sorl-bench`.

pub mod benchmarks;
pub mod experiments;
pub mod hybrid;
pub mod objective;
pub mod pipeline;
pub mod ranker;
pub mod session;
pub mod tuner;

pub use benchmarks::{table3_benchmarks, Benchmark};
pub use hybrid::HybridTuner;
pub use objective::MachineObjective;
pub use pipeline::{PhaseTimings, PipelineConfig, PipelineOutcome, TrainingPipeline};
pub use ranker::StencilRanker;
pub use session::{predefined_candidates, TuningSession};
pub use tuner::{RankedPredefined, StandaloneTuner, TopK, TunerDecision};
