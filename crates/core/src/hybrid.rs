//! Model-guided iterative search (the paper's Section VII future work).
//!
//! The ranker's top-ranked predefined configurations are injected into the
//! initial population of the generational GA, so the search starts from
//! model-predicted good regions instead of random points. The ablation
//! experiment (`sorl-bench`, A2) compares seeded vs. unseeded searches in
//! evaluations-to-target.

use stencil_machine::Machine;
use stencil_model::{StencilInstance, TuningSpace};
use stencil_search::{GenerationalGa, SearchResult};

use crate::objective::MachineObjective;
use crate::ranker::StencilRanker;
use crate::tuner::StandaloneTuner;

/// Ranker-seeded genetic search.
#[derive(Debug, Clone)]
pub struct HybridTuner {
    tuner: StandaloneTuner,
    /// Number of top-ranked configurations injected into the population.
    pub seeds: usize,
    /// The GA used for the search part.
    pub ga: GenerationalGa,
}

impl HybridTuner {
    /// Wraps a trained ranker with default GA parameters and 8 seeds.
    pub fn new(ranker: StencilRanker) -> Self {
        HybridTuner { tuner: StandaloneTuner::new(ranker), seeds: 8, ga: GenerationalGa::default() }
    }

    /// The wrapped standalone tuner.
    pub fn standalone(&self) -> &StandaloneTuner {
        &self.tuner
    }

    /// Runs a seeded GA of `budget` evaluations against `machine`.
    pub fn search(
        &self,
        machine: &Machine,
        instance: &StencilInstance,
        budget: usize,
        seed: u64,
    ) -> SearchResult {
        let space = TuningSpace::for_dim(instance.dim()).expect("valid dims");
        // Partial select: seeding needs the top handful, not a full sort of
        // the 1600/8640-candidate set.
        let top = self.tuner.top_k(instance, self.seeds);
        let seeds: Vec<Vec<i64>> = top.tunings().map(|t| space.to_genome(&t)).collect();
        let mut objective = MachineObjective::new(machine, instance.clone());
        let search_space = objective.search_space();
        self.ga.run_with_seeds(&search_space, &mut objective, budget, seed, &seeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{PipelineConfig, TrainingPipeline};
    use stencil_model::{GridSize, StencilKernel};
    use stencil_search::SearchAlgorithm;

    fn hybrid() -> HybridTuner {
        let out =
            TrainingPipeline::new(PipelineConfig { training_size: 1920, ..Default::default() })
                .run();
        HybridTuner::new(out.ranker)
    }

    #[test]
    fn seeded_search_runs_and_respects_budget() {
        let machine = Machine::xeon_e5_2680_v3();
        let lap = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(128)).unwrap();
        let h = hybrid();
        let res = h.search(&machine, &lap, 96, 7);
        assert_eq!(res.trace.len(), 96);
        assert!(res.best_f > 0.0);
    }

    #[test]
    fn seeding_helps_early_search() {
        // After the initial population, the seeded GA should be at least as
        // good as the unseeded one on average (it starts from the model's
        // best guesses).
        let machine = Machine::xeon_e5_2680_v3();
        let lap = StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(128)).unwrap();
        let h = hybrid();
        let mut seeded_best = 0.0;
        let mut unseeded_best = 0.0;
        for seed in 0..3u64 {
            let res = h.search(&machine, &lap, 40, seed);
            seeded_best += res.trace.best_after(40).unwrap();
            let mut obj = MachineObjective::new(&machine, lap.clone());
            let space = obj.search_space();
            let res = h.ga.run(&space, &mut obj, 40, seed);
            unseeded_best += res.trace.best_after(40).unwrap();
        }
        assert!(
            seeded_best <= unseeded_best * 1.05,
            "seeded {seeded_best} vs unseeded {unseeded_best}"
        );
    }
}
