//! Shared measurement helpers for the experiment binaries (`sorl-bench`).

use stencil_machine::Machine;
use stencil_model::{StencilExecution, StencilInstance, TuningSpace, TuningVector};
use stencil_search::runner::paper_baselines;
use stencil_search::SearchResult;

use crate::objective::MachineObjective;
use crate::tuner::StandaloneTuner;

/// Denoised runtime of one configuration: median of 5 simulated
/// repetitions — what a careful harness would report when validating a
/// chosen configuration.
pub fn measure_config(machine: &Machine, instance: &StencilInstance, t: TuningVector) -> f64 {
    let exec = StencilExecution::new(instance.clone(), t).expect("admissible tuning");
    machine.execute_median(&exec, 5).seconds
}

/// Fixed per-evaluation harness cost of iterative compilation on the
/// simulated testbed, seconds: launching the variant, allocating and
/// initializing grids, one warmup sweep. This is what makes a
/// 1024-evaluation search a minutes-to-hours affair even when individual
/// sweeps are milliseconds (Luo et al. report hours to days).
pub const EVAL_OVERHEAD_SECONDS: f64 = 0.5;

/// Simulated time-to-solution of a search run: every evaluation pays the
/// measured sweep time plus [`EVAL_OVERHEAD_SECONDS`].
pub fn search_time_to_solution(result: &SearchResult) -> f64 {
    result.trace.values().iter().sum::<f64>() + result.trace.len() as f64 * EVAL_OVERHEAD_SECONDS
}

/// Runs the paper's four search baselines for `budget` evaluations each and
/// returns `(name, result, simulated_seconds)` per engine. Each engine gets
/// a distinct RNG stream derived from `seed` so their initial samples are
/// uncorrelated.
pub fn run_baselines(
    machine: &Machine,
    instance: &StencilInstance,
    budget: usize,
    seed: u64,
) -> Vec<(&'static str, SearchResult, f64)> {
    paper_baselines()
        .iter()
        .enumerate()
        .map(|(i, algo)| {
            let mut objective = MachineObjective::new(machine, instance.clone());
            let space = objective.search_space();
            let res = algo.run(&space, &mut objective, budget, seed ^ (0x9E37 * (i as u64 + 1)));
            let tts = search_time_to_solution(&res);
            (algo.name(), res, tts)
        })
        .collect()
}

/// The tuning the ordinal-regression tuner picks, its denoised runtime and
/// the ranking latency in seconds.
pub fn orl_choice(
    tuner: &StandaloneTuner,
    machine: &Machine,
    instance: &StencilInstance,
) -> (TuningVector, f64, f64) {
    let decision = tuner.tune(instance);
    let runtime = measure_config(machine, instance, decision.tuning);
    (decision.tuning, runtime, decision.seconds)
}

/// Exhaustive oracle over the predefined set: the best configuration the
/// ORL tuner could possibly return (its quality bound, Section VI-A).
pub fn best_in_predefined(machine: &Machine, instance: &StencilInstance) -> (TuningVector, f64) {
    let space = TuningSpace::for_dim(instance.dim()).expect("valid dims");
    let mut best: Option<(TuningVector, f64)> = None;
    for t in space.predefined_set() {
        let exec = StencilExecution::new(instance.clone(), t).expect("predefined admissible");
        // Noiseless cost: this is an oracle, not a measurement.
        let secs = machine.cost(&exec).total;
        if best.is_none_or(|(_, b)| secs < b) {
            best = Some((t, secs));
        }
    }
    best.expect("predefined set non-empty")
}

/// GFlop/s of an instance for a given runtime (Fig. 5's y axis).
pub fn gflops(instance: &StencilInstance, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    instance.total_flops() as f64 / seconds / 1e9
}

/// Simple descriptive statistics of a sample (used by the Fig. 7 box/violin
/// summaries).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quartiles {
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
    pub mean: f64,
}

/// Computes min/quartiles/max/mean.
///
/// # Panics
/// Panics on an empty sample.
pub fn quartiles(values: &[f64]) -> Quartiles {
    assert!(!values.is_empty(), "quartiles of empty sample");
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let q = |p: f64| -> f64 {
        let pos = p * (v.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    };
    Quartiles {
        min: v[0],
        q1: q(0.25),
        median: q(0.5),
        q3: q(0.75),
        max: v[v.len() - 1],
        mean: values.iter().sum::<f64>() / values.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_model::{GridSize, StencilKernel};

    fn lap() -> StencilInstance {
        StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(64)).unwrap()
    }

    #[test]
    fn measure_config_is_deterministic() {
        let m = Machine::xeon_e5_2680_v3();
        let t = TuningVector::new(32, 16, 8, 2, 2);
        assert_eq!(measure_config(&m, &lap(), t), measure_config(&m, &lap(), t));
    }

    #[test]
    fn baselines_run_with_small_budget() {
        let m = Machine::xeon_e5_2680_v3();
        let results = run_baselines(&m, &lap(), 40, 1);
        assert_eq!(results.len(), 4);
        for (name, res, wall) in &results {
            assert_eq!(res.trace.len(), 40, "{name}");
            assert!(*wall >= 0.0);
        }
    }

    #[test]
    fn oracle_beats_or_matches_any_predefined_config() {
        let m = Machine::xeon_e5_2680_v3();
        let (best_t, best_s) = best_in_predefined(&m, &lap());
        let space = TuningSpace::d3();
        assert!(space.contains(&best_t));
        for t in space.predefined_set().into_iter().step_by(500) {
            let exec = StencilExecution::new(lap(), t).unwrap();
            assert!(m.cost(&exec).total >= best_s - 1e-15);
        }
    }

    #[test]
    fn quartiles_of_known_sample() {
        let q = quartiles(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(q.min, 1.0);
        assert_eq!(q.median, 3.0);
        assert_eq!(q.q1, 2.0);
        assert_eq!(q.q3, 4.0);
        assert_eq!(q.max, 5.0);
        assert_eq!(q.mean, 3.0);
    }

    #[test]
    fn quartiles_interpolate() {
        let q = quartiles(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(q.q1, 1.75);
        assert_eq!(q.median, 2.5);
        assert_eq!(q.q3, 3.25);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn quartiles_reject_empty() {
        quartiles(&[]);
    }

    #[test]
    fn gflops_positive() {
        let g = gflops(&lap(), 1e-3);
        assert!(g > 0.0);
        assert_eq!(gflops(&lap(), 0.0), 0.0);
    }
}
