//! Search-objective adapters over the simulated machine.

use stencil_machine::Machine;
use stencil_model::{StencilExecution, StencilInstance, TuningSpace};
use stencil_search::{IntSpace, Objective};

/// Exposes "compile and run this tuning on the machine" as a black-box
/// search objective, the operation iterative compilation pays per
/// evaluation.
///
/// Each call draws a fresh noise repetition, so re-evaluating the same
/// configuration returns a fresh (noisy) measurement — like a real run.
pub struct MachineObjective<'m> {
    machine: &'m Machine,
    instance: StencilInstance,
    space: TuningSpace,
    evals: u32,
}

impl<'m> MachineObjective<'m> {
    /// Creates the objective for one instance.
    pub fn new(machine: &'m Machine, instance: StencilInstance) -> Self {
        let space = TuningSpace::for_dim(instance.dim()).expect("instance dims valid");
        MachineObjective { machine, instance, space, evals: 0 }
    }

    /// The tuning space of the instance (genome layout).
    pub fn tuning_space(&self) -> TuningSpace {
        self.space
    }

    /// The genome search space matching [`Self::tuning_space`].
    pub fn search_space(&self) -> IntSpace {
        IntSpace::new(self.space.genome_bounds(), self.space.genome_log_scaled())
    }

    /// Number of evaluations performed.
    pub fn evals(&self) -> u32 {
        self.evals
    }
}

impl Objective for MachineObjective<'_> {
    fn eval(&mut self, x: &[i64]) -> f64 {
        let tuning = self.space.from_genome(x).expect("genome matches space");
        let exec = StencilExecution::new(self.instance.clone(), tuning)
            .expect("clamped tuning is admissible");
        let rep = self.evals;
        self.evals += 1;
        self.machine.execute_rep(&exec, rep).seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_model::{GridSize, StencilKernel};

    fn lap() -> StencilInstance {
        StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(64)).unwrap()
    }

    #[test]
    fn objective_evaluates_genomes() {
        let m = Machine::xeon_e5_2680_v3();
        let mut obj = MachineObjective::new(&m, lap());
        let space = obj.search_space();
        assert_eq!(space.len(), 5);
        let secs = obj.eval(&[32, 32, 16, 2, 2]);
        assert!(secs > 0.0);
        assert_eq!(obj.evals(), 1);
    }

    #[test]
    fn repeated_evals_differ_by_noise() {
        let m = Machine::xeon_e5_2680_v3();
        let mut obj = MachineObjective::new(&m, lap());
        let a = obj.eval(&[32, 32, 16, 2, 2]);
        let b = obj.eval(&[32, 32, 16, 2, 2]);
        assert_ne!(a, b);
        assert!((a / b - 1.0).abs() < 0.3, "noise should be small");
    }

    #[test]
    fn two_d_instances_use_four_genes() {
        let m = Machine::xeon_e5_2680_v3();
        let blur = StencilInstance::new(StencilKernel::blur(), GridSize::square(512)).unwrap();
        let mut obj = MachineObjective::new(&m, blur);
        assert_eq!(obj.search_space().len(), 4);
        let secs = obj.eval(&[64, 8, 2, 4]);
        assert!(secs > 0.0);
    }

    #[test]
    fn out_of_bounds_genomes_are_clamped_not_fatal() {
        let m = Machine::xeon_e5_2680_v3();
        let mut obj = MachineObjective::new(&m, lap());
        let secs = obj.eval(&[1 << 30, -5, 3, 100, 0]);
        assert!(secs > 0.0);
    }
}
