//! The 17 evaluation benchmarks of Table III.

use stencil_model::{GridSize, StencilInstance, StencilKernel};

/// One evaluation benchmark: a Table III kernel at a concrete size.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Display name, e.g. `"laplacian 128x128x128"`.
    pub name: String,
    /// The instance to tune.
    pub instance: StencilInstance,
}

impl Benchmark {
    fn new(kernel: StencilKernel, size: GridSize) -> Self {
        let instance = StencilInstance::new(kernel, size).expect("Table III benchmark is valid");
        Benchmark { name: instance.id().replace('/', " "), instance }
    }
}

/// The 17 test benchmarks in the paper's Fig. 4 order.
pub fn table3_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark::new(StencilKernel::blur(), GridSize::square(1024)),
        Benchmark::new(StencilKernel::blur(), GridSize::d2(1024, 768)),
        Benchmark::new(StencilKernel::wave(), GridSize::cube(128)),
        Benchmark::new(StencilKernel::wave(), GridSize::cube(256)),
        Benchmark::new(StencilKernel::tricubic(), GridSize::cube(128)),
        Benchmark::new(StencilKernel::tricubic(), GridSize::cube(256)),
        Benchmark::new(StencilKernel::edge(), GridSize::square(512)),
        Benchmark::new(StencilKernel::edge(), GridSize::square(1024)),
        Benchmark::new(StencilKernel::game_of_life(), GridSize::square(512)),
        Benchmark::new(StencilKernel::game_of_life(), GridSize::square(1024)),
        Benchmark::new(StencilKernel::divergence(), GridSize::cube(128)),
        Benchmark::new(StencilKernel::gradient(), GridSize::cube(128)),
        Benchmark::new(StencilKernel::gradient(), GridSize::cube(256)),
        Benchmark::new(StencilKernel::laplacian(), GridSize::cube(128)),
        Benchmark::new(StencilKernel::laplacian(), GridSize::cube(256)),
        Benchmark::new(StencilKernel::laplacian6(), GridSize::cube(128)),
        Benchmark::new(StencilKernel::laplacian6(), GridSize::cube(256)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_benchmarks() {
        assert_eq!(table3_benchmarks().len(), 17);
    }

    #[test]
    fn names_are_unique() {
        let b = table3_benchmarks();
        let mut names: Vec<&str> = b.iter().map(|x| x.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 17);
    }

    #[test]
    fn nine_distinct_kernels() {
        let b = table3_benchmarks();
        let mut kernels: Vec<&str> = b.iter().map(|x| x.instance.kernel().name()).collect();
        kernels.sort();
        kernels.dedup();
        assert_eq!(kernels.len(), 9);
    }

    #[test]
    fn divergence_appears_once() {
        let n = table3_benchmarks()
            .iter()
            .filter(|b| b.instance.kernel().name() == "divergence")
            .count();
        assert_eq!(n, 1);
    }

    #[test]
    fn blur_sizes_match_table() {
        let sizes: Vec<GridSize> = table3_benchmarks()
            .iter()
            .filter(|b| b.instance.kernel().name() == "blur")
            .map(|b| b.instance.size())
            .collect();
        assert_eq!(sizes, vec![GridSize::square(1024), GridSize::d2(1024, 768)]);
    }
}
