//! Property tests for the explicit-SIMD scoring kernel: the dispatched
//! kernel (AVX2 where the host has it, the portable loop otherwise) must
//! be **bit-for-bit** identical to the portable reference — same inputs,
//! same bits, no epsilon — over both predefined candidate sets, under
//! both feature encodings, for arbitrary weight landscapes.
//!
//! This is the invariant that makes the SIMD path deployable at all: a
//! fleet mixing AVX2 and non-AVX2 hosts must hand out identical scores
//! (and therefore identical rankings, tie-breaks and cache contents) for
//! identical requests.

use proptest::prelude::*;

use ranksvm::kernel;
use sorl::session::predefined_candidates;
use stencil_model::{CandidateMatrix, FeatureEncoder, GridSize, StencilInstance, StencilKernel};

/// One instance per dimensionality, with a case-varied size.
fn instance(dim: u8, step: u32) -> StencilInstance {
    match dim {
        2 => {
            StencilInstance::new(StencilKernel::blur(), GridSize::square(256 + 64 * step)).unwrap()
        }
        _ => StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(48 + 16 * step))
            .unwrap(),
    }
}

/// Deterministic xorshift weights in [-0.5, 0.5) seeded per case, so
/// different cases exercise different score landscapes (including sign
/// flips and catastrophic cancellation) without a training run.
fn seeded_weights(dim: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..dim)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The dispatched kernel reproduces the portable reduction exactly on
    /// every row of both predefined sets (1600 rows in 2-D, 8640 in 3-D),
    /// under both the paper's concat encoding and the interaction
    /// encoding — comparing `to_bits`, not values, so `-0.0` vs `0.0` and
    /// NaN payloads would be caught too.
    #[test]
    fn dispatched_kernel_matches_portable_bitwise_on_both_predefined_sets(
        seed in 1u64..u64::MAX,
        step in 0u32..6,
        interaction in proptest::bool::ANY,
    ) {
        let encoder = if interaction {
            FeatureEncoder::default_interaction()
        } else {
            FeatureEncoder::paper_concat()
        };
        for dim in [2u8, 3] {
            let q = instance(dim, step);
            let qf = encoder.query_features(&q);
            let candidates = predefined_candidates(dim);
            let mut matrix = CandidateMatrix::with_row_capacity(encoder.dim(), candidates.len());
            for &t in candidates {
                matrix.push_row_with(|out| encoder.append_candidate(&qf, t, out));
            }
            let w = seeded_weights(encoder.dim(), seed);
            let mut dispatched = vec![0.0f64; matrix.rows()];
            let mut portable = vec![0.0f64; matrix.rows()];
            kernel::score_rows_into(&w, matrix.rows_data(), matrix.stride(), &mut dispatched);
            kernel::score_rows_portable(&w, matrix.rows_data(), matrix.stride(), &mut portable);
            for (i, (a, b)) in dispatched.iter().zip(portable.iter()).enumerate() {
                prop_assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "row {} of the dim-{} predefined set diverges under the {:?} kernel",
                    i,
                    dim,
                    kernel::active_kernel()
                );
            }
        }
    }
}
