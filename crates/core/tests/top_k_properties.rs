//! Property tests for the top-k serving path and the batch pipeline.
//!
//! Two invariants carry the serving layer's correctness:
//!
//! 1. `top_k(k)` is **exactly** the first `k` entries of the full `rank()`
//!    ordering — same order, same tie-breaks — on both predefined sets,
//!    for any `k` and any instance. (The partial select must be
//!    indistinguishable from sort-then-truncate.)
//! 2. `tune_batch` / `top_k_batch` are bit-for-bit equal to per-instance
//!    loops: pipelining queries through one scoring pass must not change a
//!    single score, pick or tie-break.

use proptest::prelude::*;

use ranksvm::LinearRanker;
use sorl::session::{predefined_candidates, TuningSession};
use sorl::tuner::StandaloneTuner;
use sorl::StencilRanker;
use stencil_model::{FeatureEncoder, GridSize, StencilInstance, StencilKernel};

/// Deterministic dense synthetic ranker seeded per case, so different
/// cases exercise different score landscapes without a training run.
fn dense_ranker(seed: u64) -> StencilRanker {
    let encoder = FeatureEncoder::default_interaction();
    let mut state = seed | 1;
    let w: Vec<f64> = (0..encoder.dim())
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        })
        .collect();
    StencilRanker::new(encoder, LinearRanker::from_weights(w))
}

/// A ranker with a single non-zero weight (on the unroll feature of the
/// concat block): only 9 distinct scores over 8640 candidates, so ties are
/// massive and the tie-break rule carries the whole ordering.
fn tie_heavy_ranker() -> StencilRanker {
    let encoder = FeatureEncoder::paper_concat();
    let mut w = vec![0.0; encoder.dim()];
    let unroll_feature = encoder.dim() - 2; // [.., bx, by, bz, u, c]
    w[unroll_feature] = 1.0;
    StencilRanker::new(encoder, LinearRanker::from_weights(w))
}

/// One instance per dimensionality, with a case-varied size.
fn instance(dim: u8, step: u32) -> StencilInstance {
    match dim {
        2 => {
            StencilInstance::new(StencilKernel::blur(), GridSize::square(256 + 64 * step)).unwrap()
        }
        _ => StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(48 + 16 * step))
            .unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariant 1, dense scores: `top_k(k)` == `rank()[..k]` on both
    /// predefined sets for arbitrary k (including 0 and past-the-end).
    #[test]
    fn top_k_equals_rank_prefix_on_both_predefined_sets(
        seed in 1u64..u64::MAX,
        step in 0u32..8,
        k in 0usize..12_000,
    ) {
        let tuner = StandaloneTuner::new(dense_ranker(seed));
        for dim in [2u8, 3] {
            let q = instance(dim, step);
            let set = predefined_candidates(dim);
            let ranked = tuner.rank_predefined(&q);
            let scores = tuner.ranker().scores(&q, set).unwrap();
            let top = tuner.top_k(&q, k);
            prop_assert_eq!(top.len(), k.min(set.len()));
            prop_assert_eq!(top.candidates, set.len());
            for (r, &(t, s)) in top.entries.iter().enumerate() {
                prop_assert_eq!(t, ranked.get(r), "dim {} rank {}", dim, r);
                prop_assert_eq!(s, scores[ranked.order()[r]], "dim {} rank {}", dim, r);
            }
        }
    }

    /// Invariant 1 under massive ties: with only 9 distinct score values
    /// the prefix property holds only if the partial select breaks ties
    /// exactly like the full sort (ascending candidate index).
    #[test]
    fn top_k_breaks_ties_exactly_like_rank(
        step in 0u32..8,
        k in 1usize..2_000,
    ) {
        let tuner = StandaloneTuner::new(tie_heavy_ranker());
        for dim in [2u8, 3] {
            let q = instance(dim, step);
            let ranked = tuner.rank_predefined(&q);
            let top = tuner.top_k(&q, k);
            for (r, t) in top.tunings().enumerate() {
                prop_assert_eq!(t, ranked.get(r), "dim {} rank {}", dim, r);
            }
        }
    }

    /// Invariant 2: a batch of mixed-dimensionality queries pipelined
    /// through one scoring pass answers bit-for-bit like per-instance
    /// loops, in sequential and parallel sessions alike.
    #[test]
    fn tune_batch_is_bit_for_bit_equal_to_tune_loops(
        seed in 1u64..u64::MAX,
        steps in prop::collection::vec((0u32..6, any::<bool>()), 1..7),
        threads in 1usize..5,
        k in 1usize..24,
    ) {
        let ranker = dense_ranker(seed);
        let mut batched = TuningSession::parallel(ranker.clone(), threads);
        let mut looped = TuningSession::new(ranker);
        let instances: Vec<StencilInstance> =
            steps.iter().map(|&(s, is_2d)| instance(if is_2d { 2 } else { 3 }, s)).collect();

        let batch = batched.tune_batch(&instances);
        prop_assert_eq!(batch.len(), instances.len());
        for (q, d) in instances.iter().zip(&batch) {
            let reference = looped.tune(q);
            prop_assert_eq!(d.tuning, reference.tuning, "{}", q);
            prop_assert_eq!(d.score, reference.score, "{}", q);
            prop_assert_eq!(d.candidates, reference.candidates, "{}", q);
        }

        let queries: Vec<(&StencilInstance, usize)> =
            instances.iter().map(|q| (q, k)).collect();
        let tops = batched.top_k_batch(&queries);
        for (q, top) in instances.iter().zip(&tops) {
            let reference = looped.top_k_predefined(q, k);
            prop_assert_eq!(&top.entries, &reference.entries, "{} k = {}", q, k);
        }
    }
}
