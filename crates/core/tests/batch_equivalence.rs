//! The batched/parallel scoring pipeline must be a pure refactor: on both
//! predefined candidate sets it has to reproduce the legacy per-candidate
//! path (clone instance, construct a `StencilExecution`, encode, score)
//! bit for bit, for both feature layouts and any thread count.

use rand::{Rng, SeedableRng};

use ranksvm::LinearRanker;
use sorl::session::{predefined_candidates, TuningSession};
use sorl::StencilRanker;
use stencil_model::{
    EncodingKind, FeatureEncoder, GridSize, StencilExecution, StencilInstance, StencilKernel,
    TuningVector,
};

/// A ranker with dense pseudo-random weights so every feature component
/// participates in the score — a discrepancy anywhere in a row shows up.
fn dense_ranker(kind: EncodingKind) -> StencilRanker {
    let encoder = match kind {
        EncodingKind::PaperConcat => FeatureEncoder::paper_concat(),
        EncodingKind::Interaction => FeatureEncoder::default_interaction(),
    };
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xC0FFEE);
    let w: Vec<f64> = (0..encoder.dim()).map(|_| rng.random_range(-1.0..1.0)).collect();
    StencilRanker::new(encoder, LinearRanker::from_weights(w))
}

/// The pre-refactor scoring loop, reproduced verbatim: per-candidate
/// instance clone + `StencilExecution::new` (which constructs a fresh
/// `TuningSpace`) + `encode_into` + single-row score.
fn legacy_scores(
    ranker: &StencilRanker,
    instance: &StencilInstance,
    candidates: &[TuningVector],
) -> Vec<f64> {
    let mut features = Vec::with_capacity(ranker.encoder().dim());
    candidates
        .iter()
        .map(|&t| {
            let exec = StencilExecution::new(instance.clone(), t).expect("admissible");
            ranker.encoder().encode_into(&exec, &mut features);
            ranker.model().score(&features)
        })
        .collect()
}

fn instances() -> Vec<StencilInstance> {
    vec![
        StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(128)).unwrap(),
        StencilInstance::new(StencilKernel::wave(), GridSize::cube(96)).unwrap(),
        StencilInstance::new(StencilKernel::blur(), GridSize::square(1024)).unwrap(),
        StencilInstance::new(StencilKernel::edge(), GridSize::d2(512, 384)).unwrap(),
    ]
}

#[test]
fn batched_path_matches_legacy_on_full_predefined_sets() {
    for kind in [EncodingKind::PaperConcat, EncodingKind::Interaction] {
        let ranker = dense_ranker(kind);
        for q in instances() {
            let candidates = predefined_candidates(q.dim());
            assert_eq!(candidates.len(), if q.dim() == 2 { 1600 } else { 8640 });
            let legacy = legacy_scores(&ranker, &q, candidates);
            let batched = ranker.scores(&q, candidates).unwrap();
            // Bit-for-bit: exact f64 equality, no tolerance.
            assert_eq!(batched, legacy, "{kind:?} / {q}");
        }
    }
}

#[test]
fn parallel_sessions_match_legacy_for_any_thread_count() {
    let ranker = dense_ranker(EncodingKind::Interaction);
    for q in instances() {
        let candidates = predefined_candidates(q.dim());
        let legacy = legacy_scores(&ranker, &q, candidates);
        for threads in [1usize, 2, 3, 8] {
            let mut session = TuningSession::parallel(ranker.clone(), threads);
            let scores = session.scores(&q, candidates).unwrap();
            assert_eq!(scores, &legacy[..], "threads = {threads}, {q}");
        }
    }
}

#[test]
fn one_pool_survives_many_ranking_epochs() {
    // Stress the persistent pool from the ranking side: one session, many
    // epochs, interleaved dimensionalities, always identical to legacy.
    let ranker = dense_ranker(EncodingKind::Interaction);
    let mut session = TuningSession::parallel(ranker.clone(), 4);
    let qs = instances();
    for epoch in 0..60 {
        let q = &qs[epoch % qs.len()];
        let candidates = predefined_candidates(q.dim());
        let d = session.tune(q);
        let legacy = legacy_scores(&ranker, q, candidates);
        let best = (0..legacy.len()).max_by(|&a, &b| legacy[a].total_cmp(&legacy[b])).unwrap();
        assert_eq!(d.tuning, candidates[best], "epoch {epoch}");
        assert_eq!(d.score, legacy[best], "epoch {epoch}");
    }
}
