//! The shard transport abstraction: how the router talks to one shard.
//!
//! [`ShardTransport`] is the seam between routing policy and deployment
//! topology. Today there is one implementation — [`LocalShard`], an
//! in-process [`TuneService`] — but every method is designed to survive a
//! process boundary: requests and answers are plain data, and cache
//! filters are [`CacheSlice`] values (serializable ownership descriptions)
//! rather than closures, so a TCP/RPC transport can forward them verbatim.
//! Fallibility is part of the contract — a local shard only fails when its
//! worker is gone, a remote one can fail for all the usual reasons.

use sorl::tuner::TopK;
use sorl::StencilRanker;
use sorl_obs::TraceId;
use sorl_serve::{CacheSnapshot, ServeConfig, ServeError, ServeStats, TuneClient, TuneService};
use stencil_model::StencilInstance;

use crate::routing::CacheSlice;
use crate::wire::TraceDumpReply;

/// A router's connection to one shard of the tuning fleet.
///
/// `Send + Sync` is part of the contract: a router is shared across the
/// client threads of a saturating workload, so every transport must take
/// concurrent calls (the multiplexing [`TcpShard`](crate::TcpShard)
/// pipelines them over one connection; [`LocalShard`] hands each caller a
/// queue submission).
pub trait ShardTransport: Send + Sync {
    /// Answers one tuning query (the `k` best configurations).
    fn tune(&self, instance: StencilInstance, k: usize) -> Result<TopK, ServeError>;

    /// Fingerprint of the ranking function the shard serves with. The
    /// router requires every shard of a fleet to agree — decisions are
    /// model outputs and must be interchangeable across shards.
    fn ranker_fingerprint(&self) -> Result<u64, ServeError>;

    /// The shard's serving counters.
    fn stats(&self) -> Result<ServeStats, ServeError>;

    /// Copies the decisions in `slice` out of the shard's cache (the
    /// cache keeps them).
    fn export_cache(&self, slice: &CacheSlice) -> Result<CacheSnapshot, ServeError>;

    /// Removes and returns the decisions in `slice` — the ownership
    /// handoff of a topology change.
    fn extract_cache(&self, slice: &CacheSlice) -> Result<CacheSnapshot, ServeError>;

    /// Replays a snapshot into the shard's cache. Rejected (with
    /// [`ServeError::Snapshot`]) when the snapshot's ranker fingerprint or
    /// format version does not match. Returns the entries applied.
    fn import_cache(&self, snapshot: CacheSnapshot) -> Result<usize, ServeError>;

    /// Exports the shard's flight recorder (optionally filtered to one
    /// trace) and its resident slow-request exemplars — the per-shard
    /// half of fleet trace assembly.
    fn trace_dump(&self, trace: Option<TraceId>) -> Result<TraceDumpReply, ServeError>;
}

/// An in-process shard: a [`TuneService`] owned by this transport.
///
/// Dropping the `LocalShard` shuts the service down (this is how a demo —
/// or a test — "kills" a shard).
#[derive(Debug)]
pub struct LocalShard {
    service: TuneService,
    client: TuneClient,
}

impl LocalShard {
    /// Spawns a fresh in-process shard.
    pub fn spawn(ranker: StencilRanker, config: ServeConfig) -> Self {
        let service = TuneService::spawn(ranker, config);
        let client = service.client();
        LocalShard { service, client }
    }

    /// Spawns a shard and immediately warms its cache from `snapshot`
    /// (e.g. one saved by a previous incarnation before it went down).
    /// Returns the shard and the number of restored decisions.
    pub fn spawn_warm(
        ranker: StencilRanker,
        config: ServeConfig,
        snapshot: CacheSnapshot,
    ) -> Result<(Self, usize), ServeError> {
        let shard = Self::spawn(ranker, config);
        let restored = shard.service.import_cache(snapshot)?;
        Ok((shard, restored))
    }

    /// The underlying service (for snapshots, stats, extra clients).
    pub fn service(&self) -> &TuneService {
        &self.service
    }
}

impl ShardTransport for LocalShard {
    fn tune(&self, instance: StencilInstance, k: usize) -> Result<TopK, ServeError> {
        self.client.tune(instance, k)
    }

    fn ranker_fingerprint(&self) -> Result<u64, ServeError> {
        Ok(self.service.ranker_fingerprint())
    }

    fn stats(&self) -> Result<ServeStats, ServeError> {
        Ok(self.service.stats())
    }

    fn export_cache(&self, slice: &CacheSlice) -> Result<CacheSnapshot, ServeError> {
        self.service.export_cache(slice.clone().into_matcher())
    }

    fn extract_cache(&self, slice: &CacheSlice) -> Result<CacheSnapshot, ServeError> {
        self.service.extract_cache(slice.clone().into_matcher())
    }

    fn import_cache(&self, snapshot: CacheSnapshot) -> Result<usize, ServeError> {
        self.service.import_cache(snapshot)
    }

    fn trace_dump(&self, trace: Option<TraceId>) -> Result<TraceDumpReply, ServeError> {
        Ok(TraceDumpReply {
            dump: self.service.flight_recorder().dump("local", trace),
            exemplars: self.service.exemplars().exemplars(),
        })
    }
}
