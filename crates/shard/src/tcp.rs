//! The cross-host shard transport: [`TcpShard`] (a router's connection to
//! a shard in another process or on another host) and [`ShardServer`] (the
//! accept loop that fronts a [`TuneService`] with the wire protocol).
//!
//! Both ends speak the framed protocol of [`crate::wire`]: every request
//! is one frame, every answer one frame or a chunked snapshot stream, and
//! anything malformed — wrong magic or version, garbage bytes, a peer
//! closing mid-request, a corrupted snapshot chunk — surfaces as
//! [`ServeError::Transport`] on the caller without touching any cache or
//! topology (the router's error paths are side-effect-free by
//! construction).
//!
//! A `TcpShard` holds **one** connection (the router's link to that
//! shard), lazily (re)established: after a transport error the connection
//! is dropped and the next call dials fresh, so a restarted shard server
//! is picked up without router surgery. There is deliberately no retry
//! loop inside a call — reconnect-with-backoff policy belongs to the
//! operator layer (see ROADMAP).
//!
//! The server spawns one connection-handler thread per accepted router
//! link; handlers hold the service only weakly, so dropping the
//! [`ShardServer`] shuts the underlying service down even while
//! connections are open (subsequent requests on them are answered with a
//! `closed` fault).

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex, Weak};
use std::time::Duration;

use sorl::tuner::TopK;
use sorl_serve::{CacheSnapshot, ServeError, ServeStats, SnapshotHeader, TuneRequest, TuneService};
use stencil_model::StencilInstance;

use crate::routing::CacheSlice;
use crate::transport::ShardTransport;
use crate::wire::{self, FrameKind};

/// Default per-call socket timeout (reads and writes). A tuning pass is
/// milliseconds; a peer silent this long is treated as gone.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A [`ShardTransport`] over one TCP connection to a [`ShardServer`].
#[derive(Debug)]
pub struct TcpShard {
    addr: SocketAddr,
    timeout: Duration,
    stream: Mutex<Option<TcpStream>>,
}

impl TcpShard {
    /// Connects to a shard server, verifying reachability eagerly (the
    /// connection is then kept for subsequent calls).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with(addr, DEFAULT_IO_TIMEOUT)
    }

    /// Like [`connect`](Self::connect) with an explicit socket timeout
    /// for every read and write.
    pub fn connect_with(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let shard = TcpShard { addr, timeout, stream: Mutex::new(None) };
        let stream = shard.dial()?;
        *shard.stream.lock().expect("tcp shard lock") = Some(stream);
        Ok(shard)
    }

    /// The server address this shard dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn dial(&self) -> io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        Ok(stream)
    }

    /// Runs one request/response exchange on the link. The connection is
    /// (re)dialed if needed; on a transport-level failure it is dropped,
    /// so the next call starts clean (e.g. against a restarted server).
    fn call<T>(
        &self,
        f: impl FnOnce(&mut TcpStream) -> Result<T, ServeError>,
    ) -> Result<T, ServeError> {
        let mut guard = self.stream.lock().expect("tcp shard lock");
        if guard.is_none() {
            *guard =
                Some(self.dial().map_err(|e| {
                    ServeError::Transport(format!("connect to {}: {e}", self.addr))
                })?);
        }
        let result = f(guard.as_mut().expect("stream just ensured"));
        if matches!(result, Err(ServeError::Transport(_))) {
            // Unknown stream state (half-written frame, desynced peer):
            // poison the link; the next call dials fresh.
            *guard = None;
        }
        result
    }
}

impl ShardTransport for TcpShard {
    fn tune(&self, instance: StencilInstance, k: usize) -> Result<TopK, ServeError> {
        self.call(|stream| {
            let req = TuneRequest::new(instance, k);
            wire::write_frame(stream, FrameKind::Tune, &wire::to_payload(&req))?;
            let payload = wire::expect_frame(stream, FrameKind::TuneOk, "tune answer")?;
            wire::from_payload(&payload)
        })
    }

    fn ranker_fingerprint(&self) -> Result<u64, ServeError> {
        self.call(|stream| {
            wire::write_frame(stream, FrameKind::Fingerprint, &[])?;
            let payload = wire::expect_frame(stream, FrameKind::FingerprintOk, "fingerprint")?;
            wire::from_payload(&payload)
        })
    }

    fn stats(&self) -> Result<ServeStats, ServeError> {
        self.call(|stream| {
            wire::write_frame(stream, FrameKind::Stats, &[])?;
            let payload = wire::expect_frame(stream, FrameKind::StatsOk, "stats")?;
            wire::from_payload(&payload)
        })
    }

    fn export_cache(&self, slice: &CacheSlice) -> Result<CacheSnapshot, ServeError> {
        self.call(|stream| {
            wire::write_frame(stream, FrameKind::ExportCache, &wire::to_payload(slice))?;
            wire::read_snapshot_stream(stream)
        })
    }

    fn extract_cache(&self, slice: &CacheSlice) -> Result<CacheSnapshot, ServeError> {
        self.call(|stream| {
            wire::write_frame(stream, FrameKind::ExtractCache, &wire::to_payload(slice))?;
            wire::read_snapshot_stream(stream)
        })
    }

    fn import_cache(&self, snapshot: CacheSnapshot) -> Result<usize, ServeError> {
        self.call(|stream| {
            let (header, chunks) = snapshot.to_chunks(wire::CHUNK_ENTRIES);
            wire::write_frame(stream, FrameKind::ImportCache, &wire::to_payload(&header))?;
            wire::write_chunk_frames(stream, &chunks)?;
            let payload = wire::expect_frame(stream, FrameKind::ImportOk, "import answer")?;
            wire::from_payload(&payload)
        })
    }
}

/// A TCP server fronting one [`TuneService`] — the in-process half of
/// `sorl-shardd`.
///
/// [`spawn`](Self::spawn) binds, then accepts on a background thread; one
/// handler thread serves each accepted connection (a router holds one
/// link per shard, so the thread count tracks the number of routers).
/// The server owns the service; handlers only hold it weakly, so dropping
/// the `ShardServer` shuts the service down deterministically even while
/// router links are open.
#[derive(Debug)]
pub struct ShardServer {
    service: Arc<TuneService>,
    addr: SocketAddr,
    closing: Arc<std::sync::atomic::AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ShardServer {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// accepting router links.
    pub fn spawn(service: TuneService, addr: impl ToSocketAddrs) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let service = Arc::new(service);
        let weak = Arc::downgrade(&service);
        let closing = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let closing_flag = Arc::clone(&closing);
        let accept_thread = std::thread::Builder::new()
            .name("sorl-shardd-accept".into())
            .spawn(move || accept_loop(&listener, &weak, &closing_flag))?;
        Ok(ShardServer { service, addr, closing, accept_thread: Some(accept_thread) })
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying service (for local snapshots, stats, warm imports).
    pub fn service(&self) -> &TuneService {
        &self.service
    }
}

impl Drop for ShardServer {
    fn drop(&mut self) {
        // Stop the accept loop deterministically so the listener (and its
        // port) is released now, not at process exit: raise the closing
        // flag, then poke the listener with a throwaway connection to wake
        // the blocking `accept`. Joining only makes sense if the poke
        // landed — otherwise the loop may still be parked in `accept` and
        // the join would hang (it then dies with the process, the
        // pre-existing behavior).
        self.closing.store(true, std::sync::atomic::Ordering::SeqCst);
        let mut poke_addr = self.addr;
        if poke_addr.ip().is_unspecified() {
            poke_addr.set_ip(match poke_addr {
                SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            });
        }
        let poked = TcpStream::connect_timeout(&poke_addr, Duration::from_secs(1)).is_ok();
        if let Some(thread) = self.accept_thread.take() {
            if poked {
                let _ = thread.join();
            }
        }
        // `service` drops next, shutting the worker down; open connection
        // handlers notice the dead Weak within one idle poll and exit.
    }
}

fn accept_loop(
    listener: &TcpListener,
    service: &Weak<TuneService>,
    closing: &std::sync::atomic::AtomicBool,
) {
    for stream in listener.incoming() {
        if closing.load(std::sync::atomic::Ordering::SeqCst) {
            return; // drops the listener, releasing the port
        }
        let Ok(stream) = stream else {
            // Persistent accept errors (EMFILE when the fd limit is hit,
            // ECONNABORTED storms) would otherwise spin this loop at 100%
            // CPU; a short sleep sheds load until the condition clears.
            std::thread::sleep(Duration::from_millis(50));
            continue;
        };
        let service = Weak::clone(service);
        let name = "sorl-shardd-conn".to_string();
        let _ = std::thread::Builder::new()
            .name(name)
            .spawn(move || handle_connection(stream, &service));
    }
}

/// How long a handler waits for the *rest* of a frame once its first byte
/// arrived, and for any write. An idle link (no frame in flight) is
/// healthy and waits forever; a peer that stalls mid-frame is gone.
const SERVER_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Blocks until the peer sends the first byte of the next frame.
/// `Ok(None)` means the link is done (peer closed, or our service is
/// gone); timeouts while *idle* just keep waiting — but each wakeup
/// re-checks the service so abandoned handlers exit instead of parking
/// forever.
fn await_first_byte(stream: &mut TcpStream, service: &Weak<TuneService>) -> Option<u8> {
    let mut first = [0u8; 1];
    loop {
        match stream.read(&mut first) {
            Ok(0) => return None, // EOF: peer hung up
            Ok(_) => return Some(first[0]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if service.strong_count() == 0 {
                    let _ = wire::write_frame(
                        stream,
                        FrameKind::Error,
                        &wire::encode_fault(&ServeError::Closed),
                    );
                    return None;
                }
            }
            Err(_) => return None,
        }
    }
}

/// Serves one router link until the peer goes away or violates the
/// protocol. Well-framed application errors are answered with an error
/// frame and the link stays up; anything that desyncs the stream gets a
/// best-effort error frame and the connection is closed. The socket
/// timeouts only bite *mid-frame* (or on stalled writes): waiting for the
/// start of the next request is untimed, so idle router links stay up.
fn handle_connection(mut stream: TcpStream, service: &Weak<TuneService>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(SERVER_IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SERVER_IO_TIMEOUT));
    loop {
        let Some(first) = await_first_byte(&mut stream, service) else { return };
        let (kind, payload) = match wire::read_frame_after(&mut stream, first) {
            Ok(frame) => frame,
            Err(wire::WireError::Io(_)) => return, // peer died (or stalled) mid-frame
            Err(violation) => {
                let fault = ServeError::Transport(violation.to_string());
                let _ =
                    wire::write_frame(&mut stream, FrameKind::Error, &wire::encode_fault(&fault));
                return;
            }
        };
        let Some(service) = service.upgrade() else {
            let _ = wire::write_frame(
                &mut stream,
                FrameKind::Error,
                &wire::encode_fault(&ServeError::Closed),
            );
            return;
        };
        if serve_request(&mut stream, kind, &payload, &service).is_err() {
            return;
        }
    }
}

/// Outcome of one request: `Ok` keeps the link, `Err` closes it.
type LinkState = Result<(), ()>;

fn serve_request(
    stream: &mut TcpStream,
    kind: FrameKind,
    payload: &[u8],
    service: &TuneService,
) -> LinkState {
    match kind {
        FrameKind::Tune => {
            let answer = wire::from_payload::<TuneRequest>(payload)
                .and_then(|req| {
                    // Deserialization bypasses `StencilInstance::new`'s
                    // invariants (positive extents, kernel/grid dimension
                    // agreement); re-validate so a malformed wire instance
                    // is rejected here instead of poisoning the scoring
                    // pipeline and the cache.
                    let instance =
                        StencilInstance::new(req.instance.kernel().clone(), req.instance.size())
                            .map_err(|e| ServeError::Transport(format!("invalid instance: {e}")))?;
                    Ok((instance, req.k))
                })
                .and_then(|(instance, k)| service.client().tune(instance, k));
            reply(stream, FrameKind::TuneOk, answer)
        }
        FrameKind::Stats => reply(stream, FrameKind::StatsOk, Ok(service.stats())),
        FrameKind::Fingerprint => {
            reply(stream, FrameKind::FingerprintOk, Ok(service.ranker_fingerprint()))
        }
        FrameKind::ExportCache | FrameKind::ExtractCache => {
            let snapshot = wire::from_payload::<CacheSlice>(payload).and_then(|slice| {
                if kind == FrameKind::ExportCache {
                    service.export_cache(slice.into_matcher())
                } else {
                    service.extract_cache(slice.into_matcher())
                }
            });
            match snapshot {
                Ok(snapshot) => match wire::write_snapshot_stream(stream, &snapshot) {
                    Ok(()) => Ok(()),
                    Err(_) => Err(()),
                },
                Err(fault) => send_fault(stream, &fault),
            }
        }
        FrameKind::ImportCache => {
            // Assemble and verify the WHOLE stream before importing: a
            // corrupted or torn transfer is rejected here and nothing
            // reaches the cache — a partial import is impossible by
            // construction.
            let assembled = wire::from_payload::<SnapshotHeader>(payload)
                .and_then(|header| wire::read_snapshot_chunks(stream, header));
            match assembled {
                Ok(snapshot) => reply(stream, FrameKind::ImportOk, service.import_cache(snapshot)),
                Err(fault) => {
                    // The chunk stream may be desynced — answer, then close.
                    let _ = send_fault(stream, &fault);
                    Err(())
                }
            }
        }
        // A response or stream frame arriving as a request desyncs the
        // conversation: answer with a fault and drop the link.
        FrameKind::SnapshotHeader
        | FrameKind::SnapshotChunk
        | FrameKind::TuneOk
        | FrameKind::StatsOk
        | FrameKind::FingerprintOk
        | FrameKind::ImportOk
        | FrameKind::Error => {
            let fault = ServeError::Transport(format!("{kind:?} is not a request frame"));
            let _ = send_fault(stream, &fault);
            Err(())
        }
    }
}

fn reply<T: serde::Serialize>(
    stream: &mut TcpStream,
    kind: FrameKind,
    answer: Result<T, ServeError>,
) -> LinkState {
    let write = match answer {
        Ok(value) => wire::write_frame(stream, kind, &wire::to_payload(&value)),
        Err(fault) => return send_fault(stream, &fault),
    };
    write.map_err(|_| ())
}

fn send_fault(stream: &mut TcpStream, fault: &ServeError) -> LinkState {
    wire::write_frame(stream, FrameKind::Error, &wire::encode_fault(fault)).map_err(|_| ())
}
