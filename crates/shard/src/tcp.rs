//! The cross-host shard transport: [`TcpShard`] (a router's connection to
//! a shard in another process or on another host) and [`ShardServer`] (the
//! accept loop that fronts a [`TuneService`] with the wire protocol).
//!
//! Both ends speak the framed protocol of [`crate::wire`], and both ends
//! **multiplex**: a v2 link carries many in-flight requests at once, each
//! stamped with a request id. The client keeps a pending-request table and
//! one reader thread per link that routes response frames (and whole
//! snapshot streams) back to their waiting callers; the server pairs one
//! reader with one writer thread per connection and completes tuning
//! requests through the service's non-blocking tickets, so a single
//! connection pipelines instead of lock-stepping call/response.
//!
//! Version negotiation is lazy and per-link: the first call sends a v4
//! fingerprint probe; a v4 peer answers it and the link goes multiplexed
//! with trace propagation *and binary payloads* on the hot kinds (tune
//! answers, stats, snapshot chunks — see [`crate::wire::bin`]). Each
//! older peer rejects the probe with its ordinary version-mismatch fault,
//! so the ladder redials downward — v3 (multiplexed, traced, JSON), v2
//! (multiplexed, untraced), finally lock-step v1
//! ([`TcpShard::connect_v1`] forces that mode outright). The server side
//! needs no negotiation at all — it answers every frame in the version it
//! arrived in, picking the payload codec per response kind and stamping
//! it in the frame header, so the client decodes by codec byte, never by
//! guesswork.
//!
//! Observability: every [`TcpShard`] keeps [`LinkStats`] (dials,
//! reconnects, downgrades, poisoned links) and a client-side
//! [`FlightRecorder`] whose `tune` spans carry the [`TraceId`] that v3
//! frames ship to the server; [`ShardServer::metrics_source`] exposes
//! the fronted service's counters plus the per-server link aggregates as
//! one Prometheus page ([`ShardServer::serve_metrics`] serves it over
//! HTTP).
//!
//! Overload surfaces as backpressure, not timeouts: the client caps its
//! own in-flight requests per link (submitters wait), and the server caps
//! in-flight tunes per connection, fast-rejecting past the cap with an
//! [`ShedReason::LinkInFlight`] fault — on top of whatever admission
//! control the fronted service itself applies.
//!
//! Anything malformed — wrong magic or version, garbage bytes, a peer
//! closing mid-request, a response for a request id that was never issued,
//! a corrupted snapshot chunk — surfaces as [`ServeError::Transport`] on
//! the caller without touching any cache or topology (the router's error
//! paths are side-effect-free by construction).
//!
//! A `TcpShard` holds **one** connection (the router's link to that
//! shard). Dial failures are retried with exponential backoff per its
//! [`ReconnectPolicy`]; after a transport error the connection is dropped
//! and the next call redials (again under the policy), so a restarted
//! shard server is picked up without router surgery. There is still no
//! retry of a *request* — a call that failed in flight fails its caller.
//!
//! The server spawns one connection-handler (reader) thread plus one
//! writer thread per accepted router link; handlers hold the service only
//! weakly, so dropping the [`ShardServer`] shuts the underlying service
//! down even while connections are open (subsequent requests on them are
//! answered with a `closed` fault).

use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError, Weak};
use std::time::{Duration, Instant};

use sorl::tuner::TopK;
use sorl_obs::{
    EventKind, FlightRecorder, MetricsServer, MetricsSource, PromWriter, SpanId, TraceId,
};
use sorl_serve::{
    CacheSnapshot, ServeError, ServeStats, ShedReason, SnapshotHeader, TuneRequest, TuneService,
};
use stencil_model::StencilInstance;

use crate::routing::CacheSlice;
use crate::transport::ShardTransport;
use crate::wire::{
    self, bin, FrameKind, PayloadCodec, WireError, PROTOCOL_V1, PROTOCOL_V2, PROTOCOL_V3,
    PROTOCOL_V4,
};

/// Locks `m`, recovering from poisoning instead of panicking: every
/// state these mutexes protect (connection [`Slot`], [`MuxState`],
/// writer/stream handles) is structurally valid at every step, and a
/// link whose protocol state actually desynced marks itself dead via
/// `MuxState::dead` — so a panic on some other thread must surface as a
/// transport error and a redial, not cascade through every client.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Default per-call socket timeout (reads and writes), and the cap on how
/// long a multiplexed caller waits for its response. A tuning pass is
/// milliseconds; a peer silent this long is treated as gone.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Default cap on a [`TcpShard`]'s own in-flight requests per link.
pub const DEFAULT_CLIENT_IN_FLIGHT: usize = 64;

/// How a [`TcpShard`] retries *dialing* (never requests): exponential
/// backoff, bounded attempts.
///
/// `delay_before(n)` is the pause before retry `n` (0-based):
/// `base * factor^n`, capped at `max_delay`; `None` once `attempts`
/// retries are spent. The default — 25ms doubling to a 1s ceiling over 4
/// retries — rides out a shard restart without masking a dead host for
/// long.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Delay before the first retry.
    pub base: Duration,
    /// Multiplier applied per retry.
    pub factor: u32,
    /// Ceiling on any single delay.
    pub max_delay: Duration,
    /// How many retries follow the initial attempt.
    pub attempts: u32,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            base: Duration::from_millis(25),
            factor: 2,
            max_delay: Duration::from_secs(1),
            attempts: 4,
        }
    }
}

impl ReconnectPolicy {
    /// No retries at all: one dial attempt, its error surfaced as-is.
    pub const NO_RETRY: ReconnectPolicy =
        ReconnectPolicy { base: Duration::ZERO, factor: 1, max_delay: Duration::ZERO, attempts: 0 };

    /// The pause before 0-based retry `retry`, or `None` when the budget
    /// is exhausted.
    pub fn delay_before(&self, retry: u32) -> Option<Duration> {
        if retry >= self.attempts {
            return None;
        }
        let scale = self.factor.max(1).saturating_pow(retry);
        Some(self.base.saturating_mul(scale).min(self.max_delay))
    }

    /// The full deterministic backoff schedule, in order.
    pub fn schedule(&self) -> impl Iterator<Item = Duration> + '_ {
        (0..self.attempts).map_while(|retry| self.delay_before(retry))
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Events the client-side flight recorder holds (one `tune` span is two
/// events; 1024 covers the most recent ~500 remote tunes).
const CLIENT_FLIGHT_RECORDER_EVENTS: usize = 1024;

/// A point-in-time view of one [`TcpShard`]'s link health
/// ([`TcpShard::link_stats`]): how often it dialed, fell back to an older
/// protocol, or abandoned a poisoned connection, plus the live in-flight
/// count on the current multiplexed link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Successful TCP connects (the initial dial included).
    pub dials: u64,
    /// Links re-established after the initial one (a restart ridden out,
    /// or a poisoned link replaced).
    pub reconnects: u64,
    /// Negotiations where the v4 probe was version-rejected and the link
    /// fell back to v3 (a traced-but-JSON-only peer).
    pub v3_downgrades: u64,
    /// Negotiations where the v3 probe was version-rejected and the link
    /// fell back to v2 (an old multiplexed peer).
    pub v2_downgrades: u64,
    /// Negotiations that fell all the way back to lock-step v1.
    pub v1_downgrades: u64,
    /// Connections abandoned after a transport failure (the next call
    /// redials).
    pub poisoned: u64,
    /// Requests currently in flight on the live multiplexed link (0 when
    /// lock-step or disconnected).
    pub in_flight: usize,
}

/// Internal [`LinkStats`] cells. Relaxed everywhere: diagnostics, never
/// synchronization.
#[derive(Debug, Default)]
struct LinkCounters {
    dials: AtomicU64,
    reconnects: AtomicU64,
    v3_downgrades: AtomicU64,
    v2_downgrades: AtomicU64,
    v1_downgrades: AtomicU64,
    poisoned: AtomicU64,
}

/// A [`ShardTransport`] over one TCP connection to a [`ShardServer`].
#[derive(Debug)]
pub struct TcpShard {
    addr: SocketAddr,
    timeout: Duration,
    reconnect: ReconnectPolicy,
    max_in_flight: usize,
    force_v1: bool,
    conn: Mutex<Slot>,
    counters: LinkCounters,
    recorder: Arc<FlightRecorder>,
}

/// The link slot: freshly dialed but not yet negotiated, negotiated, or
/// empty (never connected, or poisoned by a transport failure).
#[derive(Debug)]
enum Slot {
    Empty,
    /// Dialed at `connect` time; the first call negotiates on it.
    Raw(TcpStream),
    Ready(Arc<Link>),
}

impl TcpShard {
    /// Connects to a shard server, verifying reachability eagerly (the
    /// connection is then kept for subsequent calls; protocol negotiation
    /// happens on the first call).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with(addr, DEFAULT_IO_TIMEOUT)
    }

    /// Like [`connect`](Self::connect) with an explicit socket timeout
    /// for every read and write (and for how long a multiplexed call
    /// waits for its answer).
    pub fn connect_with(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Self> {
        let shard = Self::connect_lazy_with(addr, timeout)?;
        let stream = shard.dial()?;
        *lock_recover(&shard.conn) = Slot::Raw(stream);
        Ok(shard)
    }

    /// Like [`connect`](Self::connect), but without the eager dial: the
    /// first call dials (under the reconnect policy). For tools that
    /// must come up while some shards are still down (`sorl-top`).
    pub fn connect_lazy(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_lazy_with(addr, DEFAULT_IO_TIMEOUT)
    }

    fn connect_lazy_with(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        Ok(TcpShard {
            addr,
            timeout,
            reconnect: ReconnectPolicy::default(),
            max_in_flight: DEFAULT_CLIENT_IN_FLIGHT,
            force_v1: false,
            conn: Mutex::new(Slot::Empty),
            counters: LinkCounters::default(),
            recorder: Arc::new(FlightRecorder::new(CLIENT_FLIGHT_RECORDER_EVENTS)),
        })
    }

    /// Like [`connect`](Self::connect), but forcing the lock-step v1
    /// protocol even against a v2 server — the interop escape hatch (and
    /// the baseline half of the pipelined-vs-lockstep benches).
    pub fn connect_v1(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let mut shard = Self::connect_with(addr, DEFAULT_IO_TIMEOUT)?;
        shard.force_v1 = true;
        Ok(shard)
    }

    /// Replaces the dial retry policy (builder style).
    pub fn with_reconnect(mut self, policy: ReconnectPolicy) -> Self {
        self.reconnect = policy;
        self
    }

    /// Replaces the per-link in-flight cap (builder style; min 1).
    /// Submitting callers past the cap *wait* — backpressure, not a shed.
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight.max(1);
        self
    }

    /// The server address this shard dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This link's dial / downgrade / poison counters and live in-flight
    /// count — the per-link half of a fleet metrics page.
    pub fn link_stats(&self) -> LinkStats {
        // sorl-lint: allow(atomic, "diagnostic counter reads; no ordering required")
        let relaxed = Ordering::Relaxed;
        let in_flight = match &*lock_recover(&self.conn) {
            Slot::Ready(link) => match link.as_ref() {
                Link::Mux(mux) => lock_recover(&mux.state).in_flight,
                Link::V1(_) => 0,
            },
            Slot::Empty | Slot::Raw(_) => 0,
        };
        LinkStats {
            dials: self.counters.dials.load(relaxed),
            reconnects: self.counters.reconnects.load(relaxed),
            v3_downgrades: self.counters.v3_downgrades.load(relaxed),
            v2_downgrades: self.counters.v2_downgrades.load(relaxed),
            v1_downgrades: self.counters.v1_downgrades.load(relaxed),
            poisoned: self.counters.poisoned.load(relaxed),
            in_flight,
        }
    }

    /// The client-side flight recorder: one `tune` span per remote call,
    /// under the same [`TraceId`] the server's recorder sees.
    pub fn flight_recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    fn dial(&self) -> io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        // sorl-lint: allow(atomic, "diagnostic counter; no ordering required")
        self.counters.dials.fetch_add(1, Ordering::Relaxed);
        Ok(stream)
    }

    /// Dials under the reconnect policy: dial failures sleep out the
    /// backoff schedule before the error finally surfaces.
    fn dial_retrying(&self) -> Result<TcpStream, ServeError> {
        let mut retry = 0u32;
        loop {
            match self.dial() {
                Ok(stream) => return Ok(stream),
                Err(e) => match self.reconnect.delay_before(retry) {
                    Some(delay) => {
                        std::thread::sleep(delay);
                        retry += 1;
                    }
                    None => {
                        return Err(ServeError::Transport(format!(
                            "connect to {} failed after {} attempt(s): {e}",
                            self.addr,
                            retry + 1
                        )));
                    }
                },
            }
        }
    }

    /// Returns the live link, (re)establishing it if the slot is empty,
    /// raw, or poisoned.
    fn link(&self) -> Result<Arc<Link>, ServeError> {
        let mut slot = lock_recover(&self.conn);
        if let Slot::Ready(link) = &*slot {
            if !link.is_dead() {
                return Ok(Arc::clone(link));
            }
            // sorl-lint: allow(atomic, "diagnostic counter; no ordering required")
            self.counters.poisoned.fetch_add(1, Ordering::Relaxed);
        }
        let stream = match std::mem::replace(&mut *slot, Slot::Empty) {
            Slot::Raw(stream) => stream,
            Slot::Empty | Slot::Ready(_) => {
                let stream = self.dial_retrying()?;
                // sorl-lint: allow(atomic, "diagnostic counter; no ordering required")
                self.counters.reconnects.fetch_add(1, Ordering::Relaxed);
                stream
            }
        };
        let link = self.negotiate(stream)?;
        *slot = Slot::Ready(Arc::clone(&link));
        Ok(link)
    }

    /// Version negotiation on a fresh stream: a descending probe ladder.
    /// The fingerprint probe goes out as v4; a v4 peer answers it and the
    /// link multiplexes with trace propagation and binary hot-path
    /// payloads. An older peer faults the unknown version (with its
    /// "protocol version" message) and hangs up, so the ladder redials
    /// and probes v3, then v2, and finally falls back to lock-step v1.
    /// Each rung costs one dial — only paid against old-binary peers, and
    /// only at (re)negotiation.
    fn negotiate(&self, stream: TcpStream) -> Result<Arc<Link>, ServeError> {
        if self.force_v1 {
            return Ok(Arc::new(Link::V1(Mutex::new(stream))));
        }
        match self.probe(stream, PROTOCOL_V4)? {
            Probed::Link(link) => return Ok(link),
            Probed::VersionRejected => {}
        }
        // sorl-lint: allow(atomic, "diagnostic counter; no ordering required")
        self.counters.v3_downgrades.fetch_add(1, Ordering::Relaxed);
        let stream = self.dial_retrying()?;
        match self.probe(stream, PROTOCOL_V3)? {
            Probed::Link(link) => return Ok(link),
            Probed::VersionRejected => {}
        }
        // sorl-lint: allow(atomic, "diagnostic counter; no ordering required")
        self.counters.v2_downgrades.fetch_add(1, Ordering::Relaxed);
        let stream = self.dial_retrying()?;
        match self.probe(stream, PROTOCOL_V2)? {
            Probed::Link(link) => return Ok(link),
            Probed::VersionRejected => {}
        }
        // sorl-lint: allow(atomic, "diagnostic counter; no ordering required")
        self.counters.v1_downgrades.fetch_add(1, Ordering::Relaxed);
        let stream = self.dial_retrying()?;
        Ok(Arc::new(Link::V1(Mutex::new(stream))))
    }

    /// One rung of the negotiation ladder: probes `stream` with a
    /// `version` fingerprint request and either builds the multiplexed
    /// link or reports that the peer rejected the version (the stream is
    /// dead either way — version faults close the connection).
    fn probe(&self, mut stream: TcpStream, version: u16) -> Result<Probed, ServeError> {
        wire::write_frame_full(&mut stream, version, FrameKind::Fingerprint, 0, 0, &[])
            .map_err(ServeError::from)?;
        let frame = wire::read_frame(&mut stream).map_err(ServeError::from)?;
        match frame.kind {
            FrameKind::FingerprintOk if frame.version == version && frame.request_id == 0 => {
                let reader = stream.try_clone().map_err(|e| {
                    ServeError::Transport(format!("clone link to {}: {e}", self.addr))
                })?;
                let link = Arc::new(Link::Mux(MuxLink {
                    version,
                    writer: Mutex::new(stream),
                    state: Mutex::new(MuxState {
                        next_id: 1,
                        in_flight: 0,
                        pending: HashMap::new(),
                        dead: None,
                    }),
                    ready: Condvar::new(),
                    timeout: self.timeout,
                    max_in_flight: self.max_in_flight,
                }));
                let weak = Arc::downgrade(&link);
                std::thread::Builder::new()
                    .name("sorl-shard-link".into())
                    .spawn(move || mux_reader(reader, &weak))
                    .map_err(|e| ServeError::Transport(format!("spawn link reader: {e}")))?;
                Ok(Probed::Link(link))
            }
            FrameKind::Error => {
                let fault = wire::decode_fault(&frame.payload);
                if matches!(&fault, ServeError::Transport(m) if m.contains("protocol version")) {
                    return Ok(Probed::VersionRejected);
                }
                Err(fault)
            }
            other => Err(ServeError::Transport(format!(
                "unexpected {other:?} frame answering the version probe"
            ))),
        }
    }

    /// Runs one request on the link. On a transport-level failure the
    /// connection is dropped, so the next call redials (e.g. against a
    /// restarted server).
    fn call<T>(&self, f: impl FnOnce(&Link) -> Result<T, ServeError>) -> Result<T, ServeError> {
        let link = self.link()?;
        let result = f(&link);
        if matches!(result, Err(ServeError::Transport(_))) {
            let mut slot = lock_recover(&self.conn);
            if let Slot::Ready(current) = &*slot {
                if Arc::ptr_eq(current, &link) {
                    *slot = Slot::Empty;
                    // sorl-lint: allow(atomic, "diagnostic counter; no ordering required")
                    self.counters.poisoned.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        result
    }
}

/// What one rung of the probe ladder resolved to.
enum Probed {
    /// The peer answered the probe: the link is up, multiplexed at the
    /// probed version.
    Link(Arc<Link>),
    /// The peer faulted the probed version and closed the connection;
    /// try the next rung down.
    VersionRejected,
}

impl ShardTransport for TcpShard {
    fn tune(&self, instance: StencilInstance, k: usize) -> Result<TopK, ServeError> {
        // The whole remote call is one client-side span; a v3 link ships
        // the trace id in the frame header, so the server's recorder
        // stamps its queue-wait and scoring spans with the same trace.
        let span = self.recorder.span(TraceId::fresh(), "tune");
        let trace_id = span.trace().as_u64();
        let payload = wire::to_payload(&TuneRequest::new(instance, k));
        let result = self.call(|link| {
            let (codec, answer) = link.request(
                FrameKind::Tune,
                &payload,
                FrameKind::TuneOk,
                "tune answer",
                trace_id,
            )?;
            match codec {
                PayloadCodec::Json => wire::from_payload(&answer),
                PayloadCodec::Binary => bin::decode_top_k(&answer),
            }
        });
        if result.is_err() {
            span.event("error");
        }
        result
    }

    fn ranker_fingerprint(&self) -> Result<u64, ServeError> {
        self.call(|link| {
            let (codec, answer) = link.request(
                FrameKind::Fingerprint,
                &[],
                FrameKind::FingerprintOk,
                "fingerprint",
                0,
            )?;
            json_only(codec, &answer, "the fingerprint request")
        })
    }

    fn stats(&self) -> Result<ServeStats, ServeError> {
        self.call(|link| {
            let (codec, answer) =
                link.request(FrameKind::Stats, &[], FrameKind::StatsOk, "stats", 0)?;
            match codec {
                PayloadCodec::Json => wire::from_payload(&answer),
                PayloadCodec::Binary => bin::decode_stats(&answer),
            }
        })
    }

    fn export_cache(&self, slice: &CacheSlice) -> Result<CacheSnapshot, ServeError> {
        let payload = wire::to_payload(slice);
        self.call(|link| link.request_snapshot(FrameKind::ExportCache, &payload))
    }

    fn extract_cache(&self, slice: &CacheSlice) -> Result<CacheSnapshot, ServeError> {
        let payload = wire::to_payload(slice);
        self.call(|link| link.request_snapshot(FrameKind::ExtractCache, &payload))
    }

    fn import_cache(&self, snapshot: CacheSnapshot) -> Result<usize, ServeError> {
        self.call(|link| {
            let answer = link.import(&snapshot)?;
            wire::from_payload(&answer)
        })
    }

    fn trace_dump(&self, trace: Option<TraceId>) -> Result<wire::TraceDumpReply, ServeError> {
        let query = wire::TraceQuery { trace: trace.map(TraceId::as_u64).unwrap_or(0) };
        let payload = wire::to_payload(&query);
        self.call(|link| {
            let (codec, answer) = link.request(
                FrameKind::TraceDump,
                &payload,
                FrameKind::TraceDumpOk,
                "trace dump",
                0,
            )?;
            json_only(codec, &answer, "the trace-dump request")
        })
    }
}

/// Decodes an answer the server only ever sends as JSON; a binary codec
/// on one of these kinds means the peer is confused enough to distrust.
fn json_only<T: serde::de::DeserializeOwned>(
    codec: PayloadCodec,
    payload: &[u8],
    what: &str,
) -> Result<T, ServeError> {
    match codec {
        PayloadCodec::Json => wire::from_payload(payload),
        PayloadCodec::Binary => {
            Err(ServeError::Transport(format!("unexpected binary payload answering {what}")))
        }
    }
}

/// One negotiated connection: multiplexed (v2 or v3), or lock-step v1.
#[derive(Debug)]
enum Link {
    Mux(MuxLink),
    V1(Mutex<TcpStream>),
}

/// What a pending v2 request is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// One response frame of this kind.
    Reply(FrameKind),
    /// A snapshot stream (header + chunks).
    Snapshot,
}

/// What a completed v2 request resolved to. A plain payload carries the
/// codec its frame was stamped with, so the caller decodes what was
/// actually sent (a v4 server may answer JSON when a value overflows the
/// binary codec's compact ranges).
#[derive(Debug)]
enum Outcome {
    Payload(PayloadCodec, Vec<u8>),
    Snapshot(Box<CacheSnapshot>),
}

#[derive(Debug)]
struct PendingRequest {
    expect: Expect,
    /// Snapshot stream in mid-reassembly (header seen, chunks pending).
    assembling: Option<wire::SnapshotAssembler>,
    done: Option<Result<Outcome, ServeError>>,
}

#[derive(Debug)]
struct MuxState {
    next_id: u64,
    in_flight: usize,
    pending: HashMap<u64, PendingRequest>,
    /// Set once the link is unusable; every pending and future request on
    /// it fails with this message.
    dead: Option<String>,
}

/// A multiplexed link: callers register in a pending table keyed by
/// request id and write under one writer lock; a reader thread routes
/// response frames back and wakes them.
#[derive(Debug)]
struct MuxLink {
    /// The negotiated protocol version every frame goes out in
    /// ([`PROTOCOL_V2`] or [`PROTOCOL_V3`]; only v3 carries trace ids).
    version: u16,
    writer: Mutex<TcpStream>,
    state: Mutex<MuxState>,
    ready: Condvar,
    timeout: Duration,
    max_in_flight: usize,
}

impl Link {
    fn is_dead(&self) -> bool {
        match self {
            Link::Mux(mux) => lock_recover(&mux.state).dead.is_some(),
            Link::V1(_) => false,
        }
    }

    /// One request answered by one response frame (returned with the
    /// codec its payload arrived in — always JSON below v4). `trace_id`
    /// rides in the frame header on a v3+ link and is silently dropped on
    /// older ones (pass 0 for untraced requests).
    fn request(
        &self,
        kind: FrameKind,
        payload: &[u8],
        expect: FrameKind,
        wanted: &'static str,
        trace_id: u64,
    ) -> Result<(PayloadCodec, Vec<u8>), ServeError> {
        match self {
            Link::Mux(mux) => {
                let outcome = mux.call(Expect::Reply(expect), |stream, id| {
                    wire::write_frame_full(stream, mux.version, kind, id, trace_id, payload)
                })?;
                outcome.into_payload()
            }
            Link::V1(stream) => {
                let mut stream = lock_recover(stream);
                wire::write_frame(&mut *stream, kind, payload)?;
                let answer = wire::expect_frame(&mut *stream, expect, wanted)?;
                Ok((PayloadCodec::Json, answer))
            }
        }
    }

    /// One request answered by a snapshot stream.
    fn request_snapshot(
        &self,
        kind: FrameKind,
        payload: &[u8],
    ) -> Result<CacheSnapshot, ServeError> {
        match self {
            Link::Mux(mux) => {
                let outcome = mux.call(Expect::Snapshot, |stream, id| {
                    wire::write_frame_full(stream, mux.version, kind, id, 0, payload)
                })?;
                outcome.into_snapshot()
            }
            Link::V1(stream) => {
                let mut stream = lock_recover(stream);
                wire::write_frame(&mut *stream, kind, payload)?;
                wire::read_snapshot_stream(&mut *stream)
            }
        }
    }

    /// An import: a header-plus-chunks request answered by one frame.
    /// Chunking happens here, after negotiation, because the codec is a
    /// link property: a v4 link ships binary chunks (falling back to JSON
    /// when the snapshot overflows the binary codec's compact ranges),
    /// older links always ship JSON.
    fn import(&self, snapshot: &CacheSnapshot) -> Result<Vec<u8>, ServeError> {
        match self {
            Link::Mux(mux) => {
                let codec = if mux.version >= PROTOCOL_V4 && bin::snapshot_fits(snapshot) {
                    PayloadCodec::Binary
                } else {
                    PayloadCodec::Json
                };
                let (header, chunks) = match codec {
                    PayloadCodec::Json => snapshot.to_chunks(wire::CHUNK_ENTRIES),
                    PayloadCodec::Binary => bin::snapshot_to_chunks(snapshot, wire::CHUNK_ENTRIES),
                };
                let header_payload = wire::to_payload(&header);
                // Header and chunks go out contiguously under the writer
                // lock, so the server can read the stream inline.
                let outcome = mux.call(Expect::Reply(FrameKind::ImportOk), |stream, id| {
                    wire::write_frame_full(
                        stream,
                        mux.version,
                        FrameKind::ImportCache,
                        id,
                        0,
                        &header_payload,
                    )?;
                    wire::write_chunk_frames_coded(stream, mux.version, id, codec, &chunks)
                })?;
                let (_, answer) = outcome.into_payload()?;
                Ok(answer)
            }
            Link::V1(stream) => {
                let (header, chunks) = snapshot.to_chunks(wire::CHUNK_ENTRIES);
                let mut stream = lock_recover(stream);
                wire::write_frame(
                    &mut *stream,
                    FrameKind::ImportCache,
                    &wire::to_payload(&header),
                )?;
                wire::write_chunk_frames(&mut *stream, &chunks)?;
                wire::expect_frame(&mut *stream, FrameKind::ImportOk, "import answer")
            }
        }
    }
}

impl Outcome {
    fn into_payload(self) -> Result<(PayloadCodec, Vec<u8>), ServeError> {
        match self {
            Outcome::Payload(codec, payload) => Ok((codec, payload)),
            Outcome::Snapshot(_) => {
                Err(ServeError::Transport("snapshot stream answered a plain request".into()))
            }
        }
    }

    fn into_snapshot(self) -> Result<CacheSnapshot, ServeError> {
        match self {
            Outcome::Snapshot(snapshot) => Ok(*snapshot),
            Outcome::Payload(..) => {
                Err(ServeError::Transport("plain frame answered a snapshot request".into()))
            }
        }
    }
}

impl MuxLink {
    /// Admits one request: waits (backpressure) while the link is at its
    /// in-flight cap, then registers a fresh id in the pending table.
    fn begin(&self, expect: Expect) -> Result<u64, ServeError> {
        let deadline = Instant::now() + self.timeout;
        let mut state = lock_recover(&self.state);
        loop {
            if let Some(reason) = &state.dead {
                return Err(ServeError::Transport(reason.clone()));
            }
            if state.in_flight < self.max_in_flight {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServeError::Transport(format!(
                    "link backpressure: {} requests in flight for longer than {:?}",
                    state.in_flight, self.timeout
                )));
            }
            let (guard, _) = self
                .ready
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
        let id = state.next_id;
        state.next_id += 1;
        state.in_flight += 1;
        state.pending.insert(id, PendingRequest { expect, assembling: None, done: None });
        Ok(id)
    }

    /// One full multiplexed exchange: register, write, await.
    fn call(
        &self,
        expect: Expect,
        write: impl FnOnce(&mut TcpStream, u64) -> Result<(), WireError>,
    ) -> Result<Outcome, ServeError> {
        let id = self.begin(expect)?;
        {
            let mut stream = lock_recover(&self.writer);
            if let Err(e) = write(&mut stream, id) {
                // A half-written frame desyncs the whole link, not just
                // this request.
                drop(stream);
                self.fail_all(&format!("send failed: {e}"));
            }
        }
        self.await_done(id)
    }

    /// Blocks until the reader resolves request `id` (or the wait times
    /// out, which poisons the link — its socket state is unknowable).
    fn await_done(&self, id: u64) -> Result<Outcome, ServeError> {
        let deadline = Instant::now() + self.timeout;
        let mut state = lock_recover(&self.state);
        loop {
            let entry = state.pending.get_mut(&id);
            if let Some(done) = entry.and_then(|p| p.done.take()) {
                state.pending.remove(&id);
                state.in_flight -= 1;
                // Wake both backpressure waiters and other awaiting
                // callers.
                self.ready.notify_all();
                return done;
            }
            let now = Instant::now();
            if now >= deadline {
                state.pending.remove(&id);
                state.in_flight -= 1;
                let reason = format!("no response within {:?}", self.timeout);
                Self::poison(&mut state, &reason);
                self.ready.notify_all();
                return Err(ServeError::Transport(reason));
            }
            let (guard, _) = self
                .ready
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
    }

    /// Marks the link dead and fails every pending request. Idempotent —
    /// the first reason wins.
    fn fail_all(&self, reason: &str) {
        let mut state = lock_recover(&self.state);
        Self::poison(&mut state, reason);
        self.ready.notify_all();
    }

    fn poison(state: &mut MuxState, reason: &str) {
        if state.dead.is_none() {
            state.dead = Some(reason.to_string());
        }
        for pending in state.pending.values_mut() {
            if pending.done.is_none() {
                pending.done = Some(Err(ServeError::Transport(reason.to_string())));
            }
        }
    }
}

impl Drop for MuxLink {
    fn drop(&mut self) {
        // Wake the reader thread out of its blocking read so it exits now
        // instead of at its next idle-poll tick.
        if let Ok(stream) = self.writer.lock() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// How often the link reader wakes from an idle read to check whether its
/// `MuxLink` is still alive.
const READER_IDLE_POLL: Duration = Duration::from_millis(200);

/// The per-link reader: routes every incoming frame to its pending
/// request. Exits when the peer hangs up, the protocol is violated (after
/// failing all pending requests), or the owning link is dropped.
fn mux_reader(mut stream: TcpStream, link: &Weak<Link>) {
    // Idle reads poll briefly so a dropped link is noticed; once a frame
    // starts, reads run under the link's full IO timeout.
    let _ = stream.set_read_timeout(Some(READER_IDLE_POLL));
    loop {
        let mut first = [0u8; 1];
        let first = match stream.read(&mut first) {
            Ok(0) => {
                fail_link(link, "connection closed by peer");
                return;
            }
            Ok(_) => {
                let [byte] = first;
                byte
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if link.strong_count() == 0 {
                    return;
                }
                continue;
            }
            Err(e) => {
                fail_link(link, &format!("socket error: {e}"));
                return;
            }
        };
        let Some(mux) = upgrade_mux(link) else { return };
        let _ = stream.set_read_timeout(Some(mux.timeout));
        let result = wire::read_frame_after(&mut stream, first);
        let _ = stream.set_read_timeout(Some(READER_IDLE_POLL));
        match result {
            Ok(frame) => {
                if route_frame(&mux, frame).is_err() {
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            }
            Err(e) => {
                mux.fail_all(&e.to_string());
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        }
    }
}

fn upgrade_mux(link: &Weak<Link>) -> Option<Arc<MuxHandle>> {
    let strong = link.upgrade()?;
    match &*strong {
        Link::Mux(_) => Some(Arc::new(MuxHandle(strong))),
        Link::V1(_) => None,
    }
}

/// A reader-side handle projecting `Arc<Link>` to its `MuxLink`.
struct MuxHandle(Arc<Link>);

impl std::ops::Deref for MuxHandle {
    type Target = MuxLink;
    fn deref(&self) -> &MuxLink {
        match &*self.0 {
            Link::Mux(mux) => mux,
            // sorl-lint: allow(panic, "MuxHandle is only ever constructed over a Link::Mux")
            Link::V1(_) => unreachable!("mux reader only serves multiplexed links"),
        }
    }
}

/// Routes one incoming frame. `Err` means the link is poisoned and the
/// reader must exit.
fn route_frame(mux: &MuxLink, frame: wire::Frame) -> Result<(), ()> {
    let mut state = lock_recover(&mux.state);
    let Some(pending) = state.pending.get_mut(&frame.request_id) else {
        // A response for a request never issued (or long abandoned): the
        // stream can no longer be trusted. An Error frame is the one
        // exception worth decoding — a server announcing shutdown faults
        // id 0 — but it still kills the link.
        let reason = if frame.kind == FrameKind::Error {
            format!("server fault: {}", wire::decode_fault(&frame.payload))
        } else {
            format!("server sent {:?} for unknown request id {}", frame.kind, frame.request_id)
        };
        MuxLink::poison(&mut state, &reason);
        mux.ready.notify_all();
        return Err(());
    };
    let resolution: Result<Option<Result<Outcome, ServeError>>, String> = match frame.kind {
        FrameKind::Error => Ok(Some(Err(wire::decode_fault(&frame.payload)))),
        kind if pending.expect == Expect::Reply(kind) => {
            Ok(Some(Ok(Outcome::Payload(frame.codec, frame.payload))))
        }
        FrameKind::SnapshotHeader if pending.expect == Expect::Snapshot => {
            if pending.assembling.is_some() {
                Err("second snapshot header inside one stream".to_string())
            } else {
                match wire::from_payload::<SnapshotHeader>(&frame.payload)
                    .and_then(wire::SnapshotAssembler::new)
                {
                    Ok(assembler) => {
                        if assembler.is_complete() {
                            Ok(Some(assembler.finish().map(|s| Outcome::Snapshot(Box::new(s)))))
                        } else {
                            pending.assembling = Some(assembler);
                            Ok(None)
                        }
                    }
                    Err(e) => Ok(Some(Err(e))),
                }
            }
        }
        FrameKind::SnapshotChunk if pending.expect == Expect::Snapshot => {
            match pending.assembling.as_mut() {
                None => Err("snapshot chunk before its header".to_string()),
                Some(assembler) => match assembler.push_chunk_coded(frame.codec, &frame.payload) {
                    // A bounds/length violation could desync framing for
                    // the rest of the stream — poison, don't just fail
                    // the one request.
                    Err(e) => Err(e.to_string()),
                    Ok(()) => {
                        if assembler.is_complete() {
                            // sorl-lint: allow(panic, "the Some arm two lines up guarantees the assembler is present")
                            let assembler = pending.assembling.take().expect("just matched");
                            Ok(Some(assembler.finish().map(|s| Outcome::Snapshot(Box::new(s)))))
                        } else {
                            Ok(None)
                        }
                    }
                },
            }
        }
        other => Err(format!("unexpected {other:?} frame for request {}", frame.request_id)),
    };
    match resolution {
        Ok(None) => Ok(()), // mid-stream, keep reading
        Ok(Some(done)) => {
            pending.done = Some(done);
            mux.ready.notify_all();
            Ok(())
        }
        Err(reason) => {
            MuxLink::poison(&mut state, &reason);
            mux.ready.notify_all();
            Err(())
        }
    }
}

fn fail_link(link: &Weak<Link>, reason: &str) {
    if let Some(mux) = upgrade_mux(link) {
        mux.fail_all(reason);
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// [`ShardServer`] knobs.
#[derive(Debug, Clone, Copy)]
pub struct ShardServerConfig {
    /// Cap on in-flight tuning requests per connection. A request past the
    /// cap is fast-rejected with an
    /// [`ServeError::Overloaded`]`(`[`ShedReason::LinkInFlight`]`)` fault
    /// — per-link backpressure in front of the service's own admission
    /// control.
    pub max_in_flight: usize,
}

impl Default for ShardServerConfig {
    fn default() -> Self {
        ShardServerConfig { max_in_flight: 256 }
    }
}

/// Per-server connection aggregates, shared by every handler thread and
/// readable by the metrics endpoint. Relaxed everywhere: diagnostics,
/// never synchronization.
#[derive(Debug, Default)]
struct ServerCounters {
    /// Router links ever accepted.
    accepted: AtomicU64,
    /// Router links currently open (gauge).
    open: AtomicU64,
    /// Tuning requests in flight across every connection (gauge).
    in_flight: AtomicU64,
}

/// A TCP server fronting one [`TuneService`] — the in-process half of
/// `sorl-shardd`.
///
/// [`spawn`](Self::spawn) binds, then accepts on a background thread; each
/// accepted connection gets a reader thread (parses requests, submits
/// non-blocking tickets) and a writer thread (serializes replies as they
/// complete — in whatever order the service finishes them, which is what
/// lets one connection pipeline). The server owns the service; handlers
/// only hold it weakly, so dropping the `ShardServer` shuts the service
/// down deterministically even while router links are open.
#[derive(Debug)]
pub struct ShardServer {
    service: Arc<TuneService>,
    addr: SocketAddr,
    closing: Arc<std::sync::atomic::AtomicBool>,
    counters: Arc<ServerCounters>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ShardServer {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// accepting router links, with default [`ShardServerConfig`].
    pub fn spawn(service: TuneService, addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::spawn_with(service, addr, ShardServerConfig::default())
    }

    /// Like [`spawn`](Self::spawn) with explicit knobs.
    pub fn spawn_with(
        service: TuneService,
        addr: impl ToSocketAddrs,
        config: ShardServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let service = Arc::new(service);
        let weak = Arc::downgrade(&service);
        let closing = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let closing_flag = Arc::clone(&closing);
        let counters = Arc::new(ServerCounters::default());
        let accept_counters = Arc::clone(&counters);
        let accept_thread =
            std::thread::Builder::new().name("sorl-shardd-accept".into()).spawn(move || {
                accept_loop(&listener, &weak, &closing_flag, &accept_counters, config)
            })?;
        Ok(ShardServer { service, addr, closing, counters, accept_thread: Some(accept_thread) })
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying service (for local snapshots, stats, warm imports).
    pub fn service(&self) -> &TuneService {
        &self.service
    }

    /// A [`MetricsSource`] rendering this server's whole story per
    /// scrape: the fronted service's counters and latency histograms
    /// (`sorl_serve_*`), connection-level aggregates (`sorl_link_*`),
    /// and the service flight recorder's depth. The source holds the
    /// service only weakly, so it never keeps a dropped server alive.
    pub fn metrics_source(&self) -> Arc<dyn MetricsSource> {
        Arc::new(ShardServerMetrics {
            service: Arc::downgrade(&self.service),
            counters: Arc::clone(&self.counters),
        })
    }

    /// Spawns a [`MetricsServer`] on `bind` (e.g. `"127.0.0.1:9091"`)
    /// serving [`metrics_source`](Self::metrics_source) until dropped:
    /// `curl http://bind/metrics`.
    pub fn serve_metrics(&self, bind: impl ToSocketAddrs) -> io::Result<MetricsServer> {
        MetricsServer::spawn(bind, self.metrics_source())
    }
}

/// The [`MetricsSource`] behind [`ShardServer::metrics_source`].
struct ShardServerMetrics {
    service: Weak<TuneService>,
    counters: Arc<ServerCounters>,
}

impl MetricsSource for ShardServerMetrics {
    fn collect(&self, w: &mut PromWriter) {
        if let Some(service) = self.service.upgrade() {
            service.stats().collect_prometheus(w);
            let recorder = service.flight_recorder();
            w.gauge(
                "sorl_flight_recorder_depth",
                "Events resident in the service flight recorder.",
                recorder.depth() as f64,
            );
            w.counter(
                "sorl_flight_recorder_dropped_total",
                "Flight-recorder events lost to claim races.",
                recorder.dropped(),
            );
            service.exemplars().collect_prometheus(w);
            service.slo().collect_prometheus(w);
        }
        // sorl-lint: allow(atomic, "diagnostic counter reads; no ordering required")
        let relaxed = Ordering::Relaxed;
        w.counter(
            "sorl_link_connections_accepted_total",
            "Router links ever accepted.",
            self.counters.accepted.load(relaxed),
        );
        w.gauge(
            "sorl_link_connections_open",
            "Router links currently open.",
            self.counters.open.load(relaxed) as f64,
        );
        w.gauge(
            "sorl_link_in_flight",
            "Tuning requests in flight across all connections.",
            self.counters.in_flight.load(relaxed) as f64,
        );
    }
}

impl Drop for ShardServer {
    fn drop(&mut self) {
        // Stop the accept loop deterministically so the listener (and its
        // port) is released now, not at process exit: raise the closing
        // flag, then poke the listener with a throwaway connection to wake
        // the blocking `accept`. Joining only makes sense if the poke
        // landed — otherwise the loop may still be parked in `accept` and
        // the join would hang (it then dies with the process, the
        // pre-existing behavior).
        self.closing.store(true, std::sync::atomic::Ordering::SeqCst);
        let mut poke_addr = self.addr;
        if poke_addr.ip().is_unspecified() {
            poke_addr.set_ip(match poke_addr {
                SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            });
        }
        let poked = TcpStream::connect_timeout(&poke_addr, Duration::from_secs(1)).is_ok();
        if let Some(thread) = self.accept_thread.take() {
            if poked {
                let _ = thread.join();
            }
        }
        // `service` drops next, shutting the worker down; open connection
        // handlers notice the dead Weak within one idle poll and exit.
    }
}

fn accept_loop(
    listener: &TcpListener,
    service: &Weak<TuneService>,
    closing: &std::sync::atomic::AtomicBool,
    counters: &Arc<ServerCounters>,
    config: ShardServerConfig,
) {
    for stream in listener.incoming() {
        if closing.load(std::sync::atomic::Ordering::SeqCst) {
            return; // drops the listener, releasing the port
        }
        let Ok(stream) = stream else {
            // Persistent accept errors (EMFILE when the fd limit is hit,
            // ECONNABORTED storms) would otherwise spin this loop at 100%
            // CPU; a short sleep sheds load until the condition clears.
            std::thread::sleep(Duration::from_millis(50));
            continue;
        };
        let service = Weak::clone(service);
        counters.accepted.fetch_add(1, Ordering::AcqRel);
        counters.open.fetch_add(1, Ordering::AcqRel);
        let conn_counters = Arc::clone(counters);
        let name = "sorl-shardd-conn".to_string();
        let spawned = std::thread::Builder::new().name(name).spawn(move || {
            handle_connection(stream, &service, &conn_counters, config);
            conn_counters.open.fetch_sub(1, Ordering::AcqRel);
        });
        if spawned.is_err() {
            counters.open.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// How long a handler waits for the *rest* of a frame once its first byte
/// arrived, and for any write. An idle link (no frame in flight) is
/// healthy and waits forever; a peer that stalls mid-frame is gone.
const SERVER_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// One queued reply for the connection's writer thread.
enum WriteJob {
    /// A single response frame, in the version its request arrived in,
    /// echoing the request's trace id (dropped on the wire below v3) and
    /// stamped with the codec its payload was encoded in (always JSON
    /// below v4; error frames are JSON in every version).
    Frame {
        version: u16,
        request_id: u64,
        trace_id: u64,
        kind: FrameKind,
        codec: PayloadCodec,
        payload: Vec<u8>,
    },
    /// A snapshot stream response; `codec` is the *requested* chunk
    /// encoding (the stream writer degrades to JSON when the version or
    /// the snapshot's value ranges rule binary out).
    Snapshot { version: u16, request_id: u64, codec: PayloadCodec, snapshot: Box<CacheSnapshot> },
    /// Flush nothing more; shut the socket down (protocol violation or
    /// service shutdown — queued before this job is the farewell fault).
    Close,
}

fn fault_job(version: u16, request_id: u64, trace_id: u64, fault: &ServeError) -> WriteJob {
    WriteJob::Frame {
        version,
        request_id,
        trace_id,
        kind: FrameKind::Error,
        codec: PayloadCodec::Json,
        payload: wire::encode_fault(fault),
    }
}

/// The per-connection writer: serializes reply jobs in completion order.
/// Exits when every sender (the reader plus any pending ticket callbacks)
/// is gone, on [`WriteJob::Close`], or when a write fails (the peer
/// stopped reading) — dropping the receiver then makes subsequent sends
/// fail, which tells the reader the link is done.
fn write_loop(mut stream: TcpStream, jobs: &mpsc::Receiver<WriteJob>) {
    while let Ok(job) = jobs.recv() {
        let wrote = match job {
            WriteJob::Frame { version, request_id, trace_id, kind, codec, payload } => {
                wire::write_frame_coded(
                    &mut stream,
                    version,
                    kind,
                    request_id,
                    trace_id,
                    codec,
                    &payload,
                )
            }
            WriteJob::Snapshot { version, request_id, codec, snapshot } => {
                wire::write_snapshot_stream_coded(
                    &mut stream,
                    version,
                    request_id,
                    codec,
                    &snapshot,
                )
            }
            WriteJob::Close => break,
        };
        if wrote.is_err() {
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Blocks until the peer sends the first byte of the next frame.
/// `None` means the link is done (peer closed, or our service is
/// gone); timeouts while *idle* just keep waiting — but each wakeup
/// re-checks the service so abandoned handlers exit instead of parking
/// forever.
fn await_first_byte(
    stream: &mut TcpStream,
    service: &Weak<TuneService>,
    jobs: &mpsc::Sender<WriteJob>,
) -> Option<u8> {
    let mut first = [0u8; 1];
    loop {
        match stream.read(&mut first) {
            Ok(0) => return None, // EOF: peer hung up
            Ok(_) => {
                let [byte] = first;
                return Some(byte);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if service.strong_count() == 0 {
                    let _ = jobs.send(fault_job(PROTOCOL_V1, 0, 0, &ServeError::Closed));
                    let _ = jobs.send(WriteJob::Close);
                    return None;
                }
            }
            Err(_) => return None,
        }
    }
}

/// Serves one router link until the peer goes away or violates the
/// protocol. Well-framed application errors are answered with an error
/// frame and the link stays up; anything that desyncs the stream gets a
/// best-effort error frame and the connection is closed. The socket
/// timeouts only bite *mid-frame* (or on stalled writes): waiting for the
/// start of the next request is untimed, so idle router links stay up.
fn handle_connection(
    mut stream: TcpStream,
    service: &Weak<TuneService>,
    counters: &Arc<ServerCounters>,
    config: ShardServerConfig,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(SERVER_IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SERVER_IO_TIMEOUT));
    let Ok(write_half) = stream.try_clone() else { return };
    let (jobs, jobs_rx) = mpsc::channel::<WriteJob>();
    let Ok(writer) = std::thread::Builder::new()
        .name("sorl-shardd-write".into())
        .spawn(move || write_loop(write_half, &jobs_rx))
    else {
        return;
    };
    let in_flight = Arc::new(AtomicUsize::new(0));
    while let Some(first) = await_first_byte(&mut stream, service, &jobs) {
        let frame = match wire::read_frame_after(&mut stream, first) {
            Ok(frame) => frame,
            Err(WireError::Io(_)) => break, // peer died (or stalled) mid-frame
            Err(violation) => {
                let fault = ServeError::Transport(violation.to_string());
                let _ = jobs.send(fault_job(PROTOCOL_V1, 0, 0, &fault));
                let _ = jobs.send(WriteJob::Close);
                break;
            }
        };
        let Some(service) = service.upgrade() else {
            let _ = jobs.send(fault_job(
                frame.version,
                frame.request_id,
                frame.trace_id,
                &ServeError::Closed,
            ));
            let _ = jobs.send(WriteJob::Close);
            break;
        };
        if serve_request(&mut stream, frame, &service, &jobs, &in_flight, counters, config).is_err()
        {
            let _ = jobs.send(WriteJob::Close);
            break;
        }
    }
    // The reader is done; the writer drains queued replies (plus any tune
    // answers still completing) and exits once the last sender is gone.
    drop(jobs);
    let _ = writer.join();
}

/// Outcome of one request: `Ok` keeps the link, `Err` closes it.
type LinkState = Result<(), ()>;

fn serve_request(
    stream: &mut TcpStream,
    frame: wire::Frame,
    service: &TuneService,
    jobs: &mpsc::Sender<WriteJob>,
    in_flight: &Arc<AtomicUsize>,
    counters: &Arc<ServerCounters>,
    config: ShardServerConfig,
) -> LinkState {
    let wire::Frame { version, kind, request_id, trace_id, codec: _, payload } = frame;
    let reply = |kind: FrameKind, payload: Vec<u8>| WriteJob::Frame {
        version,
        request_id,
        trace_id,
        kind,
        codec: PayloadCodec::Json,
        payload,
    };
    match kind {
        FrameKind::Tune => {
            let parsed = wire::from_payload::<TuneRequest>(&payload).and_then(|req| {
                // Deserialization bypasses `StencilInstance::new`'s
                // invariants (positive extents, kernel/grid dimension
                // agreement); re-validate so a malformed wire instance
                // is rejected here instead of poisoning the scoring
                // pipeline and the cache.
                let instance =
                    StencilInstance::new(req.instance.kernel().clone(), req.instance.size())
                        .map_err(|e| ServeError::Transport(format!("invalid instance: {e}")))?;
                Ok((instance, req.k))
            });
            let (instance, k) = match parsed {
                Ok(parts) => parts,
                Err(fault) => {
                    return keep(jobs.send(fault_job(version, request_id, trace_id, &fault)))
                }
            };
            // The per-connection backpressure cap: a link pushing more
            // concurrent tunes than configured gets cheap rejections, not
            // a growing reply backlog.
            if in_flight.load(Ordering::Acquire) >= config.max_in_flight {
                let fault = ServeError::Overloaded(ShedReason::LinkInFlight);
                return keep(jobs.send(fault_job(version, request_id, trace_id, &fault)));
            }
            in_flight.fetch_add(1, Ordering::AcqRel);
            counters.in_flight.fetch_add(1, Ordering::AcqRel);
            // A v3 peer's trace continues on this side; older peers (or
            // v3 peers that didn't trace) get a fresh trace so the
            // server-side spans still land somewhere coherent.
            // The server-side half of the remote call: one span covering
            // dispatch to reply, in the *service* recorder under the
            // peer's trace id — this is what makes an assembled fleet
            // waterfall show the request inside the shard process.
            let trace = TraceId::from_wire(trace_id);
            let rpc_span = SpanId::fresh();
            let recorder = service.flight_recorder();
            recorder.record(EventKind::SpanBegin, trace, rpc_span, "rpc_tune");
            match service.client().submit_traced(instance, k, trace) {
                Ok(ticket) => {
                    let jobs = jobs.clone();
                    let in_flight = Arc::clone(in_flight);
                    let counters = Arc::clone(counters);
                    let recorder = Arc::clone(recorder);
                    // The reply is queued by the service worker the moment
                    // the answer lands — out of arrival order if the
                    // service finishes another request first.
                    ticket.on_ready(move |outcome| {
                        recorder.record(EventKind::SpanEnd, trace, rpc_span, "rpc_tune");
                        in_flight.fetch_sub(1, Ordering::AcqRel);
                        counters.in_flight.fetch_sub(1, Ordering::AcqRel);
                        let job = match outcome {
                            Ok(top) => {
                                // v4 links get the compact binary answer
                                // unless a value overflows its ranges; the
                                // frame's codec byte tells the client
                                // which decode to run either way.
                                let (codec, payload) =
                                    if version >= PROTOCOL_V4 && bin::top_k_fits(&top) {
                                        (PayloadCodec::Binary, bin::encode_top_k(&top))
                                    } else {
                                        (PayloadCodec::Json, wire::to_payload(&top))
                                    };
                                WriteJob::Frame {
                                    version,
                                    request_id,
                                    trace_id,
                                    kind: FrameKind::TuneOk,
                                    codec,
                                    payload,
                                }
                            }
                            Err(fault) => fault_job(version, request_id, trace_id, &fault),
                        };
                        let _ = jobs.send(job);
                    });
                    Ok(())
                }
                Err(fault) => {
                    recorder.record(EventKind::SpanEnd, trace, rpc_span, "rpc_tune");
                    in_flight.fetch_sub(1, Ordering::AcqRel);
                    counters.in_flight.fetch_sub(1, Ordering::AcqRel);
                    keep(jobs.send(fault_job(version, request_id, trace_id, &fault)))
                }
            }
        }
        FrameKind::Stats => {
            let stats = service.stats();
            let job = if version >= PROTOCOL_V4 {
                WriteJob::Frame {
                    version,
                    request_id,
                    trace_id,
                    kind: FrameKind::StatsOk,
                    codec: PayloadCodec::Binary,
                    payload: bin::encode_stats(&stats),
                }
            } else {
                reply(FrameKind::StatsOk, wire::to_payload(&stats))
            };
            keep(jobs.send(job))
        }
        FrameKind::TraceDump => {
            let answer = match wire::from_payload::<wire::TraceQuery>(&payload) {
                Ok(query) => {
                    // The dump's `source` names this shard process in the
                    // assembled waterfall; the connection's local address
                    // is the listen address every peer knows it by.
                    let source = stream
                        .local_addr()
                        .map(|a| a.to_string())
                        .unwrap_or_else(|_| "shardd".to_string());
                    let filter = (query.trace != 0).then(|| TraceId::from_wire(query.trace));
                    let dump = service.flight_recorder().dump(&source, filter);
                    let exemplars = service.exemplars().exemplars();
                    reply(
                        FrameKind::TraceDumpOk,
                        wire::to_payload(&wire::TraceDumpReply { dump, exemplars }),
                    )
                }
                Err(fault) => fault_job(version, request_id, trace_id, &fault),
            };
            keep(jobs.send(answer))
        }
        FrameKind::Fingerprint => keep(jobs.send(reply(
            FrameKind::FingerprintOk,
            wire::to_payload(&service.ranker_fingerprint()),
        ))),
        FrameKind::ExportCache | FrameKind::ExtractCache => {
            let snapshot = wire::from_payload::<CacheSlice>(&payload).and_then(|slice| {
                if kind == FrameKind::ExportCache {
                    service.export_cache(slice.into_matcher())
                } else {
                    service.extract_cache(slice.into_matcher())
                }
            });
            match snapshot {
                Ok(snapshot) => keep(jobs.send(WriteJob::Snapshot {
                    version,
                    request_id,
                    // Request binary chunking on v4 links; the stream
                    // writer degrades to JSON when the snapshot's values
                    // overflow the binary codec's compact ranges.
                    codec: if version >= PROTOCOL_V4 {
                        PayloadCodec::Binary
                    } else {
                        PayloadCodec::Json
                    },
                    snapshot: Box::new(snapshot),
                })),
                Err(fault) => keep(jobs.send(fault_job(version, request_id, trace_id, &fault))),
            }
        }
        FrameKind::ImportCache => {
            // The chunk frames follow contiguously on the read half (the
            // client writes the whole stream under its writer lock).
            // Assemble and verify the WHOLE stream before importing: a
            // corrupted or torn transfer is rejected here and nothing
            // reaches the cache — a partial import is impossible by
            // construction.
            let expect_id = (version >= PROTOCOL_V2).then_some(request_id);
            let assembled = wire::from_payload::<SnapshotHeader>(&payload)
                .and_then(|header| wire::read_snapshot_chunks_for(stream, header, expect_id));
            match assembled {
                Ok(snapshot) => {
                    let answer = match service.import_cache(snapshot) {
                        Ok(applied) => reply(FrameKind::ImportOk, wire::to_payload(&applied)),
                        Err(fault) => fault_job(version, request_id, trace_id, &fault),
                    };
                    keep(jobs.send(answer))
                }
                Err(fault) => {
                    // The chunk stream may be desynced — answer, then close.
                    let _ = jobs.send(fault_job(version, request_id, trace_id, &fault));
                    Err(())
                }
            }
        }
        // A response or stream frame arriving as a request desyncs the
        // conversation: answer with a fault and drop the link.
        FrameKind::SnapshotHeader
        | FrameKind::SnapshotChunk
        | FrameKind::TuneOk
        | FrameKind::StatsOk
        | FrameKind::FingerprintOk
        | FrameKind::ImportOk
        | FrameKind::TraceDumpOk
        | FrameKind::Error => {
            let fault = ServeError::Transport(format!("{kind:?} is not a request frame"));
            let _ = jobs.send(fault_job(version, request_id, trace_id, &fault));
            Err(())
        }
    }
}

/// Send-result adapter: a failed send means the writer is gone (peer
/// stopped reading) — close the link; otherwise keep it.
fn keep(send: Result<(), mpsc::SendError<WriteJob>>) -> LinkState {
    send.map_err(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let policy = ReconnectPolicy {
            base: Duration::from_millis(25),
            factor: 2,
            max_delay: Duration::from_secs(1),
            attempts: 7,
        };
        let schedule: Vec<Duration> = policy.schedule().collect();
        assert_eq!(
            schedule,
            [25u64, 50, 100, 200, 400, 800, 1000] // capped at max_delay
                .into_iter()
                .map(Duration::from_millis)
                .collect::<Vec<_>>()
        );
        // Exhausted budget: no more delays.
        assert_eq!(policy.delay_before(7), None);
        assert_eq!(policy.delay_before(u32::MAX), None);
    }

    #[test]
    fn no_retry_policy_never_delays() {
        assert_eq!(ReconnectPolicy::NO_RETRY.delay_before(0), None);
        assert_eq!(ReconnectPolicy::NO_RETRY.schedule().count(), 0);
    }

    #[test]
    fn degenerate_factors_do_not_overflow() {
        let policy = ReconnectPolicy {
            base: Duration::from_millis(10),
            factor: u32::MAX,
            max_delay: Duration::from_secs(2),
            attempts: 5,
        };
        // factor^retry saturates instead of panicking, and the cap holds.
        for (i, delay) in policy.schedule().enumerate() {
            assert!(delay <= Duration::from_secs(2), "retry {i} over the cap: {delay:?}");
        }
        let zero = ReconnectPolicy { factor: 0, ..policy };
        // factor 0 is treated as 1 (constant backoff), not a zero delay.
        assert_eq!(zero.delay_before(3), Some(Duration::from_millis(10)));
    }
}
