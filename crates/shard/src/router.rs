//! The shard router: deterministic query routing plus cache warm-up
//! shipping on topology changes.

use sorl::tuner::TopK;
use sorl_obs::{assemble, RecorderDump, TraceId, Waterfall};
use sorl_serve::{Exemplar, ServeError, ServeStats};
use stencil_model::{InstanceKey, StencilInstance};

use crate::routing::{CacheSlice, Topology};
use crate::transport::ShardTransport;
use crate::wire::TraceDumpReply;

/// Why a fleet operation failed.
#[derive(Debug)]
pub enum ShardError {
    /// The router has no shards to route to.
    NoShards,
    /// The named shard is not part of the fleet.
    UnknownShard(String),
    /// A shard with this id is already attached.
    DuplicateShard(String),
    /// A joining shard serves a different ranking function than the
    /// fleet. Decisions must be interchangeable across shards, so this is
    /// a deployment error, not a warning.
    RankerMismatch {
        /// The joining shard.
        shard: String,
        /// Its ranker fingerprint.
        found: u64,
        /// The fleet's ranker fingerprint.
        expected: u64,
    },
    /// A transport call to a shard failed.
    Transport {
        /// The shard the call went to.
        shard: String,
        /// The underlying error.
        source: ServeError,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::NoShards => write!(f, "router has no shards"),
            ShardError::UnknownShard(id) => write!(f, "no shard named {id:?}"),
            ShardError::DuplicateShard(id) => write!(f, "shard {id:?} already attached"),
            ShardError::RankerMismatch { shard, found, expected } => write!(
                f,
                "shard {shard:?} serves ranker {found:#018x}, fleet serves {expected:#018x}"
            ),
            ShardError::Transport { shard, source } => {
                write!(f, "transport to shard {shard:?} failed: {source}")
            }
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Transport { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A fleet-wide stats sweep ([`ShardRouter::fleet_stats`]): every shard's
/// counters plus their merge. Unreachable shards keep their error in
/// `per_shard` and simply contribute nothing to `merged` — a stats sweep
/// never fails the fleet.
#[derive(Debug, Clone)]
pub struct FleetStats {
    /// All reachable shards' counters summed ([`ServeStats::merge`]:
    /// counters and histograms add, `max_batch` takes the max, latency
    /// percentiles are recomputed from the summed histogram).
    pub merged: ServeStats,
    /// Per-shard counters, id-sorted; errors are per-shard, not fatal.
    pub per_shard: Vec<(String, Result<ServeStats, ServeError>)>,
}

impl FleetStats {
    /// How many shards answered the sweep.
    pub fn reachable(&self) -> usize {
        self.per_shard.iter().filter(|(_, r)| r.is_ok()).count()
    }

    /// The spread between the best and worst per-shard cache hit rate
    /// (0.0 for a uniform — or empty — fleet). A large skew means the
    /// keyspace is hot-spotting: some shards answer from cache while
    /// others recompute.
    pub fn hit_rate_skew(&self) -> f64 {
        let rates: Vec<f64> = self
            .per_shard
            .iter()
            .filter_map(|(_, r)| r.as_ref().ok())
            .filter(|s| s.cache_hits + s.cache_misses > 0)
            .map(|s| s.cache_hits as f64 / (s.cache_hits + s.cache_misses) as f64)
            .collect();
        let max = rates.iter().copied().fold(f64::NAN, f64::max);
        let min = rates.iter().copied().fold(f64::NAN, f64::min);
        if max.is_nan() || min.is_nan() {
            0.0
        } else {
            max - min
        }
    }

    /// A one-line-per-shard text table (plus a totals row) — what
    /// `sorl-top` and the demo binaries print.
    pub fn summary_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>9} {:>8} {:>7} {:>6} {:>6} {:>10}",
            "shard", "requests", "hit-rate", "queue", "shed", "cache", "p99"
        );
        let row = |out: &mut String, id: &str, s: &ServeStats| {
            let lookups = s.cache_hits + s.cache_misses;
            let hit_rate = if lookups == 0 {
                "-".to_string()
            } else {
                format!("{:.1}%", 100.0 * s.cache_hits as f64 / lookups as f64)
            };
            let _ = writeln!(
                out,
                "{:<16} {:>9} {:>8} {:>7} {:>6} {:>6} {:>9.1}ms",
                id,
                s.requests,
                hit_rate,
                s.queue_depth,
                s.shed_queue + s.shed_latency,
                s.cache_entries,
                s.batch_latency_p99_s * 1e3,
            );
        };
        for (id, stats) in &self.per_shard {
            match stats {
                Ok(s) => row(&mut out, id, s),
                Err(e) => {
                    let _ = writeln!(out, "{id:<16} unreachable: {e}");
                }
            }
        }
        row(&mut out, "TOTAL", &self.merged);
        out
    }
}

/// A fleet-wide flight-recorder sweep ([`ShardRouter::fleet_trace`]):
/// every shard's recorder dump — optionally filtered to one trace — plus
/// its resident slow-request exemplars. Like a stats sweep, unreachable
/// shards keep their error in `per_shard` and the sweep never fails the
/// fleet: a waterfall assembled from the survivors is still evidence.
#[derive(Debug)]
pub struct FleetTrace {
    /// The trace the sweep filtered to (`None` = whole rings).
    pub trace: Option<TraceId>,
    /// Per-shard dumps, id-sorted; errors are per-shard, not fatal.
    pub per_shard: Vec<(String, Result<TraceDumpReply, ServeError>)>,
}

impl FleetTrace {
    /// How many shards answered the sweep.
    pub fn reachable(&self) -> usize {
        self.per_shard.iter().filter(|(_, r)| r.is_ok()).count()
    }

    /// Every reachable shard's recorder dump, in sweep order.
    pub fn dumps(&self) -> Vec<&RecorderDump> {
        self.per_shard.iter().filter_map(|(_, r)| r.as_ref().ok()).map(|r| &r.dump).collect()
    }

    /// Every reachable shard's resident exemplars, slowest first, tagged
    /// with the shard id they live on.
    pub fn exemplars(&self) -> Vec<(&str, &Exemplar)> {
        let mut out: Vec<(&str, &Exemplar)> = self
            .per_shard
            .iter()
            .filter_map(|(id, r)| r.as_ref().ok().map(|reply| (id, reply)))
            .flat_map(|(id, reply)| reply.exemplars.iter().map(move |e| (id.as_str(), e)))
            .collect();
        out.sort_by_key(|e| std::cmp::Reverse(e.1.latency_us));
        out
    }

    /// Assembles the sweep into one waterfall for `trace`. `client_dumps`
    /// go first, so a client-side request span (when present) anchors the
    /// fleet clock — see [`sorl_obs::assemble()`] for the alignment rules.
    pub fn assemble(&self, trace: TraceId, client_dumps: &[RecorderDump]) -> Waterfall {
        let mut dumps: Vec<RecorderDump> = client_dumps.to_vec();
        dumps.extend(self.dumps().into_iter().cloned());
        assemble(trace, &dumps)
    }
}

/// What a topology change shipped between caches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmupReport {
    /// Decisions applied to their new owner's cache.
    pub shipped: usize,
    /// Decisions the new owner rejected (stale ranker fingerprint or
    /// format) or, on a graceful removal, could not receive (unreachable
    /// survivor) — they are dropped and recomputed on demand.
    pub rejected: usize,
    /// Decisions that exceeded the new owner's cache capacity — the LRU
    /// overflow of an oversized handoff, dropped (not resident anywhere)
    /// and recomputed on demand.
    pub dropped: usize,
}

struct ShardEntry {
    id: String,
    /// The id's pinned routing seed ([`crate::routing::shard_seed`]),
    /// computed once at attach so the per-query hot path never re-hashes
    /// id strings.
    seed: u64,
    transport: Box<dyn ShardTransport>,
}

/// Routes tuning queries over a fleet of shards by rendezvous hashing of
/// [`InstanceKey::fingerprint`], shipping warm cache slices when the
/// topology changes.
///
/// Routing is a pure function of `(key fingerprint, shard id set)` — see
/// [`Topology`] — so any number of router instances (in any process)
/// agree on ownership without coordination. The router's own value-add is
/// *liveness*: it holds the transports, enforces that every shard serves
/// the same ranking function, and on [`add_shard`](Self::add_shard) /
/// [`remove_shard`](Self::remove_shard) moves exactly the decision-cache
/// entries whose ownership changed (an expected `1/N` fraction — the
/// property tests pin `< 2/N`).
pub struct ShardRouter {
    shards: Vec<ShardEntry>,
}

impl ShardRouter {
    /// An empty router (attach shards with [`add_shard`](Self::add_shard)).
    pub fn new() -> Self {
        ShardRouter { shards: Vec::new() }
    }

    /// A router over the given `(id, transport)` pairs.
    pub fn with_shards(
        shards: impl IntoIterator<Item = (String, Box<dyn ShardTransport>)>,
    ) -> Result<Self, ShardError> {
        let mut router = Self::new();
        for (id, transport) in shards {
            router.add_shard_boxed(id, transport)?;
        }
        Ok(router)
    }

    /// Number of attached shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether no shard is attached.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The attached shard ids, sorted.
    pub fn shard_ids(&self) -> Vec<&str> {
        self.shards.iter().map(|s| s.id.as_str()).collect()
    }

    /// The current routing topology (plain data — shippable to any other
    /// process that needs to agree on ownership).
    pub fn topology(&self) -> Topology {
        Topology::new(self.shards.iter().map(|s| s.id.clone()))
    }

    /// The shard that owns `key` (`None` with no shards attached).
    pub fn owner_of(&self, key: &InstanceKey) -> Option<&str> {
        let i = self.owner_index(key.fingerprint())?;
        self.shards.get(i).map(|s| s.id.as_str())
    }

    /// Routes one tuning query to its owning shard.
    pub fn tune(&self, instance: StencilInstance, k: usize) -> Result<TopK, ShardError> {
        let fp = instance.key().fingerprint();
        let i = self.owner_index(fp).ok_or(ShardError::NoShards)?;
        let shard = self.shards.get(i).ok_or(ShardError::NoShards)?;
        shard
            .transport
            .tune(instance, k)
            .map_err(|source| ShardError::Transport { shard: shard.id.clone(), source })
    }

    /// Per-shard serving counters (id-sorted, one entry per shard).
    pub fn stats(&self) -> Vec<(String, Result<ServeStats, ServeError>)> {
        self.shards.iter().map(|s| (s.id.clone(), s.transport.stats())).collect()
    }

    /// Sweeps [`stats`](Self::stats) across the fleet and merges every
    /// reachable shard's counters into one fleet-wide [`FleetStats`] view
    /// (hit-rate skew, queue depths, shed totals, true fleet latency
    /// percentiles recomputed from the summed histogram).
    pub fn fleet_stats(&self) -> FleetStats {
        let per_shard = self.stats();
        let merged = ServeStats::merge(per_shard.iter().filter_map(|(_, r)| r.as_ref().ok()));
        FleetStats { merged, per_shard }
    }

    /// Sweeps every shard's flight recorder (and exemplar store),
    /// optionally filtered to one trace — the gather half of fleet trace
    /// assembly ([`FleetTrace::assemble`]). Unreachable shards record
    /// their error and the sweep proceeds.
    pub fn fleet_trace(&self, trace: Option<TraceId>) -> FleetTrace {
        let per_shard =
            self.shards.iter().map(|s| (s.id.clone(), s.transport.trace_dump(trace))).collect();
        FleetTrace { trace, per_shard }
    }

    /// Exports one shard's full decision cache (without removing it) — the
    /// periodic-persistence path: save the snapshot to disk, and after a
    /// crash restart the shard warm from it
    /// ([`LocalShard::spawn_warm`](crate::LocalShard::spawn_warm)).
    pub fn snapshot_shard(&self, id: &str) -> Result<sorl_serve::CacheSnapshot, ShardError> {
        let shard = self
            .shards
            .iter()
            .find(|s| s.id == id)
            .ok_or_else(|| ShardError::UnknownShard(id.to_string()))?;
        shard
            .transport
            .export_cache(&CacheSlice::everything(id))
            .map_err(|source| ShardError::Transport { shard: id.to_string(), source })
    }

    /// Attaches a shard and warms it up: every existing shard hands over
    /// the cache slice the newcomer now owns (copied first, removed from
    /// the old owners only once the newcomer holds everything — so a
    /// failure mid-join never loses a decision). Fails without changing
    /// the topology (or any fleet cache) when the id is taken, the
    /// shard's ranker fingerprint differs from the fleet's, or a
    /// transport call fails.
    pub fn add_shard(
        &mut self,
        id: impl Into<String>,
        transport: impl ShardTransport + 'static,
    ) -> Result<WarmupReport, ShardError> {
        self.add_shard_boxed(id.into(), Box::new(transport))
    }

    fn add_shard_boxed(
        &mut self,
        id: String,
        transport: Box<dyn ShardTransport>,
    ) -> Result<WarmupReport, ShardError> {
        if self.shards.iter().any(|s| s.id == id) {
            return Err(ShardError::DuplicateShard(id));
        }
        let joining_fp = transport
            .ranker_fingerprint()
            .map_err(|source| ShardError::Transport { shard: id.clone(), source })?;
        if let Some(first) = self.shards.first() {
            let fleet_fp = first
                .transport
                .ranker_fingerprint()
                .map_err(|source| ShardError::Transport { shard: first.id.clone(), source })?;
            if joining_fp != fleet_fp {
                return Err(ShardError::RankerMismatch {
                    shard: id,
                    found: joining_fp,
                    expected: fleet_fp,
                });
            }
        }

        // Warm-up shipping: under the grown topology the newcomer owns a
        // slice of every existing shard's key range; move those decisions
        // over so they stay warm. (Keys that don't move keep their owner —
        // the rendezvous minimal-disruption property.) Two phases so a
        // failure can never lose decisions: first *copy* every slice into
        // the newcomer (an error here aborts the join with the fleet's
        // caches untouched — the newcomer holds at most harmless copies),
        // and only once the import succeeded *remove* the moved slices
        // from their old owners. The copies are merged into ONE import so
        // the newcomer's capacity cap applies once: per-source imports
        // would evict each other's entries while still counting them as
        // shipped.
        let grown = self.topology().with(&id);
        let slice = CacheSlice::owned_by(grown, &id);
        let mut moving: Option<sorl_serve::CacheSnapshot> = None;
        for old in &self.shards {
            let part = old
                .transport
                .export_cache(&slice)
                .map_err(|source| ShardError::Transport { shard: old.id.clone(), source })?;
            if part.is_empty() {
                continue;
            }
            match &mut moving {
                None => moving = Some(part),
                Some(m) => m.entries.extend(part.entries),
            }
        }
        let mut report = WarmupReport::default();
        if let Some(moving) = moving {
            let n = moving.len();
            match transport.import_cache(moving) {
                Ok(applied) => {
                    report.shipped = applied;
                    // `restore` skips the LRU overflow of an undersized
                    // cache; those decisions still leave the old owners
                    // in phase 2, so account for them honestly.
                    report.dropped = n - applied;
                }
                Err(ServeError::Snapshot(_)) => report.rejected = n,
                Err(source) => {
                    return Err(ShardError::Transport { shard: id.clone(), source });
                }
            }
        }
        for old in &self.shards {
            // The join is committed. Anything a live client cached into
            // the moving slice between the phase-1 copy and this extract
            // is forwarded to the newcomer rather than discarded (for
            // unchanged entries the forward is an idempotent same-key
            // replace). A shard that fails the cleanup merely keeps stale
            // copies of keys it no longer owns (never queried again, aged
            // out by LRU) — not worth failing the join over.
            if let Ok(extra) = old.transport.extract_cache(&slice) {
                if !extra.is_empty() {
                    let _ = transport.import_cache(extra);
                }
            }
        }

        self.shards.push(ShardEntry { seed: crate::routing::shard_seed(&id), id, transport });
        self.shards.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(report)
    }

    /// Gracefully removes a shard: its whole cache is extracted and
    /// redistributed to the keys' new owners before the transport is
    /// dropped. The error path is side-effect-free — the cache is
    /// extracted *before* the shard leaves the topology, so a failed
    /// extract (dead worker, transient transport error) returns with the
    /// fleet exactly as it was and the removal can be retried (or the
    /// shard [`detach_shard`](Self::detach_shard)ed, accepting the cache
    /// loss).
    pub fn remove_shard(&mut self, id: &str) -> Result<WarmupReport, ShardError> {
        let pos = self
            .shards
            .iter()
            .position(|s| s.id == id)
            .ok_or_else(|| ShardError::UnknownShard(id.to_string()))?;
        let everything = CacheSlice::everything(id);
        let snap = self
            .shards
            .get(pos)
            .ok_or_else(|| ShardError::UnknownShard(id.to_string()))?
            .transport
            .extract_cache(&everything)
            .map_err(|source| ShardError::Transport { shard: id.to_string(), source })?;
        self.shards.remove(pos);

        // Partition the departing cache by new owner and import each
        // slice. With no survivors the decisions are simply dropped (the
        // fleet is gone; there is nobody to keep them warm for).
        let topo = self.topology();
        let mut report = WarmupReport::default();
        let mut rest = snap;
        for survivor in &self.shards {
            let keep = CacheSlice::owned_by(topo.clone(), survivor.id.clone()).into_matcher();
            let mut mine = rest;
            rest = mine.split_off(keep);
            if mine.is_empty() {
                continue;
            }
            let n = mine.len();
            match survivor.transport.import_cache(mine) {
                Ok(applied) => {
                    report.shipped += applied;
                    report.dropped += n - applied;
                }
                // A survivor that rejects its slice (or cannot be
                // reached) drops it — those decisions are recomputed on
                // demand. Keep going: aborting here would also drop
                // everything destined for the *other* survivors.
                Err(_) => report.rejected += n,
            }
        }
        Ok(report)
    }

    /// Detaches a shard *without* shipping its cache — for a shard whose
    /// process is already gone (its decisions are lost and will be
    /// recomputed, or restored from a snapshot by a warm restart).
    pub fn detach_shard(&mut self, id: &str) -> Result<(), ShardError> {
        let pos = self
            .shards
            .iter()
            .position(|s| s.id == id)
            .ok_or_else(|| ShardError::UnknownShard(id.to_string()))?;
        self.shards.remove(pos);
        Ok(())
    }

    fn owner_index(&self, key_fingerprint: u64) -> Option<usize> {
        crate::routing::rendezvous_owner(
            self.shards.iter().map(|s| (s.id.as_str(), s.seed)),
            key_fingerprint,
        )
    }
}

impl Default for ShardRouter {
    fn default() -> Self {
        Self::new()
    }
}
