//! Deterministic synthetic rankers for demos, tests and load rigs.

use ranksvm::LinearRanker;
use sorl::StencilRanker;
use stencil_model::FeatureEncoder;

/// A deterministic dense ranker from a seed: xorshift weights over the
/// default interaction encoder — same seed, same weights, same
/// fingerprint, in every process and on every host. This is what
/// `sorl-shardd --synthetic-ranker SEED` serves; tests and supervisors
/// that need to predict a daemon's fingerprint must use *this* function
/// rather than re-deriving the weights (two drifted copies would break
/// the cross-process "same seed, same model" contract silently).
///
/// Not a trained model — real deployments train once and ship the saved
/// ranker (`StencilRanker::save_json`) to every shard.
pub fn synthetic_ranker(seed: u64) -> StencilRanker {
    let encoder = FeatureEncoder::default_interaction();
    // Only state 0 is degenerate for xorshift (it would freeze at zero
    // weights); remap just that one seed so every other u64 gets its own
    // model — an `| 1` style floor would silently alias each even seed
    // with its odd successor, halving the seed space.
    let mut state = seed.max(1);
    let w: Vec<f64> = (0..encoder.dim())
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        })
        .collect();
    StencilRanker::new(encoder, LinearRanker::from_weights(w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_fingerprint_different_seed_different_weights() {
        assert_eq!(synthetic_ranker(42).fingerprint(), synthetic_ranker(42).fingerprint());
        assert_ne!(synthetic_ranker(42).fingerprint(), synthetic_ranker(43).fingerprint());
        // Only the degenerate zero state is remapped (to 1).
        assert_eq!(synthetic_ranker(0).fingerprint(), synthetic_ranker(1).fingerprint());
        assert_ne!(synthetic_ranker(1).fingerprint(), synthetic_ranker(2).fingerprint());
    }
}
