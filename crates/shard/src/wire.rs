//! The cross-host shard wire protocol: length-prefixed, versioned frames
//! with JSON or binary payloads and chunked, per-chunk-checksummed
//! snapshot streaming. This build speaks protocol **v4** (multiplexed,
//! traced frames with a per-frame payload codec) and still reads and
//! answers **v3** (multiplexed, traced), **v2** (multiplexed, no trace)
//! and **v1** (lock-step) peers.
//!
//! Every frame starts with the v1 11-byte header; each later version
//! appends one strict-prefix-compatible field — v2 a request id so many
//! requests can be in flight per connection, v3 a trace id so one
//! request's spans on both ends of the link share a trace, v4 a payload
//! codec byte so the hottest payloads can travel binary:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  — b"SORL"
//! 4       2     protocol version (little endian; 1, 2, 3 or 4)
//! 6       1     frame kind (see [`FrameKind`])
//! 7       4     payload length (little endian)
//! 11      8     request id (little endian) — v2+ frames only
//! 19      8     trace id (little endian) — v3+ frames only (0 = absent)
//! 27      1     payload codec (see [`PayloadCodec`]) — v4 frames only
//! 11|19|27|28 len  payload
//! ```
//!
//! A v2+ response carries the request id of the request it answers; every
//! frame of a snapshot stream carries the id of the request that opened
//! the stream. v1 frames have no id ([`read_frame`] reports them as id
//! `0`) and imply lock-step call/response. A v3+ request carries the
//! submitting client's trace id (0 when untraced); the server stamps its
//! own spans with it and echoes it on the response. v1/v2 frames decode
//! as trace `0`, which the observability layer degrades to a fresh local
//! trace. A v4 frame additionally names its payload's encoding:
//! [`PayloadCodec::Json`] (byte `0`, the only pre-v4 encoding — pre-v4
//! frames decode as it) or [`PayloadCodec::Binary`] (byte `1`, the
//! little-endian codec in [`bin`]). Requests stay JSON in every version;
//! a v4 server answers the hot response kinds ([`FrameKind::TuneOk`],
//! [`FrameKind::StatsOk`], [`FrameKind::SnapshotChunk`]) binary and
//! everything else JSON, and a receiver always dispatches on the frame's
//! codec byte, never on its kind. Version negotiation is per-frame: a
//! receiver answers in the version (and, for hot kinds, the best codec)
//! the request arrived in, and an old peer rejects a newer-versioned
//! frame with its ordinary version-mismatch fault — which is exactly the
//! downgrade signal a dialer needs (see `TcpShard`, which ladders
//! v4 → v3 → v2 → v1).
//!
//! Request/response pairs ([`FrameKind::Tune`] → [`FrameKind::TuneOk`],
//! …) carry one JSON payload each. The v3 family adds the tracing pair
//! [`FrameKind::TraceDump`] → [`FrameKind::TraceDumpOk`]: the request
//! payload is a JSON [`TraceQuery`] (a raw trace id, `0` = everything)
//! and the response a JSON [`TraceDumpReply`] — the server's flight
//! recorder export plus its resident slow-request exemplars — which is
//! what `ShardRouter::fleet_trace` and the `sorl-trace` CLI assemble
//! into cross-process waterfalls. Snapshots never travel as one giant
//! JSON string: a snapshot stream is a [`FrameKind::SnapshotHeader`] frame
//! (JSON [`SnapshotHeader`], in every codec — the prologue stays humanly
//! inspectable) followed by `header.chunks` [`FrameKind::SnapshotChunk`]
//! frames, each `8-byte FNV-1a checksum ‖ chunk bytes` (see
//! [`sorl_serve::SnapshotChunk`] — the checksum is the pinned
//! [`stencil_model::fingerprint::Fnv1a`] over exactly the chunk bytes,
//! whatever their codec), so big caches stream chunk by chunk and a torn
//! or corrupted transfer is rejected deterministically before anything is
//! assembled. On a v4 link the chunk bytes are [`bin`]-encoded entries
//! instead of a JSON array; the frame's codec byte says which, and
//! [`SnapshotAssembler`] refuses streams that switch codec midway.
//!
//! Failures travel as [`FrameKind::Error`] frames whose payload is a
//! [`WireFault`] — a flat, versionable encoding of [`ServeError`] that
//! reconstructs the variant (including snapshot-rejection details) on the
//! other side.
//!
//! Anything malformed — wrong magic, unknown version or kind, oversized
//! length, short reads — is a [`WireError`]; transports surface it as
//! [`ServeError::Transport`] and treat the connection as dead.

use std::io::{Read, Write};

use serde::{Deserialize, Serialize};
use sorl_obs::RecorderDump;
use sorl_serve::{Exemplar, ServeError, ShedReason, SnapshotChunk, SnapshotError, SnapshotHeader};

pub mod bin;

/// Leading bytes of every frame.
pub const MAGIC: [u8; 4] = *b"SORL";

/// The original lock-step protocol: no request ids, one request in flight
/// per connection.
pub const PROTOCOL_V1: u16 = 1;

/// The multiplexed protocol: every frame carries a request id.
pub const PROTOCOL_V2: u16 = 2;

/// The traced protocol: every frame additionally carries a trace id
/// (0 when the sender is not tracing).
pub const PROTOCOL_V3: u16 = 3;

/// The codec-aware protocol: every frame additionally names its payload
/// encoding (see [`PayloadCodec`]), so the hottest payloads can travel
/// binary while everything else stays JSON.
pub const PROTOCOL_V4: u16 = 4;

/// The newest protocol version this build speaks (it also reads and
/// answers [`PROTOCOL_V1`] through [`PROTOCOL_V3`]).
pub const PROTOCOL_VERSION: u16 = PROTOCOL_V4;

/// Size of the fixed v1 frame header (also the shared prefix of every
/// later header).
pub const HEADER_LEN: usize = 11;

/// Size of a v2 frame header ([`HEADER_LEN`] plus the 8-byte request id).
pub const HEADER_LEN_V2: usize = HEADER_LEN + 8;

/// Size of a v3 frame header ([`HEADER_LEN_V2`] plus the 8-byte trace id).
pub const HEADER_LEN_V3: usize = HEADER_LEN_V2 + 8;

/// Size of a v4 frame header ([`HEADER_LEN_V3`] plus the codec byte).
pub const HEADER_LEN_V4: usize = HEADER_LEN_V3 + 1;

/// Upper bound on a single frame's payload. Chunked snapshot streaming
/// keeps real frames far below this; the cap exists so garbage bytes in
/// the length field cannot provoke a giant allocation.
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Entries per snapshot chunk used by the TCP transport and server.
pub const CHUNK_ENTRIES: usize = 256;

/// Upper bound on the total payload bytes of one snapshot stream. The
/// per-frame [`MAX_PAYLOAD`] cap alone would still let a peer stream an
/// unbounded *number* of chunks into the receiver's reassembly buffer;
/// this bounds the whole transfer (decision caches serialize to a few KiB
/// per entry — a quarter GiB is far beyond any real fleet handoff).
pub const MAX_SNAPSHOT_BYTES: usize = 256 * 1024 * 1024;

/// What a frame carries. The discriminant byte is part of the wire
/// contract — append, never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Request: tune one instance (JSON [`sorl_serve::TuneRequest`]).
    Tune = 0x01,
    /// Request: serving counters (empty payload).
    Stats = 0x02,
    /// Request: ranker fingerprint (empty payload).
    Fingerprint = 0x03,
    /// Request: copy a cache slice out (JSON [`crate::CacheSlice`]);
    /// answered with a snapshot stream.
    ExportCache = 0x04,
    /// Request: remove and return a cache slice (JSON
    /// [`crate::CacheSlice`]); answered with a snapshot stream.
    ExtractCache = 0x05,
    /// Request: replay a snapshot into the cache. The payload is the JSON
    /// [`SnapshotHeader`]; `header.chunks` [`FrameKind::SnapshotChunk`]
    /// frames follow. Answered with [`FrameKind::ImportOk`].
    ImportCache = 0x06,
    /// Request: export the flight recorder, optionally filtered to one
    /// trace (JSON [`TraceQuery`]). Answered with
    /// [`FrameKind::TraceDumpOk`].
    TraceDump = 0x07,
    /// Snapshot stream prologue (JSON [`SnapshotHeader`]).
    SnapshotHeader = 0x10,
    /// One snapshot chunk: `checksum (8 bytes LE) ‖ chunk JSON bytes`.
    SnapshotChunk = 0x11,
    /// Response to [`FrameKind::Tune`] (JSON [`sorl::tuner::TopK`]).
    TuneOk = 0x20,
    /// Response to [`FrameKind::Stats`] (JSON [`sorl_serve::ServeStats`]).
    StatsOk = 0x21,
    /// Response to [`FrameKind::Fingerprint`] (JSON `u64`).
    FingerprintOk = 0x22,
    /// Response to [`FrameKind::ImportCache`] (JSON `usize`: entries
    /// applied).
    ImportOk = 0x23,
    /// Response to [`FrameKind::TraceDump`] (JSON [`TraceDumpReply`]).
    TraceDumpOk = 0x24,
    /// Any request's failure response (JSON [`WireFault`]).
    Error = 0x2f,
}

/// How a v4 frame's payload is encoded. The discriminant byte is part of
/// the wire contract — append, never renumber. Pre-v4 frames have no
/// codec byte and always decode as [`PayloadCodec::Json`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum PayloadCodec {
    /// UTF-8 JSON — the only encoding of v1–v3 and the v4 default; every
    /// request and every non-hot response travels as it.
    #[default]
    Json = 0,
    /// The little-endian binary codec in [`bin`] — v4 responses of the
    /// hot kinds ([`FrameKind::TuneOk`], [`FrameKind::StatsOk`],
    /// [`FrameKind::SnapshotChunk`]).
    Binary = 1,
}

impl PayloadCodec {
    fn from_byte(b: u8) -> Option<PayloadCodec> {
        match b {
            0 => Some(PayloadCodec::Json),
            1 => Some(PayloadCodec::Binary),
            _ => None,
        }
    }
}

impl FrameKind {
    fn from_byte(b: u8) -> Option<FrameKind> {
        Some(match b {
            0x01 => FrameKind::Tune,
            0x02 => FrameKind::Stats,
            0x03 => FrameKind::Fingerprint,
            0x04 => FrameKind::ExportCache,
            0x05 => FrameKind::ExtractCache,
            0x06 => FrameKind::ImportCache,
            0x07 => FrameKind::TraceDump,
            0x10 => FrameKind::SnapshotHeader,
            0x11 => FrameKind::SnapshotChunk,
            0x20 => FrameKind::TuneOk,
            0x21 => FrameKind::StatsOk,
            0x22 => FrameKind::FingerprintOk,
            0x23 => FrameKind::ImportOk,
            0x24 => FrameKind::TraceDumpOk,
            0x2f => FrameKind::Error,
            _ => None?,
        })
    }
}

/// Why reading or writing a frame failed.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed (includes EOF mid-frame — a peer that
    /// closed the connection with a request in flight).
    Io(std::io::Error),
    /// The frame did not start with [`MAGIC`] — the peer is not speaking
    /// this protocol (or the stream lost sync).
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol version.
    Version {
        /// Version in the received header.
        found: u16,
    },
    /// The frame kind byte is not one this build knows.
    UnknownKind(u8),
    /// The v4 payload codec byte is not one this build knows.
    UnknownCodec(u8),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// A frame of an unexpected kind arrived (protocol state violation —
    /// e.g. a chunk without a header, or a tune reply to a stats request).
    Unexpected {
        /// The kind that arrived.
        found: FrameKind,
        /// What the state machine was waiting for.
        wanted: &'static str,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?} (not a SORL peer)"),
            WireError::Version { found } => {
                write!(
                    f,
                    "peer speaks protocol version {found}, this build speaks \
                     {PROTOCOL_V1}-{PROTOCOL_VERSION}"
                )
            }
            WireError::UnknownKind(b) => write!(f, "unknown frame kind {b:#04x}"),
            WireError::UnknownCodec(b) => write!(f, "unknown payload codec {b:#04x}"),
            WireError::Oversized(len) => {
                write!(f, "frame payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte cap")
            }
            WireError::Unexpected { found, wanted } => {
                write!(f, "unexpected {found:?} frame (wanted {wanted})")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Transport(e.to_string())
    }
}

/// One decoded frame: version, kind, request id (0 for v1 frames), trace
/// id (0 for pre-v3 frames), payload codec (JSON for pre-v4 frames) and
/// payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The version the frame arrived in ([`PROTOCOL_V1`]..
    /// [`PROTOCOL_V4`]) — a receiver answers in this version.
    pub version: u16,
    /// What the payload carries.
    pub kind: FrameKind,
    /// The request this frame belongs to. v1 frames have none on the wire
    /// and decode as `0`.
    pub request_id: u64,
    /// The trace the request belongs to. Pre-v3 frames (and untraced v3+
    /// senders) decode as `0`, meaning "absent" — the observability layer
    /// degrades that to a fresh local trace.
    pub trace_id: u64,
    /// How the payload is encoded. Pre-v4 frames have no codec byte and
    /// decode as [`PayloadCodec::Json`]; receivers dispatch on this, not
    /// on the frame kind.
    pub codec: PayloadCodec,
    /// The frame body.
    pub payload: Vec<u8>,
}

/// Writes one v1 (lock-step) frame.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> Result<(), WireError> {
    write_frame_full(w, PROTOCOL_V1, kind, 0, 0, payload)
}

/// Writes one v2 (multiplexed) frame carrying `request_id`.
pub fn write_frame_v2(
    w: &mut impl Write,
    kind: FrameKind,
    request_id: u64,
    payload: &[u8],
) -> Result<(), WireError> {
    write_frame_full(w, PROTOCOL_V2, kind, request_id, 0, payload)
}

/// Writes one v3 (multiplexed, traced) frame carrying `request_id` and
/// `trace_id` (0 when untraced).
pub fn write_frame_v3(
    w: &mut impl Write,
    kind: FrameKind,
    request_id: u64,
    trace_id: u64,
    payload: &[u8],
) -> Result<(), WireError> {
    write_frame_full(w, PROTOCOL_V3, kind, request_id, trace_id, payload)
}

/// Writes one untraced frame in the given protocol version. A v1 frame
/// silently drops `request_id` (v1 has nowhere to carry it; v1 callers
/// pass 0); a v3 frame goes out with trace id 0.
pub fn write_frame_in(
    w: &mut impl Write,
    version: u16,
    kind: FrameKind,
    request_id: u64,
    payload: &[u8],
) -> Result<(), WireError> {
    write_frame_full(w, version, kind, request_id, 0, payload)
}

/// Writes one frame in the given protocol version with every header
/// field except the codec (JSON, the only pre-v4 encoding) — the shape a
/// server needs to answer each request in the version it arrived in,
/// echoing its trace. Fields a version has no room for are silently
/// dropped.
pub fn write_frame_full(
    w: &mut impl Write,
    version: u16,
    kind: FrameKind,
    request_id: u64,
    trace_id: u64,
    payload: &[u8],
) -> Result<(), WireError> {
    write_frame_coded(w, version, kind, request_id, trace_id, PayloadCodec::Json, payload)
}

/// Writes one frame with every header field including the v4 payload
/// codec — the most general writer; every other `write_frame*` delegates
/// here. Fields a version has no room for are silently dropped, which for
/// the codec means a pre-v4 frame can only carry JSON: callers pick the
/// codec *after* version negotiation, so a non-JSON codec with a pre-v4
/// version is a caller bug (debug-asserted) and goes out as the JSON the
/// old peer will assume anyway.
pub fn write_frame_coded(
    w: &mut impl Write,
    version: u16,
    kind: FrameKind,
    request_id: u64,
    trace_id: u64,
    codec: PayloadCodec,
    payload: &[u8],
) -> Result<(), WireError> {
    debug_assert!((PROTOCOL_V1..=PROTOCOL_VERSION).contains(&version));
    debug_assert!(
        version >= PROTOCOL_V4 || codec == PayloadCodec::Json,
        "pre-v4 frames have no codec byte; negotiate the version before picking a codec"
    );
    let len = u32::try_from(payload.len()).map_err(|_| WireError::Oversized(u32::MAX))?;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized(len));
    }
    // The header is assembled front-to-back on the stack; `put` slices
    // with split_at_mut, so the whole path is free of panicking indexing.
    let mut header = [0u8; HEADER_LEN_V4];
    let mut rest = header.as_mut_slice();
    rest = put(rest, &MAGIC);
    rest = put(rest, &version.to_le_bytes());
    // sorl-lint: allow(cast, "FrameKind is a unit enum with discriminants < 256")
    rest = put(rest, &[kind as u8]);
    rest = put(rest, &len.to_le_bytes());
    if version >= PROTOCOL_V2 {
        rest = put(rest, &request_id.to_le_bytes());
    }
    if version >= PROTOCOL_V3 {
        rest = put(rest, &trace_id.to_le_bytes());
    }
    if version >= PROTOCOL_V4 {
        // sorl-lint: allow(cast, "PayloadCodec is a unit enum with discriminants < 256")
        rest = put(rest, &[codec as u8]);
    }
    let used = HEADER_LEN_V4 - rest.len();
    let (written, _) = header.split_at(used);
    w.write_all(written)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Copies `bytes` to the front of `buf`, returning the unwritten tail.
fn put<'a>(buf: &'a mut [u8], bytes: &[u8]) -> &'a mut [u8] {
    let (head, tail) = buf.split_at_mut(bytes.len());
    head.copy_from_slice(bytes);
    tail
}

/// Reads one frame (either version), validating magic, version, kind and
/// length.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut first = [0u8; 1];
    r.read_exact(&mut first)?;
    let [first] = first;
    read_frame_after(r, first)
}

/// Like [`read_frame`], resuming after the caller already read the
/// frame's first byte — the shape a server needs to wait for the *start*
/// of a request without a timeout (idle links are healthy) while still
/// timing out a peer that stalls *mid-frame*.
pub fn read_frame_after(r: &mut impl Read, first: u8) -> Result<Frame, WireError> {
    // Destructuring the fixed prefix into named bytes keeps the whole
    // parse free of panicking indexing — the pattern *is* the bounds
    // proof.
    let mut rest = [0u8; HEADER_LEN - 1];
    r.read_exact(&mut rest)?;
    let [m1, m2, m3, v0, v1, kind_b, l0, l1, l2, l3] = rest;
    let magic = [first, m1, m2, m3];
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = u16::from_le_bytes([v0, v1]);
    if !(PROTOCOL_V1..=PROTOCOL_VERSION).contains(&version) {
        return Err(WireError::Version { found: version });
    }
    let kind = FrameKind::from_byte(kind_b).ok_or(WireError::UnknownKind(kind_b))?;
    let len = u32::from_le_bytes([l0, l1, l2, l3]);
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized(len));
    }
    let request_id = if version >= PROTOCOL_V2 { read_u64(r)? } else { 0 };
    let trace_id = if version >= PROTOCOL_V3 { read_u64(r)? } else { 0 };
    let codec = if version >= PROTOCOL_V4 {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        let [b] = b;
        PayloadCodec::from_byte(b).ok_or(WireError::UnknownCodec(b))?
    } else {
        PayloadCodec::Json
    };
    let len = usize::try_from(len).map_err(|_| WireError::Oversized(u32::MAX))?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Frame { version, kind, request_id, trace_id, codec, payload })
}

fn read_u64(r: &mut impl Read) -> Result<u64, WireError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Reads a frame and insists on one specific kind; an [`FrameKind::Error`]
/// frame is decoded into the remote's [`ServeError`] instead. Lock-step
/// helper: the request id (if any) is not checked — multiplexed readers
/// route by id themselves.
pub fn expect_frame(
    r: &mut impl Read,
    wanted: FrameKind,
    wanted_name: &'static str,
) -> Result<Vec<u8>, ServeError> {
    let frame = read_frame(r)?;
    if frame.kind == wanted {
        return Ok(frame.payload);
    }
    if frame.kind == FrameKind::Error {
        return Err(decode_fault(&frame.payload));
    }
    Err(WireError::Unexpected { found: frame.kind, wanted: wanted_name }.into())
}

/// Parses a frame's JSON payload.
pub fn from_payload<T: serde::de::DeserializeOwned>(payload: &[u8]) -> Result<T, ServeError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| ServeError::Transport(format!("payload is not UTF-8: {e}")))?;
    serde_json::from_str(text)
        .map_err(|e| ServeError::Transport(format!("payload does not parse: {e}")))
}

/// Serializes a value into a frame payload.
pub fn to_payload<T: Serialize>(value: &T) -> Vec<u8> {
    // sorl-lint: allow(panic, "serializing our own derive(Serialize) types cannot fail")
    serde_json::to_string(value).expect("wire value serializes").into_bytes()
}

// ---------------------------------------------------------------------------
// Snapshot streaming
// ---------------------------------------------------------------------------

/// Streams a snapshot as a v1 header frame plus checksummed chunk frames.
pub fn write_snapshot_stream(
    w: &mut impl Write,
    snapshot: &sorl_serve::CacheSnapshot,
) -> Result<(), WireError> {
    write_snapshot_stream_in(w, PROTOCOL_V1, 0, snapshot)
}

/// Streams a snapshot in the given protocol version; every frame of a v2
/// stream carries `request_id` so a multiplexed reader can route the
/// whole stream to the request that opened it.
pub fn write_snapshot_stream_in(
    w: &mut impl Write,
    version: u16,
    request_id: u64,
    snapshot: &sorl_serve::CacheSnapshot,
) -> Result<(), WireError> {
    write_snapshot_stream_coded(w, version, request_id, PayloadCodec::Json, snapshot)
}

/// Streams a snapshot in the given version and payload codec. The chunk
/// payloads are encoded per `codec` ([`bin::snapshot_to_chunks`] for
/// binary); the header frame stays JSON in every codec so the stream
/// prologue is always inspectable. The codec silently degrades to JSON
/// when the version predates v4 or the snapshot holds values outside the
/// binary codec's compact ranges — the frames' codec bytes tell the
/// receiver what was actually sent, so degradation is invisible to
/// correctness.
pub fn write_snapshot_stream_coded(
    w: &mut impl Write,
    version: u16,
    request_id: u64,
    codec: PayloadCodec,
    snapshot: &sorl_serve::CacheSnapshot,
) -> Result<(), WireError> {
    let codec = match codec {
        PayloadCodec::Binary if version >= PROTOCOL_V4 && bin::snapshot_fits(snapshot) => {
            PayloadCodec::Binary
        }
        _ => PayloadCodec::Json,
    };
    let (header, chunks) = match codec {
        PayloadCodec::Json => snapshot.to_chunks(CHUNK_ENTRIES),
        PayloadCodec::Binary => bin::snapshot_to_chunks(snapshot, CHUNK_ENTRIES),
    };
    write_frame_coded(
        w,
        version,
        FrameKind::SnapshotHeader,
        request_id,
        0,
        PayloadCodec::Json,
        &to_payload(&header),
    )?;
    write_chunk_frames_coded(w, version, request_id, codec, &chunks)
}

/// Writes snapshot chunks as v1 [`FrameKind::SnapshotChunk`] frames.
pub fn write_chunk_frames(w: &mut impl Write, chunks: &[SnapshotChunk]) -> Result<(), WireError> {
    write_chunk_frames_in(w, PROTOCOL_V1, 0, chunks)
}

/// Writes snapshot chunks as [`FrameKind::SnapshotChunk`] frames in the
/// given version, each `checksum (8 bytes LE) ‖ chunk bytes`.
pub fn write_chunk_frames_in(
    w: &mut impl Write,
    version: u16,
    request_id: u64,
    chunks: &[SnapshotChunk],
) -> Result<(), WireError> {
    write_chunk_frames_coded(w, version, request_id, PayloadCodec::Json, chunks)
}

/// Writes snapshot chunks as [`FrameKind::SnapshotChunk`] frames in the
/// given version, stamping each with `codec` (the chunks must already be
/// encoded in it). *The* one encoder of the chunk frame layout — the
/// import side of a transport sends its chunks through here too, so the
/// layout cannot fork between directions.
pub fn write_chunk_frames_coded(
    w: &mut impl Write,
    version: u16,
    request_id: u64,
    codec: PayloadCodec,
    chunks: &[SnapshotChunk],
) -> Result<(), WireError> {
    for chunk in chunks {
        let mut payload = Vec::with_capacity(8 + chunk.payload.len());
        payload.extend_from_slice(&chunk.checksum.to_le_bytes());
        payload.extend_from_slice(&chunk.payload);
        write_frame_coded(w, version, FrameKind::SnapshotChunk, request_id, 0, codec, &payload)?;
    }
    Ok(())
}

/// Reads the chunk frames following a snapshot header and reassembles the
/// snapshot, verifying every chunk checksum and the header's counts. A
/// corrupted or torn stream yields `Err` without assembling anything.
pub fn read_snapshot_chunks(
    r: &mut impl Read,
    header: SnapshotHeader,
) -> Result<sorl_serve::CacheSnapshot, ServeError> {
    read_snapshot_chunks_for(r, header, None)
}

/// Like [`read_snapshot_chunks`], additionally insisting every chunk
/// frame carries `request_id` — a v2 stream whose chunks are contiguous
/// on the socket (the sender wrote them under one writer lock) but must
/// still belong to the request that opened the stream.
pub fn read_snapshot_chunks_for(
    r: &mut impl Read,
    header: SnapshotHeader,
    request_id: Option<u64>,
) -> Result<sorl_serve::CacheSnapshot, ServeError> {
    let mut assembler = SnapshotAssembler::new(header)?;
    while !assembler.is_complete() {
        let frame = read_frame(r).map_err(ServeError::from)?;
        if frame.kind == FrameKind::Error {
            return Err(decode_fault(&frame.payload));
        }
        if frame.kind != FrameKind::SnapshotChunk {
            return Err(
                WireError::Unexpected { found: frame.kind, wanted: "snapshot chunk" }.into()
            );
        }
        if let Some(id) = request_id {
            if frame.request_id != id {
                return Err(ServeError::Transport(format!(
                    "snapshot chunk carries request id {} inside stream {id}",
                    frame.request_id
                )));
            }
        }
        assembler.push_chunk_coded(frame.codec, &frame.payload)?;
    }
    assembler.finish()
}

/// Incremental, bounds-checked reassembly of one snapshot stream — the
/// shared core of the blocking readers above and of multiplexed readers
/// that receive a stream's frames one `read_frame` at a time (interleaved
/// with other requests' traffic).
#[derive(Debug)]
pub struct SnapshotAssembler {
    header: SnapshotHeader,
    chunks: Vec<SnapshotChunk>,
    total: usize,
    codec: Option<PayloadCodec>,
}

/// Memory charged per buffered chunk on top of its payload bytes — see
/// [`SnapshotAssembler::new`].
const CHUNK_CHARGE: usize = 64;

impl SnapshotAssembler {
    /// Starts a reassembly for `header`. The header is peer-supplied and
    /// unverified: the chunk count (and, as chunks arrive, the total
    /// accumulated memory) is bounded so a rogue peer cannot balloon the
    /// reassembly buffer one valid-sized frame at a time. Each buffered
    /// chunk costs its payload bytes PLUS the `SnapshotChunk` struct —
    /// charging only payload would let ~34M near-empty chunks through
    /// with gigabytes of struct overhead, so every chunk is charged at
    /// least `CHUNK_CHARGE`.
    pub fn new(header: SnapshotHeader) -> Result<Self, ServeError> {
        if header.chunks > MAX_SNAPSHOT_BYTES / CHUNK_CHARGE {
            return Err(ServeError::Transport(format!(
                "snapshot header claims {} chunks — over the stream bound",
                header.chunks
            )));
        }
        let capacity = header.chunks.min(1024);
        Ok(SnapshotAssembler {
            header,
            chunks: Vec::with_capacity(capacity),
            total: 0,
            codec: None,
        })
    }

    /// Buffers one JSON-codec [`FrameKind::SnapshotChunk`] payload
    /// (`checksum (8 bytes LE) ‖ chunk bytes`).
    pub fn push_chunk(&mut self, payload: &[u8]) -> Result<(), ServeError> {
        self.push_chunk_coded(PayloadCodec::Json, payload)
    }

    /// Buffers one [`FrameKind::SnapshotChunk`] payload
    /// (`checksum (8 bytes LE) ‖ chunk bytes`) arriving under `codec`.
    /// The first chunk pins the stream's codec; a stream that switches
    /// codec midway is rejected — the chunks of one snapshot decode as
    /// one encoding or not at all.
    pub fn push_chunk_coded(
        &mut self,
        codec: PayloadCodec,
        payload: &[u8],
    ) -> Result<(), ServeError> {
        let index = self.chunks.len();
        if index >= self.header.chunks {
            return Err(ServeError::Transport(format!(
                "snapshot chunk {index} past the {} the header declared",
                self.header.chunks
            )));
        }
        match self.codec {
            None => self.codec = Some(codec),
            Some(pinned) if pinned == codec => {}
            Some(pinned) => {
                return Err(ServeError::Transport(format!(
                    "snapshot chunk {index} arrived as {codec:?} in a {pinned:?} stream"
                )));
            }
        }
        let Some(checksum_bytes) = payload.first_chunk::<8>() else {
            return Err(ServeError::Transport(format!(
                "snapshot chunk {index} too short for its checksum"
            )));
        };
        self.total = self.total.saturating_add(payload.len().max(CHUNK_CHARGE));
        if self.total > MAX_SNAPSHOT_BYTES {
            return Err(ServeError::Transport(format!(
                "snapshot stream exceeded {MAX_SNAPSHOT_BYTES} bytes at chunk {index}"
            )));
        }
        let checksum = u64::from_le_bytes(*checksum_bytes);
        let body = payload.get(8..).unwrap_or_default();
        self.chunks.push(SnapshotChunk { index, checksum, payload: body.to_vec() });
        Ok(())
    }

    /// Whether every chunk the header declared has been buffered.
    pub fn is_complete(&self) -> bool {
        self.chunks.len() == self.header.chunks
    }

    /// Verifies and assembles the buffered stream, decoding the chunks in
    /// whichever codec they arrived under. A corrupted or torn stream
    /// yields `Err` without assembling anything.
    pub fn finish(self) -> Result<sorl_serve::CacheSnapshot, ServeError> {
        let assembled = match self.codec.unwrap_or_default() {
            PayloadCodec::Json => {
                sorl_serve::CacheSnapshot::from_chunks(&self.header, &self.chunks)
            }
            PayloadCodec::Binary => bin::snapshot_from_chunks(&self.header, &self.chunks),
        };
        assembled.map_err(|e| match e {
            // Wire-level damage (flipped bits, torn stream) is a transport
            // failure; semantic snapshot problems keep their own variant.
            SnapshotError::ChunkChecksum { .. } | SnapshotError::Truncated { .. } => {
                ServeError::Transport(format!("snapshot stream rejected: {e}"))
            }
            other => ServeError::Snapshot(other),
        })
    }
}

/// Reads a full snapshot stream (header frame + chunks).
pub fn read_snapshot_stream(r: &mut impl Read) -> Result<sorl_serve::CacheSnapshot, ServeError> {
    let payload = expect_frame(r, FrameKind::SnapshotHeader, "snapshot header")?;
    let header: SnapshotHeader = from_payload(&payload)?;
    read_snapshot_chunks(r, header)
}

// ---------------------------------------------------------------------------
// Trace dumps
// ---------------------------------------------------------------------------

/// Payload of a [`FrameKind::TraceDump`] request: which trace to export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceQuery {
    /// Raw trace id to filter the recorder export to; `0` means "the
    /// whole ring" (plus, either way, the resident exemplars).
    #[serde(default)]
    pub trace: u64,
}

/// Payload of a [`FrameKind::TraceDumpOk`] response: one process's
/// tracing evidence.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceDumpReply {
    /// The shard's flight-recorder export (filtered when the query asked
    /// for one trace), `source` set to the shard's listen address.
    pub dump: RecorderDump,
    /// The shard's resident slow-request exemplars, slowest first. Their
    /// event chains survive even after the ring overwrote the trace.
    pub exemplars: Vec<Exemplar>,
}

// ---------------------------------------------------------------------------
// Fault encoding
// ---------------------------------------------------------------------------

/// Flat wire encoding of a [`ServeError`]: a code string plus the numeric
/// context the richer variants carry, so the receiving side reconstructs
/// the exact variant (tests match on it; routers branch on it).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireFault {
    /// Which error: `closed`, `overloaded_queue`, `overloaded_latency`,
    /// `overloaded_link`, `snapshot_format`, `snapshot_ranker`,
    /// `snapshot_parse`, `snapshot_checksum`, `snapshot_truncated`,
    /// `transport`.
    pub code: String,
    /// Variant-specific numeric context (`found` value, chunk index).
    #[serde(default)]
    pub found: u64,
    /// Variant-specific numeric context (`expected` value).
    #[serde(default)]
    pub expected: u64,
    /// Human-readable detail (parse errors, transport messages, the
    /// `what` of a truncation).
    #[serde(default)]
    pub message: String,
}

/// Encodes a [`ServeError`] into an [`FrameKind::Error`] payload.
pub fn encode_fault(e: &ServeError) -> Vec<u8> {
    let fault = match e {
        ServeError::Closed => {
            WireFault { code: "closed".into(), found: 0, expected: 0, message: String::new() }
        }
        ServeError::Overloaded(reason) => WireFault {
            code: match reason {
                ShedReason::QueueFull => "overloaded_queue",
                ShedReason::BatchLatency => "overloaded_latency",
                ShedReason::LinkInFlight => "overloaded_link",
            }
            .into(),
            found: 0,
            expected: 0,
            message: String::new(),
        },
        ServeError::Snapshot(s) => match s {
            SnapshotError::FormatVersion { found, expected } => WireFault {
                code: "snapshot_format".into(),
                found: u64::from(*found),
                expected: u64::from(*expected),
                message: String::new(),
            },
            SnapshotError::RankerMismatch { found, expected } => WireFault {
                code: "snapshot_ranker".into(),
                found: *found,
                expected: *expected,
                message: String::new(),
            },
            SnapshotError::Parse(m) => WireFault {
                code: "snapshot_parse".into(),
                found: 0,
                expected: 0,
                message: m.clone(),
            },
            SnapshotError::ChunkChecksum { index } => WireFault {
                code: "snapshot_checksum".into(),
                found: u64::try_from(*index).unwrap_or(u64::MAX),
                expected: 0,
                message: String::new(),
            },
            SnapshotError::Truncated { what, found, expected } => WireFault {
                code: "snapshot_truncated".into(),
                found: u64::try_from(*found).unwrap_or(u64::MAX),
                expected: u64::try_from(*expected).unwrap_or(u64::MAX),
                message: (*what).to_string(),
            },
        },
        ServeError::Transport(m) => {
            WireFault { code: "transport".into(), found: 0, expected: 0, message: m.clone() }
        }
    };
    to_payload(&fault)
}

/// Decodes an [`FrameKind::Error`] payload back into a [`ServeError`].
pub fn decode_fault(payload: &[u8]) -> ServeError {
    let fault: WireFault = match from_payload(payload) {
        Ok(f) => f,
        Err(_) => return ServeError::Transport("peer sent an undecodable error frame".into()),
    };
    match fault.code.as_str() {
        "closed" => ServeError::Closed,
        "overloaded_queue" => ServeError::Overloaded(ShedReason::QueueFull),
        "overloaded_latency" => ServeError::Overloaded(ShedReason::BatchLatency),
        "overloaded_link" => ServeError::Overloaded(ShedReason::LinkInFlight),
        "snapshot_format" => ServeError::Snapshot(SnapshotError::FormatVersion {
            found: u32::try_from(fault.found).unwrap_or(u32::MAX),
            expected: u32::try_from(fault.expected).unwrap_or(u32::MAX),
        }),
        "snapshot_ranker" => ServeError::Snapshot(SnapshotError::RankerMismatch {
            found: fault.found,
            expected: fault.expected,
        }),
        "snapshot_parse" => ServeError::Snapshot(SnapshotError::Parse(fault.message)),
        "snapshot_checksum" => ServeError::Transport(format!(
            "remote rejected snapshot chunk {}: checksum mismatch",
            fault.found
        )),
        "snapshot_truncated" => ServeError::Transport(format!(
            "remote rejected torn snapshot stream: {} = {}, expected {}",
            fault.message, fault.found, fault.expected
        )),
        "transport" => ServeError::Transport(fault.message),
        other => ServeError::Transport(format!("peer sent unknown fault code {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorl_serve::CacheSnapshot;

    #[test]
    fn fault_counts_saturate_instead_of_truncating() {
        // Encode: usize counts ride the wire as u64 — a torn-stream
        // fault near usize::MAX must come out pinned at the type's max,
        // never wrapped to a small number.
        let torn = ServeError::Snapshot(SnapshotError::Truncated {
            what: "entries",
            found: usize::MAX,
            expected: 3,
        });
        let decoded = decode_fault(&encode_fault(&torn));
        match decoded {
            ServeError::Transport(m) => {
                assert!(m.contains(&u64::MAX.to_string()), "saturated count survives: {m}");
                assert!(m.contains("expected 3"), "small count is exact: {m}");
            }
            other => panic!("expected Transport, got {other:?}"),
        }

        // Decode: a peer claiming a format version beyond u32 must pin
        // to u32::MAX (a guaranteed mismatch), not truncate to a value
        // that could alias a *valid* local version.
        let fault = WireFault {
            code: "snapshot_format".into(),
            found: u64::from(u32::MAX) + 2, // would truncate to 1
            expected: 1,
            message: String::new(),
        };
        match decode_fault(&to_payload(&fault)) {
            ServeError::Snapshot(SnapshotError::FormatVersion { found, expected }) => {
                assert_eq!(found, u32::MAX);
                assert_eq!(expected, 1);
            }
            other => panic!("expected FormatVersion, got {other:?}"),
        }
    }

    #[test]
    fn frame_roundtrip_is_exact() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Tune, b"{\"k\":3}").unwrap();
        write_frame(&mut buf, FrameKind::Stats, b"").unwrap();
        let mut r = buf.as_slice();
        let frame = read_frame(&mut r).unwrap();
        assert_eq!(frame.version, PROTOCOL_V1);
        assert_eq!(frame.kind, FrameKind::Tune);
        assert_eq!(frame.request_id, 0, "v1 frames carry no id");
        assert_eq!(frame.payload, b"{\"k\":3}");
        let frame = read_frame(&mut r).unwrap();
        assert_eq!(frame.kind, FrameKind::Stats);
        assert!(frame.payload.is_empty());
        assert!(r.is_empty());
    }

    #[test]
    fn v2_frames_roundtrip_their_request_id() {
        let mut buf = Vec::new();
        write_frame_v2(&mut buf, FrameKind::Tune, 0x0123_4567_89ab_cdef, b"{\"k\":3}").unwrap();
        write_frame_v2(&mut buf, FrameKind::TuneOk, u64::MAX, b"").unwrap();
        let mut r = buf.as_slice();
        let frame = read_frame(&mut r).unwrap();
        assert_eq!(frame.version, PROTOCOL_V2);
        assert_eq!(frame.kind, FrameKind::Tune);
        assert_eq!(frame.request_id, 0x0123_4567_89ab_cdef);
        assert_eq!(frame.payload, b"{\"k\":3}");
        let frame = read_frame(&mut r).unwrap();
        assert_eq!(frame.request_id, u64::MAX);
        assert!(r.is_empty());
    }

    #[test]
    fn v3_frames_roundtrip_request_and_trace_ids() {
        let mut buf = Vec::new();
        write_frame_v3(&mut buf, FrameKind::Tune, 7, 0xfeed_face_cafe_f00d, b"{\"k\":3}").unwrap();
        write_frame_v3(&mut buf, FrameKind::TuneOk, 7, 0, b"").unwrap();
        let mut r = buf.as_slice();
        let frame = read_frame(&mut r).unwrap();
        assert_eq!(frame.version, PROTOCOL_V3);
        assert_eq!(frame.request_id, 7);
        assert_eq!(frame.trace_id, 0xfeed_face_cafe_f00d);
        assert_eq!(frame.payload, b"{\"k\":3}");
        let frame = read_frame(&mut r).unwrap();
        assert_eq!(frame.trace_id, 0, "untraced v3 frames carry trace 0");
        assert!(r.is_empty());
    }

    #[test]
    fn pre_v3_frames_decode_as_trace_zero() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Stats, b"").unwrap();
        write_frame_v2(&mut buf, FrameKind::Stats, 9, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().trace_id, 0);
        assert_eq!(read_frame(&mut r).unwrap().trace_id, 0);
    }

    #[test]
    fn mixed_version_frames_interleave_on_one_stream() {
        // Negotiation is per frame: a server must read a v1 frame arriving
        // after v2 traffic (and vice versa) without resyncing.
        let mut buf = Vec::new();
        write_frame_v2(&mut buf, FrameKind::Tune, 7, b"a").unwrap();
        write_frame(&mut buf, FrameKind::Stats, b"b").unwrap();
        write_frame_v3(&mut buf, FrameKind::Tune, 9, 0x1234, b"c").unwrap();
        write_frame_v2(&mut buf, FrameKind::Fingerprint, 8, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().request_id, 7);
        let v1 = read_frame(&mut r).unwrap();
        assert_eq!((v1.version, v1.request_id), (PROTOCOL_V1, 0));
        let v3 = read_frame(&mut r).unwrap();
        assert_eq!((v3.version, v3.request_id, v3.trace_id), (PROTOCOL_V3, 9, 0x1234));
        assert_eq!(read_frame(&mut r).unwrap().request_id, 8);
        assert!(r.is_empty());
    }

    #[test]
    fn trace_dump_frames_roundtrip() {
        use sorl_obs::WireEvent;
        let query = TraceQuery { trace: 0xabcd };
        let reply = TraceDumpReply {
            dump: RecorderDump {
                source: "127.0.0.1:7000".into(),
                anchor_unix_ns: 1_700_000_000_000_000_000,
                recorded: 12,
                dropped: 0,
                events: vec![WireEvent {
                    ticket: 3,
                    t_unix_ns: 1_700_000_000_000_001_000,
                    trace: 0xabcd,
                    span: 9,
                    kind: 0,
                    name: "rpc_tune".into(),
                }],
            },
            exemplars: vec![sorl_serve::Exemplar {
                trace: 0xabcd,
                latency_us: 42_000,
                captured_unix_ns: 1_700_000_000_000_002_000,
                events: Vec::new(),
            }],
        };
        let mut buf = Vec::new();
        write_frame_v3(&mut buf, FrameKind::TraceDump, 5, 0, &to_payload(&query)).unwrap();
        write_frame_v3(&mut buf, FrameKind::TraceDumpOk, 5, 0, &to_payload(&reply)).unwrap();
        let mut r = buf.as_slice();
        let frame = read_frame(&mut r).unwrap();
        assert_eq!(frame.kind, FrameKind::TraceDump);
        assert_eq!(from_payload::<TraceQuery>(&frame.payload).unwrap(), query);
        let frame = read_frame(&mut r).unwrap();
        assert_eq!(frame.kind, FrameKind::TraceDumpOk);
        let back: TraceDumpReply = from_payload(&frame.payload).unwrap();
        assert_eq!(back.dump.source, "127.0.0.1:7000");
        assert_eq!(back.dump.events, reply.dump.events);
        assert_eq!(back.exemplars.len(), 1);
        assert_eq!(back.exemplars[0].latency_us, 42_000);
        assert!(r.is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Stats, b"").unwrap();
        buf[0] = b'X';
        assert!(matches!(read_frame(&mut buf.as_slice()), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Stats, b"").unwrap();
        buf[4..6].copy_from_slice(&99u16.to_le_bytes());
        assert!(matches!(read_frame(&mut buf.as_slice()), Err(WireError::Version { found: 99 })));
    }

    #[test]
    fn unknown_kind_and_oversized_length_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Stats, b"").unwrap();
        buf[6] = 0x7e;
        assert!(matches!(read_frame(&mut buf.as_slice()), Err(WireError::UnknownKind(0x7e))));
        buf[6] = FrameKind::Stats as u8;
        buf[7..11].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(read_frame(&mut buf.as_slice()), Err(WireError::Oversized(_))));
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Tune, b"0123456789").unwrap();
        // Cut mid-payload (peer closed with a request in flight).
        buf.truncate(HEADER_LEN + 4);
        assert!(matches!(read_frame(&mut buf.as_slice()), Err(WireError::Io(_))));
    }

    #[test]
    fn empty_snapshot_streams_roundtrip() {
        let snap = CacheSnapshot::empty(42);
        let mut buf = Vec::new();
        write_snapshot_stream(&mut buf, &snap).unwrap();
        let back = read_snapshot_stream(&mut buf.as_slice()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn v2_snapshot_streams_are_checked_against_their_request_id() {
        let snap = CacheSnapshot::empty(42);
        let mut buf = Vec::new();
        write_snapshot_stream_in(&mut buf, PROTOCOL_V2, 55, &snap).unwrap();
        let mut r = buf.as_slice();
        let frame = read_frame(&mut r).unwrap();
        assert_eq!((frame.kind, frame.request_id), (FrameKind::SnapshotHeader, 55));
        let header: SnapshotHeader = from_payload(&frame.payload).unwrap();
        let back = read_snapshot_chunks_for(&mut r, header, Some(55)).unwrap();
        assert_eq!(back, snap);

        // The same stream read under a different expected id is rejected
        // chunk-by-chunk (an empty snapshot still has zero chunks, so use
        // a populated one to exercise the check).
        let mut cache = sorl_serve::DecisionCache::new(4);
        let instance = stencil_model::StencilInstance::new(
            stencil_model::StencilKernel::laplacian(),
            stencil_model::GridSize::cube(64),
        )
        .unwrap();
        cache.insert(
            instance.key(),
            vec![(stencil_model::TuningVector::new(8, 8, 8, 2, 1), 0.5)],
            8640,
        );
        let snap = cache.snapshot(7);
        let mut buf = Vec::new();
        write_snapshot_stream_in(&mut buf, PROTOCOL_V2, 55, &snap).unwrap();
        let mut r = buf.as_slice();
        let frame = read_frame(&mut r).unwrap();
        let header: SnapshotHeader = from_payload(&frame.payload).unwrap();
        let err = read_snapshot_chunks_for(&mut r, header, Some(56)).unwrap_err();
        assert!(
            matches!(err, ServeError::Transport(ref m) if m.contains("request id 55")),
            "{err}"
        );
    }

    #[test]
    fn corrupted_chunk_byte_fails_the_stream() {
        // A one-entry snapshot needs real entries; build one through the
        // public cache API to avoid duplicating entry construction here.
        let mut cache = sorl_serve::DecisionCache::new(4);
        let instance = stencil_model::StencilInstance::new(
            stencil_model::StencilKernel::laplacian(),
            stencil_model::GridSize::cube(64),
        )
        .unwrap();
        cache.insert(
            instance.key(),
            vec![(stencil_model::TuningVector::new(8, 8, 8, 2, 1), 0.5)],
            8640,
        );
        let snap = cache.snapshot(7);
        let mut buf = Vec::new();
        write_snapshot_stream(&mut buf, &snap).unwrap();
        // Flip a byte inside the chunk payload (past its header+checksum).
        let n = buf.len();
        buf[n - 3] ^= 0x20;
        let err = read_snapshot_stream(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, ServeError::Transport(_)), "{err}");
    }

    #[test]
    fn absurd_chunk_counts_are_rejected_before_buffering() {
        // A header claiming a giant chunk count must be rejected up front
        // — not honored one frame at a time until memory runs out.
        let header = SnapshotHeader {
            format_version: 1,
            ranker_fingerprint: 0,
            entries: usize::MAX,
            chunks: usize::MAX,
        };
        let err = read_snapshot_chunks(&mut [].as_slice(), header).unwrap_err();
        assert!(matches!(err, ServeError::Transport(ref m) if m.contains("bound")), "{err}");
    }

    #[test]
    fn faults_roundtrip_their_variant() {
        let faults = [
            ServeError::Closed,
            ServeError::Overloaded(ShedReason::QueueFull),
            ServeError::Overloaded(ShedReason::BatchLatency),
            ServeError::Overloaded(ShedReason::LinkInFlight),
            ServeError::Snapshot(SnapshotError::FormatVersion { found: 9, expected: 1 }),
            ServeError::Snapshot(SnapshotError::RankerMismatch { found: 1, expected: 2 }),
            ServeError::Snapshot(SnapshotError::Parse("bad".into())),
            ServeError::Transport("connection reset".into()),
        ];
        for fault in faults {
            assert_eq!(decode_fault(&encode_fault(&fault)), fault);
        }
        // Chunk damage decodes as Transport (a torn transfer, not a stale
        // snapshot) — the variant is not preserved, the rejection is.
        let e = decode_fault(&encode_fault(&ServeError::Snapshot(SnapshotError::ChunkChecksum {
            index: 3,
        })));
        assert!(matches!(e, ServeError::Transport(m) if m.contains("chunk 3")));
    }
}
