//! # sorl-shard — the fingerprint-sharded tuning fleet
//!
//! One `sorl-serve` process saturates at one worker's scoring throughput
//! and loses its decision cache on restart. This crate is the next layer
//! on the path to fleet-scale serving: a [`ShardRouter`] that spreads
//! queries over N shards and keeps their caches warm through restarts and
//! topology changes.
//!
//! ```text
//!                       ShardRouter
//!        key = InstanceKey::fingerprint() ── rendezvous hash ──┐
//!                                                              ▼
//!            ┌──────────────┬──────────────┬──────────────┐
//!            │   shard A    │   shard B    │   shard C    │   (ShardTransport;
//!            │ TuneService  │ TuneService  │ TuneService  │    LocalShard in-process,
//!            │ + decision   │ + decision   │ + decision   │    TcpShard cross-host)
//!            │   cache      │   cache      │   cache      │
//!            └──────────────┴──────────────┴──────────────┘
//!              │ snapshot/restore (versioned by ranker fingerprint)
//!              ▼
//!            disk — a restarted shard starts warm
//! ```
//!
//! Three design decisions carry the crate:
//!
//! * **Routing is pure data** ([`Topology`]): ownership is rendezvous
//!   hashing of the key fingerprint over the shard id set — deterministic
//!   across processes and hosts (both hashes are pinned), minimally
//!   disruptive under growth (only the new shard's slice moves; the
//!   property tests pin the remap fraction below `2/N`).
//! * **Transports are a trait** ([`ShardTransport`]): the router speaks
//!   plain-data requests and [`CacheSlice`] filters, never closures, so
//!   the in-process [`LocalShard`] and the cross-host [`TcpShard`] slot in
//!   interchangeably without touching routing or warm-up logic. `TcpShard`
//!   speaks a length-prefixed, versioned wire protocol ([`wire`]) to a
//!   [`ShardServer`] — in this process, another process (the `sorl-shardd`
//!   daemon binary), or another host — with snapshots streamed as
//!   checksummed chunks so torn transfers are rejected deterministically.
//! * **Decisions are durable and shippable** (`sorl-serve`'s
//!   [`CacheSnapshot`](sorl_serve::CacheSnapshot)): topology changes move
//!   exactly the affected cache slices between shards
//!   ([`ShardRouter::add_shard`] / [`remove_shard`](ShardRouter::remove_shard)),
//!   and a killed shard restarts warm from its last snapshot
//!   ([`LocalShard::spawn_warm`]) — both guarded by the ranker
//!   fingerprint, so decisions never outlive the model that computed them.
//!
//! Observability spans the fleet: [`ShardRouter::fleet_stats`] merges
//! counters, and [`ShardRouter::fleet_trace`] sweeps every shard's flight
//! recorder and slow-request exemplars over the wire
//! ([`wire::TraceQuery`] → [`wire::TraceDumpReply`]), assembling one
//! cross-process waterfall per trace ([`FleetTrace::assemble`]). The
//! `sorl-trace` binary renders it from the command line.
//!
//! See `examples/shard_demo.rs` for the full lifecycle: route over three
//! shards, kill one, restart it warm, and watch repeat queries stay cache
//! hits.

pub mod router;
pub mod routing;
pub mod synthetic;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use router::{FleetStats, FleetTrace, ShardError, ShardRouter, WarmupReport};
pub use routing::{rendezvous_owner, rendezvous_weight, shard_seed, CacheSlice, Topology};
pub use synthetic::synthetic_ranker;
pub use tcp::{LinkStats, ReconnectPolicy, ShardServer, ShardServerConfig, TcpShard};
pub use transport::{LocalShard, ShardTransport};
pub use wire::{TraceDumpReply, TraceQuery};
