//! Deterministic key→shard routing: rendezvous (highest-random-weight)
//! hashing over [`InstanceKey::fingerprint`]s.
//!
//! Rendezvous hashing gives exactly the two properties a tuning fleet
//! needs from its router:
//!
//! * **Determinism** — ownership is a pure function of the key fingerprint
//!   and the set of shard ids. Every router instance, on every host, in
//!   every process, computes the same owner; shard insertion order is
//!   irrelevant (the owner is an argmax over a *set*).
//! * **Minimal disruption** — when a shard joins, the only keys that move
//!   are the ones the new shard now wins (an expected `1/(N+1)` fraction);
//!   when a shard leaves, only *its* keys move, redistributed evenly over
//!   the survivors. No other key changes owner, so warm decision caches
//!   stay warm.
//!
//! The per-(shard, key) weight is a [splitmix64-style] finalizer over the
//! shard id's pinned FNV-1a seed combined with the key fingerprint — both
//! components are stable across builds and hosts (see
//! [`stencil_model::fingerprint`]), so the routing table itself is a
//! distributed invariant, never a negotiation.
//!
//! [splitmix64-style]: https://prng.di.unimi.it/splitmix64.c

use serde::{Deserialize, Serialize};
use stencil_model::fingerprint::Fnv1a;
use stencil_model::InstanceKey;

/// The pinned routing seed of a shard id: FNV-1a over its UTF-8 bytes.
pub fn shard_seed(id: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write_bytes(id.as_bytes());
    h.finish()
}

/// The rendezvous weight of `(shard, key)`: a strong 64-bit mix of the
/// shard's seed and the key fingerprint. The owner of a key is the shard
/// with the highest weight (ties broken by shard id, which in practice
/// never fires — a tie needs a 64-bit collision).
pub fn rendezvous_weight(shard_seed: u64, key_fingerprint: u64) -> u64 {
    let mut z = shard_seed ^ key_fingerprint.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// *The* rendezvous argmax of the workspace: the index of the owning
/// shard among `(id, seed)` pairs (seeds from [`shard_seed`]), or `None`
/// for an empty iterator. Highest [`rendezvous_weight`] wins; ties break
/// towards the smaller id. Every routing surface — [`Topology`], the
/// router's hot path — goes through this one function, so the tie-break
/// rule cannot drift between call sites (a drift would mis-route only on
/// 64-bit weight ties, which no test would ever catch).
pub fn rendezvous_owner<'a>(
    shards: impl IntoIterator<Item = (&'a str, u64)>,
    key_fingerprint: u64,
) -> Option<usize> {
    let mut best: Option<(usize, u64, &str)> = None;
    for (i, (id, seed)) in shards.into_iter().enumerate() {
        let w = rendezvous_weight(seed, key_fingerprint);
        let better = match &best {
            None => true,
            Some((_, bw, bid)) => w > *bw || (w == *bw && id < *bid),
        };
        if better {
            best = Some((i, w, id));
        }
    }
    best.map(|(i, _, _)| i)
}

/// A set of shard ids — the pure, serializable routing state.
///
/// A `Topology` answers exactly one question: *which shard owns this key
/// fingerprint?* It is what two processes must agree on to route
/// identically, and being plain data it can be shipped, logged and
/// embedded in a [`CacheSlice`] for cross-host cache handoffs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    shards: Vec<String>,
}

impl Topology {
    /// A topology over the given shard ids. Duplicates are dropped; order
    /// is irrelevant to routing (and normalized away).
    pub fn new(ids: impl IntoIterator<Item = impl Into<String>>) -> Self {
        let mut shards: Vec<String> = ids.into_iter().map(Into::into).collect();
        shards.sort();
        shards.dedup();
        Topology { shards }
    }

    /// The shard ids, sorted.
    pub fn shard_ids(&self) -> &[String] {
        &self.shards
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the topology has no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Whether `id` is part of the topology.
    pub fn contains(&self, id: &str) -> bool {
        self.shards.iter().any(|s| s == id)
    }

    /// A topology with `id` added (no-op when already present).
    pub fn with(&self, id: &str) -> Topology {
        let mut t = self.clone();
        if !t.contains(id) {
            t.shards.push(id.to_string());
            t.shards.sort();
        }
        t
    }

    /// A topology with `id` removed (no-op when absent).
    pub fn without(&self, id: &str) -> Topology {
        Topology { shards: self.shards.iter().filter(|s| *s != id).cloned().collect() }
    }

    /// The owning shard of a key fingerprint (`None` on an empty
    /// topology). Pure rendezvous ([`rendezvous_owner`]): max weight,
    /// ties towards the smaller id.
    pub fn owner_of_fingerprint(&self, key_fingerprint: u64) -> Option<&str> {
        rendezvous_owner(self.shards.iter().map(|s| (s.as_str(), shard_seed(s))), key_fingerprint)
            .and_then(|i| self.shards.get(i))
            .map(String::as_str)
    }

    /// The owning shard of an instance key.
    pub fn owner_of(&self, key: &InstanceKey) -> Option<&str> {
        self.owner_of_fingerprint(key.fingerprint())
    }

    /// A precomputed routing table for bulk ownership checks: the id
    /// seeds are hashed once here instead of once per key, which matters
    /// when filtering whole caches (warm-up shipping evaluates a slice
    /// predicate per cached entry).
    pub fn routing_table(&self) -> RoutingTable {
        RoutingTable {
            seeds: self.shards.iter().map(|s| shard_seed(s)).collect(),
            ids: self.shards.clone(),
        }
    }
}

/// A [`Topology`] with its per-shard seeds precomputed — same ownership
/// answers ([`rendezvous_owner`]), amortized hashing.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    ids: Vec<String>,
    seeds: Vec<u64>,
}

impl RoutingTable {
    /// The owning shard of a key fingerprint (`None` on an empty table).
    pub fn owner_of_fingerprint(&self, key_fingerprint: u64) -> Option<&str> {
        rendezvous_owner(
            self.ids.iter().map(String::as_str).zip(self.seeds.iter().copied()),
            key_fingerprint,
        )
        .and_then(|i| self.ids.get(i))
        .map(String::as_str)
    }
}

/// A serializable description of one shard's key range under a topology:
/// *the fingerprints `owner` owns*. This — not a closure — is the filter
/// shipped across a [`ShardTransport`](crate::ShardTransport) boundary
/// when caches are exported or extracted, so a future cross-host transport
/// can forward it as plain data.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheSlice {
    /// The topology the ownership is evaluated under.
    pub topology: Topology,
    /// The shard whose keys the slice selects.
    pub owner: String,
}

impl CacheSlice {
    /// The slice of keys `owner` owns under `topology`.
    pub fn owned_by(topology: Topology, owner: impl Into<String>) -> Self {
        CacheSlice { topology, owner: owner.into() }
    }

    /// A slice matching *every* key (the full-cache handoff of a
    /// departing shard): a single-shard topology owns everything.
    pub fn everything(owner: impl Into<String>) -> Self {
        let owner = owner.into();
        CacheSlice { topology: Topology::new([owner.clone()]), owner }
    }

    /// Whether the slice contains a key fingerprint.
    pub fn matches(&self, key_fingerprint: u64) -> bool {
        self.topology.owner_of_fingerprint(key_fingerprint) == Some(self.owner.as_str())
    }

    /// A standalone bulk matcher: behaves exactly like
    /// [`matches`](Self::matches) but with the topology's seeds hashed
    /// once up front — use it when filtering many keys (cache exports
    /// evaluate the predicate once per resident entry).
    pub fn into_matcher(self) -> impl Fn(u64) -> bool + Send {
        let table = self.topology.routing_table();
        let owner = self.owner;
        move |fp| table.owner_of_fingerprint(fp) == Some(owner.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A spread of synthetic key fingerprints (splitmix of the index, so
    /// they behave like real hash values).
    fn keys(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| rendezvous_weight(0x9e37_79b9, i)).collect()
    }

    #[test]
    fn ownership_ignores_shard_insertion_order() {
        let a = Topology::new(["s0", "s1", "s2"]);
        let b = Topology::new(["s2", "s0", "s1"]);
        assert_eq!(a, b, "topologies are sets");
        for fp in keys(500) {
            assert_eq!(a.owner_of_fingerprint(fp), b.owner_of_fingerprint(fp));
        }
    }

    #[test]
    fn empty_topology_owns_nothing() {
        let t = Topology::new(Vec::<String>::new());
        assert!(t.is_empty());
        assert_eq!(t.owner_of_fingerprint(42), None);
    }

    #[test]
    fn single_shard_owns_everything() {
        let t = Topology::new(["only"]);
        for fp in keys(100) {
            assert_eq!(t.owner_of_fingerprint(fp), Some("only"));
        }
        assert!(CacheSlice::everything("only").matches(12345));
    }

    #[test]
    fn duplicates_are_dropped() {
        let t = Topology::new(["a", "a", "b"]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn load_spreads_roughly_evenly() {
        let t = Topology::new(["s0", "s1", "s2", "s3"]);
        let mut counts = std::collections::HashMap::new();
        let n = 4000;
        for fp in keys(n) {
            *counts.entry(t.owner_of_fingerprint(fp).unwrap().to_string()).or_insert(0usize) += 1;
        }
        for (id, c) in &counts {
            let share = *c as f64 / n as f64;
            assert!((0.15..=0.35).contains(&share), "{id} owns {share:.3} of keys");
        }
    }

    #[test]
    fn growing_the_topology_only_moves_keys_to_the_new_shard() {
        let old = Topology::new(["s0", "s1", "s2"]);
        let new = old.with("s3");
        for fp in keys(2000) {
            let before = old.owner_of_fingerprint(fp).unwrap();
            let after = new.owner_of_fingerprint(fp).unwrap();
            assert!(after == before || after == "s3", "{fp:#x}: {before} -> {after}");
        }
    }

    #[test]
    fn shrinking_the_topology_only_moves_the_departing_shards_keys() {
        let old = Topology::new(["s0", "s1", "s2", "s3"]);
        let new = old.without("s1");
        for fp in keys(2000) {
            let before = old.owner_of_fingerprint(fp).unwrap();
            let after = new.owner_of_fingerprint(fp).unwrap();
            if before == "s1" {
                assert_ne!(after, "s1");
            } else {
                assert_eq!(after, before, "{fp:#x} moved without its owner departing");
            }
        }
    }

    #[test]
    fn cache_slice_matches_exactly_the_owned_keys() {
        let t = Topology::new(["s0", "s1", "s2"]);
        let slice = CacheSlice::owned_by(t.clone(), "s1");
        for fp in keys(1000) {
            assert_eq!(slice.matches(fp), t.owner_of_fingerprint(fp) == Some("s1"));
        }
    }

    #[test]
    fn slices_of_a_topology_partition_the_key_space() {
        let t = Topology::new(["s0", "s1", "s2"]);
        let slices: Vec<CacheSlice> =
            t.shard_ids().iter().map(|id| CacheSlice::owned_by(t.clone(), id.clone())).collect();
        for fp in keys(1000) {
            let owners = slices.iter().filter(|s| s.matches(fp)).count();
            assert_eq!(owners, 1, "{fp:#x} owned by {owners} shards");
        }
    }

    #[test]
    fn weights_and_seeds_are_pinned() {
        // Routing must never drift across releases: a changed weight
        // function would silently re-shuffle every deployed fleet.
        assert_eq!(shard_seed(""), 0xcbf2_9ce4_8422_2325, "FNV offset basis");
        let w = rendezvous_weight(shard_seed("shard-0"), 0x2fea_583f_93a3_3344);
        assert_eq!(w, PINNED_WEIGHT);
    }

    // Computed once from the pinned seed/mix; a change here is a routing
    // break, not a refactor.
    const PINNED_WEIGHT: u64 = 0xd747_0201_4292_9849;

    #[test]
    fn topology_serializes_for_cross_process_agreement() {
        let t = Topology::new(["a", "b"]);
        let json = serde_json::to_string(&t).unwrap();
        let back: Topology = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        let s = CacheSlice::owned_by(t, "a");
        let json = serde_json::to_string(&s).unwrap();
        let back: CacheSlice = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
