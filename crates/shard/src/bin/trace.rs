//! `sorl-trace` — assemble and render one fleet trace from the command
//! line.
//!
//! Sweeps the flight recorder of every listed shard over the wire
//! (`TraceDump` → `TraceDumpOk`), merges the dumps into one cross-process
//! waterfall, and prints it:
//!
//! ```sh
//! # a specific trace (the hex id a client logged or a TuneOk echoed):
//! sorl-trace --shard 10.0.0.1:7400 --shard 10.0.0.2:7400 --trace 0x9f3a...
//!
//! # or let the fleet pick: the slowest resident exemplar fleet-wide
//! sorl-trace --shard 10.0.0.1:7400 --shard 10.0.0.2:7400 --slowest
//! ```
//!
//! With `--slowest` the sweep is unfiltered: every shard also returns its
//! resident slow-request exemplars, the slowest one fleet-wide names the
//! trace, and its captured span chain joins the assembly as an extra dump
//! — so the waterfall survives even when the live rings have since
//! overwritten the request's spans. Shards that cannot be reached are
//! reported on stderr and skipped; the waterfall is assembled from the
//! survivors.

use std::process::ExitCode;

use sorl_obs::{RecorderDump, TraceId};
use sorl_shard::{FleetTrace, ShardTransport, TcpShard};

struct Options {
    shards: Vec<String>,
    trace: Option<u64>,
    slowest: bool,
}

const USAGE: &str =
    "usage: sorl-trace --shard HOST:PORT [--shard HOST:PORT ...] (--trace HEX | --slowest)";

fn parse_trace_id(raw: &str) -> Result<u64, String> {
    let hex = raw.strip_prefix("0x").unwrap_or(raw);
    u64::from_str_radix(hex, 16).map_err(|e| format!("bad trace id {raw:?}: {e}\n{USAGE}"))
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options { shards: Vec::new(), trace: None, slowest: false };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next().ok_or_else(|| format!("{flag} needs a {what} argument\n{USAGE}"))
        };
        match flag.as_str() {
            "--shard" => opts.shards.push(value("HOST:PORT")?),
            "--trace" => opts.trace = Some(parse_trace_id(&value("HEX")?)?),
            "--slowest" => opts.slowest = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            // Bare addresses are shards: `sorl-trace A:1 B:2 --slowest`.
            other if !other.starts_with('-') => opts.shards.push(other.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if opts.shards.is_empty() {
        return Err(format!("at least one --shard is required\n{USAGE}"));
    }
    if opts.trace.is_some() == opts.slowest {
        return Err(format!("exactly one of --trace / --slowest is required\n{USAGE}"));
    }
    Ok(opts)
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;
    // A read-only sweep, not a fleet join: connect each shard directly
    // (no fingerprint handshake, no warm-up shipping) and gather dumps
    // into the same `FleetTrace` a router sweep produces.
    let mut shards: Vec<(String, TcpShard)> = Vec::new();
    for addr in &opts.shards {
        let shard = TcpShard::connect(addr.as_str())
            .map_err(|e| format!("cannot connect to shard {addr}: {e}"))?;
        shards.push((addr.clone(), shard));
    }

    // --trace sweeps filtered (each shard ships only the one trace's
    // events); --slowest needs the unfiltered sweep to see exemplars.
    let filter = opts.trace.map(TraceId::from_wire).filter(|_| !opts.slowest);
    let sweep = FleetTrace {
        trace: filter,
        per_shard: shards.iter().map(|(addr, t)| (addr.clone(), t.trace_dump(filter))).collect(),
    };
    for (id, result) in &sweep.per_shard {
        if let Err(e) = result {
            eprintln!("sorl-trace: shard {id} unreachable: {e}");
        }
    }
    if sweep.reachable() == 0 {
        return Err("no shard answered the trace sweep".to_string());
    }

    // Exemplar events double as a dump: the request's span chain survives
    // there even after the live ring has overwritten it.
    let mut extra: Vec<RecorderDump> = Vec::new();
    let trace = match opts.trace {
        Some(raw) => TraceId::from_wire(raw),
        None => {
            let (shard, slowest) = sweep
                .exemplars()
                .into_iter()
                .next()
                .ok_or("no shard holds a slow-request exemplar yet")?;
            eprintln!(
                "sorl-trace: slowest exemplar on shard {shard}: trace {:#018x}, {:.1} ms",
                slowest.trace,
                slowest.latency_us as f64 / 1e3,
            );
            extra.push(RecorderDump {
                source: format!("{shard}/exemplar"),
                anchor_unix_ns: slowest.captured_unix_ns,
                recorded: slowest.events.len() as u64,
                dropped: 0,
                events: slowest.events.clone(),
            });
            TraceId::from_wire(slowest.trace)
        }
    };

    let waterfall = sweep.assemble(trace, &extra);
    if waterfall.spans.is_empty() {
        return Err(format!(
            "no shard has events for trace {:#018x} (rings overwrite; try --slowest)",
            trace.as_u64()
        ));
    }
    print!("{}", waterfall.render());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sorl-trace: {e}");
            ExitCode::FAILURE
        }
    }
}
