//! `sorl-shardd` — a standalone shard server process.
//!
//! Serves one `TuneService` behind the shard wire protocol so a
//! `ShardRouter` in another process (or on another host) can drive it via
//! `TcpShard`. This is the daemon a process supervisor spawns per shard;
//! see `examples/fleet_demo.rs` for the full fleet lifecycle.
//!
//! ```sh
//! sorl-shardd --addr 127.0.0.1:0 --ranker model.json [--snapshot cache.json]
//! ```
//!
//! On startup the daemon prints exactly one `LISTENING <addr>` line to
//! stdout (with the OS-assigned port resolved) — supervisors parse it to
//! learn where the shard listens — then serves until killed. With
//! `--snapshot PATH` it warm-starts by importing the cache snapshot at
//! `PATH` if one exists; a torn, stale or wrong-ranker snapshot is
//! rejected (logged to stderr) and the shard starts cold instead of
//! poisoned. Snapshots are written by the operator/router side
//! (`ShardRouter::snapshot_shard` + `CacheSnapshot::save_json`), not by
//! the daemon.
//!
//! `--max-queue N` bounds the service's submission queue, `--shed-p99-ms MS`
//! arms its rolling-p99 latency shedder (both shed with fast `overloaded`
//! faults instead of queueing into timeouts), and `--max-in-flight N` caps
//! concurrent tunes per router connection.
//!
//! `--metrics-addr HOST:PORT` additionally serves a Prometheus text
//! exposition page (`curl http://HOST:PORT/metrics`) with the shard's
//! serving counters, latency histograms, link aggregates and
//! flight-recorder depth; a second `LISTENING-METRICS <addr>` line on
//! stdout reports the resolved bind.
//!
//! `--synthetic-ranker SEED` serves a deterministic synthetic model
//! instead of a trained one — every process given the same seed serves the
//! same fingerprint, which is what demos, tests and load rigs need; real
//! deployments pass `--ranker` with a model trained once and shipped to
//! every shard (fleet joins are rejected on fingerprint mismatch).

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use sorl::StencilRanker;
use sorl_serve::{CacheSnapshot, ServeConfig, TuneService};
use sorl_shard::{synthetic_ranker, ShardServer, ShardServerConfig};

struct Options {
    addr: String,
    metrics_addr: Option<String>,
    ranker: Option<PathBuf>,
    synthetic_seed: Option<u64>,
    snapshot: Option<PathBuf>,
    threads: Option<usize>,
    cache_capacity: Option<usize>,
    max_queue: Option<usize>,
    shed_p99_ms: Option<u64>,
    max_in_flight: Option<usize>,
}

const USAGE: &str =
    "usage: sorl-shardd [--addr HOST:PORT] (--ranker MODEL.json | --synthetic-ranker SEED) \
     [--snapshot CACHE.json] [--threads N] [--cache-capacity N] [--max-queue N] \
     [--shed-p99-ms MS] [--max-in-flight N] [--metrics-addr HOST:PORT]";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        addr: "127.0.0.1:0".to_string(),
        metrics_addr: None,
        ranker: None,
        synthetic_seed: None,
        snapshot: None,
        threads: None,
        cache_capacity: None,
        max_queue: None,
        shed_p99_ms: None,
        max_in_flight: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next().ok_or_else(|| format!("{flag} needs a {what} argument\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => opts.addr = value("HOST:PORT")?,
            "--metrics-addr" => opts.metrics_addr = Some(value("HOST:PORT")?),
            "--ranker" => opts.ranker = Some(PathBuf::from(value("path")?)),
            "--synthetic-ranker" => {
                let seed = value("seed")?;
                opts.synthetic_seed =
                    Some(seed.parse().map_err(|e| format!("bad seed {seed:?}: {e}"))?);
            }
            "--snapshot" => opts.snapshot = Some(PathBuf::from(value("path")?)),
            "--threads" => {
                let n = value("count")?;
                opts.threads = Some(n.parse().map_err(|e| format!("bad thread count {n:?}: {e}"))?);
            }
            "--cache-capacity" => {
                let n = value("count")?;
                opts.cache_capacity =
                    Some(n.parse().map_err(|e| format!("bad capacity {n:?}: {e}"))?);
            }
            "--max-queue" => {
                let n = value("count")?;
                opts.max_queue = Some(n.parse().map_err(|e| format!("bad queue cap {n:?}: {e}"))?);
            }
            "--shed-p99-ms" => {
                let ms = value("milliseconds")?;
                opts.shed_p99_ms =
                    Some(ms.parse().map_err(|e| format!("bad p99 threshold {ms:?}: {e}"))?);
            }
            "--max-in-flight" => {
                let n = value("count")?;
                opts.max_in_flight =
                    Some(n.parse().map_err(|e| format!("bad in-flight cap {n:?}: {e}"))?);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if opts.ranker.is_some() == opts.synthetic_seed.is_some() {
        return Err(format!("exactly one of --ranker / --synthetic-ranker is required\n{USAGE}"));
    }
    Ok(opts)
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;
    let ranker = match (&opts.ranker, opts.synthetic_seed) {
        (Some(path), _) => StencilRanker::load_json(path)
            .map_err(|e| format!("cannot load ranker {}: {e}", path.display()))?,
        (None, Some(seed)) => synthetic_ranker(seed),
        (None, None) => unreachable!("parse_args enforces one ranker source"),
    };

    let mut config = ServeConfig::default();
    if let Some(threads) = opts.threads {
        config.threads = threads;
    }
    if let Some(capacity) = opts.cache_capacity {
        config.cache_capacity = capacity;
    }
    // Admission control: bound the submission queue and/or arm the rolling
    // p99 latency shedder (0 keeps either disabled).
    if let Some(max_queue) = opts.max_queue {
        config.max_queue = max_queue;
    }
    if let Some(ms) = opts.shed_p99_ms {
        config.shed_p99 = std::time::Duration::from_millis(ms);
    }

    let service = TuneService::spawn(ranker, config);
    eprintln!("sorl-shardd: serving ranker {:#018x}", service.ranker_fingerprint());

    // Warm start: a missing snapshot is normal (first boot), a rejected
    // one (torn file, stale ranker) must not poison the shard — log and
    // serve cold.
    if let Some(path) = &opts.snapshot {
        if path.exists() {
            match CacheSnapshot::load_json(path)
                .map_err(|e| e.to_string())
                .and_then(|snapshot| service.import_cache(snapshot).map_err(|e| e.to_string()))
            {
                Ok(restored) => {
                    eprintln!("sorl-shardd: warm start, {restored} decisions restored");
                }
                Err(e) => eprintln!(
                    "sorl-shardd: snapshot {} rejected ({e}); starting cold",
                    path.display()
                ),
            }
        }
    }

    let mut server_config = ShardServerConfig::default();
    if let Some(cap) = opts.max_in_flight {
        server_config.max_in_flight = cap;
    }
    let server = ShardServer::spawn_with(service, opts.addr.as_str(), server_config)
        .map_err(|e| format!("cannot bind {}: {e}", opts.addr))?;
    // The supervisor contract: exactly one LISTENING line on stdout
    // (first), then — only with --metrics-addr — one LISTENING-METRICS
    // line for the scrape endpoint.
    println!("LISTENING {}", server.local_addr());
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    let _metrics = match &opts.metrics_addr {
        Some(bind) => {
            let metrics = server
                .serve_metrics(bind.as_str())
                .map_err(|e| format!("cannot bind metrics endpoint {bind}: {e}"))?;
            println!("LISTENING-METRICS {}", metrics.local_addr());
            std::io::stdout().flush().map_err(|e| e.to_string())?;
            Some(metrics)
        }
        None => None,
    };

    // Serve until killed (the accept loop runs on its own thread).
    loop {
        std::thread::park();
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sorl-shardd: {e}");
            ExitCode::FAILURE
        }
    }
}
