//! `sorl-top` — a terminal dashboard over a running tuning fleet.
//!
//! Polls each shard's `stats()` over the wire protocol and renders one
//! line per shard (requests, hit rate, queue depth, sheds, cache
//! residency, p99) plus a fleet totals row and the hit-rate skew — the
//! same merge [`ShardRouter::fleet_stats`](sorl_shard::ShardRouter)
//! performs, but addressed directly so it works against any reachable
//! `sorl-shardd` processes without attaching them to a router (no
//! fingerprint checks, no cache shipping — a dashboard must never mutate
//! the fleet it watches).
//!
//! ```sh
//! sorl-top 127.0.0.1:7001 127.0.0.1:7002 [--interval SECS] [--once]
//! ```
//!
//! `--once` prints a single snapshot and exits (scripts, tests); the
//! default loops forever, redrawing every `--interval` (default 2s).
//! Unreachable shards stay in the table with their error — a dashboard
//! that drops dead shards from view is how outages get missed.

use std::process::ExitCode;
use std::time::Duration;

use sorl_serve::ServeStats;
use sorl_shard::{FleetStats, ReconnectPolicy, ShardTransport, TcpShard};

struct Options {
    shards: Vec<String>,
    interval: Duration,
    once: bool,
}

const USAGE: &str = "usage: sorl-top HOST:PORT [HOST:PORT ...] [--interval SECS] [--once]";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options { shards: Vec::new(), interval: Duration::from_secs(2), once: false };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--interval" => {
                let secs = args.next().ok_or_else(|| format!("--interval needs SECS\n{USAGE}"))?;
                let secs: f64 = secs.parse().map_err(|e| format!("bad interval {secs:?}: {e}"))?;
                // Also rejects NaN/inf, which `Duration::from_secs_f64`
                // would panic on.
                if !(secs.is_finite() && secs > 0.0) {
                    return Err(format!("--interval must be positive\n{USAGE}"));
                }
                opts.interval = Duration::from_secs_f64(secs);
            }
            "--once" => opts.once = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}\n{USAGE}")),
            addr => opts.shards.push(addr.to_string()),
        }
    }
    if opts.shards.is_empty() {
        return Err(format!("at least one shard address is required\n{USAGE}"));
    }
    Ok(opts)
}

/// One stats sweep over the fleet, shaped exactly like
/// `ShardRouter::fleet_stats` so the rendering is shared.
fn sweep(shards: &[(String, TcpShard)]) -> FleetStats {
    let per_shard: Vec<_> = shards.iter().map(|(id, shard)| (id.clone(), shard.stats())).collect();
    let merged = ServeStats::merge(per_shard.iter().filter_map(|(_, r)| r.as_ref().ok()));
    FleetStats { merged, per_shard }
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;
    // A dashboard should fail fast on a dead shard, not sit in backoff:
    // each sweep that finds the link down redials exactly once.
    let shards: Vec<(String, TcpShard)> = opts
        .shards
        .iter()
        .map(|addr| {
            TcpShard::connect(addr.as_str())
                .map(|shard| (addr.clone(), shard.with_reconnect(ReconnectPolicy::NO_RETRY)))
                // An unreachable shard at startup still belongs on the
                // board; the lazy link keeps retrying per sweep.
                .or_else(|_| {
                    TcpShard::connect_lazy(addr.as_str())
                        .map(|shard| {
                            (addr.clone(), shard.with_reconnect(ReconnectPolicy::NO_RETRY))
                        })
                        .map_err(|e| format!("bad shard address {addr:?}: {e}"))
                })
        })
        .collect::<Result<_, _>>()?;

    loop {
        let fleet = sweep(&shards);
        if !opts.once {
            // ANSI clear + home: redraw in place like top(1).
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", fleet.summary_table());
        println!(
            "fleet: {}/{} shards reachable, hit-rate skew {:.1}%",
            fleet.reachable(),
            shards.len(),
            fleet.hit_rate_skew() * 100.0
        );
        if opts.once {
            return Ok(());
        }
        std::thread::sleep(opts.interval);
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sorl-top: {e}");
            ExitCode::FAILURE
        }
    }
}
