//! The v4 binary payload codec: compact little-endian encodings for the
//! wire's hottest payloads — [`TopK`] ([`FrameKind::TuneOk`]),
//! [`ServeStats`] ([`FrameKind::StatsOk`]) and snapshot-chunk entry blocks
//! ([`FrameKind::SnapshotChunk`]).
//!
//! Design rules, in order:
//!
//! * **Exactness.** `f64` values travel as their IEEE bit pattern and
//!   `u64` counters as 8 little-endian bytes — a binary→decode roundtrip
//!   is bit-for-bit, with none of JSON's float-formatting concerns. The
//!   property tests pit every codec against its JSON twin on identical
//!   values.
//! * **Fault, never panic.** Decoders consume a [`Reader`] whose every
//!   step is bounds-checked; truncated or garbage payloads produce a
//!   decode error (surfaced as [`ServeError::Transport`] /
//!   [`SnapshotError::Parse`]), and trailing bytes are rejected too. No
//!   input can index out of bounds or provoke a giant allocation.
//! * **Compactness over generality.** Tuning components ride as `u16`
//!   (the paper's space caps blocks at 1024, unroll at 8, chunk at 256)
//!   and stencil offsets as `i16`. Values outside those ranges cannot be
//!   encoded — `*_fits` reports that up front and the transport silently
//!   falls back to JSON for that payload (the frame's codec byte keeps
//!   the receiver in the loop), so compaction can never corrupt.
//!
//! Snapshot chunks use [`CacheSnapshot::to_chunks_with`] /
//! [`CacheSnapshot::from_chunks_with`], so chunk boundaries, the byte
//! budget and FNV-1a checksumming are byte-for-byte the same machinery as
//! the JSON stream — only the entry rendition differs: a binary chunk is
//! `u32 entry count ‖ concatenated entry encodings`.
//!
//! [`FrameKind::TuneOk`]: super::FrameKind::TuneOk
//! [`FrameKind::StatsOk`]: super::FrameKind::StatsOk
//! [`FrameKind::SnapshotChunk`]: super::FrameKind::SnapshotChunk

use sorl::TopK;
use sorl_serve::stats::{BATCH_SIZE_BUCKETS, LATENCY_BUCKETS};
use sorl_serve::{
    CacheSnapshot, ServeError, ServeStats, SnapshotChunk, SnapshotEntry, SnapshotError,
    SnapshotHeader,
};
use stencil_model::{DType, GridSize, InstanceKey, Offset, StencilPattern, TuningVector};

// ---------------------------------------------------------------------------
// TopK
// ---------------------------------------------------------------------------

/// Whether `top` holds only values the binary codec can carry (every
/// tuning component fits `u16`).
pub fn top_k_fits(top: &TopK) -> bool {
    top.entries.iter().all(|(t, _)| tuning_fits(t))
}

/// Encodes a [`TopK`]:
/// `u32 n ‖ n × (tuning ‖ f64 score) ‖ u64 candidates ‖ f64 seconds`.
/// Call [`top_k_fits`] first; out-of-range components saturate (and
/// debug-assert) rather than panic.
pub fn encode_top_k(top: &TopK) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + top.entries.len() * 18);
    put_u32_len(&mut out, top.entries.len());
    for (t, score) in &top.entries {
        put_tuning(&mut out, t);
        out.extend_from_slice(&score.to_le_bytes());
    }
    out.extend_from_slice(&u64::try_from(top.candidates).unwrap_or(u64::MAX).to_le_bytes());
    out.extend_from_slice(&top.seconds.to_le_bytes());
    out
}

/// Decodes an [`encode_top_k`] payload. Truncated or trailing bytes fault.
pub fn decode_top_k(payload: &[u8]) -> Result<TopK, ServeError> {
    let mut r = Reader::new(payload);
    let top = read_top_k(&mut r).map_err(|m| transport("TuneOk", &m))?;
    r.finish().map_err(|m| transport("TuneOk", &m))?;
    Ok(top)
}

fn read_top_k(r: &mut Reader<'_>) -> Result<TopK, String> {
    let n = r.len()?;
    let mut entries = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let t = read_tuning(r)?;
        let score = r.f64()?;
        entries.push((t, score));
    }
    let candidates =
        usize::try_from(r.u64()?).map_err(|_| "candidate count overflow".to_owned())?;
    let seconds = r.f64()?;
    Ok(TopK { entries, candidates, seconds })
}

// ---------------------------------------------------------------------------
// ServeStats
// ---------------------------------------------------------------------------

/// Encodes a [`ServeStats`]: the eleven `u64` counters in declaration
/// order, the recent-p99 gauge, the length-prefixed batch-size histogram,
/// the three all-time latency percentiles, then the length-prefixed
/// latency histogram. All fields are fixed-width, so this encoder is
/// total — no `*_fits` needed.
pub fn encode_stats(stats: &ServeStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(136 + 8 * (BATCH_SIZE_BUCKETS + LATENCY_BUCKETS));
    for counter in [
        stats.requests,
        stats.batches,
        stats.max_batch,
        stats.scored_instances,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.cache_entries,
        stats.queue_depth,
        stats.shed_queue,
        stats.shed_latency,
    ] {
        out.extend_from_slice(&counter.to_le_bytes());
    }
    out.extend_from_slice(&stats.recent_batch_latency_p99_s.to_le_bytes());
    put_u32_len(&mut out, stats.batch_size_hist.len());
    for v in stats.batch_size_hist {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for p in [stats.batch_latency_p50_s, stats.batch_latency_p95_s, stats.batch_latency_p99_s] {
        out.extend_from_slice(&p.to_le_bytes());
    }
    put_u32_len(&mut out, stats.batch_latency_hist.len());
    for v in stats.batch_latency_hist {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes an [`encode_stats`] payload. Histogram length prefixes must
/// match this build's bucket counts — a peer with different buckets gets
/// a clean fault, never a misparse.
pub fn decode_stats(payload: &[u8]) -> Result<ServeStats, ServeError> {
    let mut r = Reader::new(payload);
    let stats = read_stats(&mut r).map_err(|m| transport("StatsOk", &m))?;
    r.finish().map_err(|m| transport("StatsOk", &m))?;
    Ok(stats)
}

fn read_stats(r: &mut Reader<'_>) -> Result<ServeStats, String> {
    let requests = r.u64()?;
    let batches = r.u64()?;
    let max_batch = r.u64()?;
    let scored_instances = r.u64()?;
    let cache_hits = r.u64()?;
    let cache_misses = r.u64()?;
    let cache_evictions = r.u64()?;
    let cache_entries = r.u64()?;
    let queue_depth = r.u64()?;
    let shed_queue = r.u64()?;
    let shed_latency = r.u64()?;
    let recent_batch_latency_p99_s = r.f64()?;
    let mut batch_size_hist = [0u64; BATCH_SIZE_BUCKETS];
    read_hist(r, &mut batch_size_hist, "batch size histogram")?;
    let batch_latency_p50_s = r.f64()?;
    let batch_latency_p95_s = r.f64()?;
    let batch_latency_p99_s = r.f64()?;
    let mut batch_latency_hist = [0u64; LATENCY_BUCKETS];
    read_hist(r, &mut batch_latency_hist, "latency histogram")?;
    Ok(ServeStats {
        requests,
        batches,
        max_batch,
        scored_instances,
        cache_hits,
        cache_misses,
        cache_evictions,
        cache_entries,
        queue_depth,
        shed_queue,
        shed_latency,
        recent_batch_latency_p99_s,
        batch_size_hist,
        batch_latency_p50_s,
        batch_latency_p95_s,
        batch_latency_p99_s,
        batch_latency_hist,
    })
}

fn read_hist(r: &mut Reader<'_>, out: &mut [u64], what: &str) -> Result<(), String> {
    let n = r.len()?;
    if n != out.len() {
        return Err(format!("{what} has {n} buckets, this build expects {}", out.len()));
    }
    for slot in out.iter_mut() {
        *slot = r.u64()?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Snapshot entries and chunks
// ---------------------------------------------------------------------------

/// Whether every entry of `snapshot` fits the binary codec's compact
/// ranges (stencil offsets in `i16`, tuning components in `u16`).
pub fn snapshot_fits(snapshot: &CacheSnapshot) -> bool {
    snapshot.entries.iter().all(entry_fits)
}

fn entry_fits(entry: &SnapshotEntry) -> bool {
    entry.key.pattern().iter().all(|(o, _)| offset_fits(o))
        && entry.entries.iter().all(|(t, _)| tuning_fits(t))
}

/// Chunks `snapshot` with binary entry payloads — same chunk boundaries,
/// byte budget and FNV-1a checksums as [`CacheSnapshot::to_chunks`], only
/// the rendition differs. Callers check [`snapshot_fits`] first
/// (debug-asserted here); out-of-range values saturate rather than panic.
pub fn snapshot_to_chunks(
    snapshot: &CacheSnapshot,
    entries_per_chunk: usize,
) -> (SnapshotHeader, Vec<SnapshotChunk>) {
    debug_assert!(snapshot_fits(snapshot), "caller must fall back to JSON when values overflow");
    snapshot.to_chunks_with(entries_per_chunk, encode_entry, seal_chunk)
}

/// Reassembles a snapshot from binary-codec chunks, with the same
/// count/order/checksum validation as [`CacheSnapshot::from_chunks`].
pub fn snapshot_from_chunks(
    header: &SnapshotHeader,
    chunks: &[SnapshotChunk],
) -> Result<CacheSnapshot, SnapshotError> {
    CacheSnapshot::from_chunks_with(header, chunks, |i, payload| {
        decode_chunk(payload).map_err(|m| SnapshotError::Parse(format!("binary chunk {i}: {m}")))
    })
}

/// One chunk payload: `u32 entry count ‖ concatenated entry encodings`.
fn seal_chunk(pending: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = pending.iter().map(|p| p.len()).sum();
    let mut out = Vec::with_capacity(4 + total);
    put_u32_len(&mut out, pending.len());
    for rendered in pending {
        out.extend_from_slice(rendered);
    }
    out
}

fn decode_chunk(payload: &[u8]) -> Result<Vec<SnapshotEntry>, String> {
    let mut r = Reader::new(payload);
    let n = r.len()?;
    let mut entries = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        entries.push(read_entry(&mut r)?);
    }
    r.finish()?;
    Ok(entries)
}

/// One entry:
/// `key (pattern cells ‖ buffers u8 ‖ dtype u8 ‖ size 3×u32) ‖
///  u32 n ‖ n × (tuning ‖ f64 score) ‖ u64 candidates ‖ u64 last_used`
/// where pattern cells are `u32 count ‖ count × (3×i16 offset ‖ u16 n)`.
fn encode_entry(entry: &SnapshotEntry) -> Vec<u8> {
    let pattern = entry.key.pattern();
    let mut out = Vec::with_capacity(40 + pattern.len() * 8 + entry.entries.len() * 18);
    put_u32_len(&mut out, pattern.len());
    for (o, c) in pattern.iter() {
        put_i16(&mut out, o.dx);
        put_i16(&mut out, o.dy);
        put_i16(&mut out, o.dz);
        out.extend_from_slice(&c.to_le_bytes());
    }
    out.push(entry.key.buffers());
    out.push(match entry.key.dtype() {
        DType::F32 => 0,
        DType::F64 => 1,
    });
    let size = entry.key.size();
    out.extend_from_slice(&size.x.to_le_bytes());
    out.extend_from_slice(&size.y.to_le_bytes());
    out.extend_from_slice(&size.z.to_le_bytes());
    put_u32_len(&mut out, entry.entries.len());
    for (t, score) in &entry.entries {
        put_tuning(&mut out, t);
        out.extend_from_slice(&score.to_le_bytes());
    }
    out.extend_from_slice(&u64::try_from(entry.candidates).unwrap_or(u64::MAX).to_le_bytes());
    out.extend_from_slice(&entry.last_used.to_le_bytes());
    out
}

fn read_entry(r: &mut Reader<'_>) -> Result<SnapshotEntry, String> {
    let cells = r.len()?;
    let mut pattern = StencilPattern::new();
    for _ in 0..cells {
        let dx = i32::from(r.i16()?);
        let dy = i32::from(r.i16()?);
        let dz = i32::from(r.i16()?);
        let count = r.u16()?;
        pattern.add_count(Offset::new(dx, dy, dz), count);
    }
    let buffers = r.u8()?;
    let dtype = match r.u8()? {
        0 => DType::F32,
        1 => DType::F64,
        other => return Err(format!("unknown dtype byte {other:#04x}")),
    };
    let size = GridSize { x: r.u32()?, y: r.u32()?, z: r.u32()? };
    let key = InstanceKey::from_parts(pattern, buffers, dtype, size);
    let n = r.len()?;
    let mut entries = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let t = read_tuning(r)?;
        let score = r.f64()?;
        entries.push((t, score));
    }
    let candidates =
        usize::try_from(r.u64()?).map_err(|_| "candidate count overflow".to_owned())?;
    let last_used = r.u64()?;
    Ok(SnapshotEntry { key, entries, candidates, last_used })
}

// ---------------------------------------------------------------------------
// Shared pieces
// ---------------------------------------------------------------------------

fn tuning_fits(t: &TuningVector) -> bool {
    t.as_array().iter().all(|&v| u16::try_from(v).is_ok())
}

fn offset_fits(o: Offset) -> bool {
    [o.dx, o.dy, o.dz].iter().all(|&v| i16::try_from(v).is_ok())
}

/// Five `u16`s in canonical `(bx, by, bz, u, c)` order.
fn put_tuning(out: &mut Vec<u8>, t: &TuningVector) {
    debug_assert!(tuning_fits(t), "caller must fall back to JSON when components overflow u16");
    for v in t.as_array() {
        out.extend_from_slice(&u16::try_from(v).unwrap_or(u16::MAX).to_le_bytes());
    }
}

fn read_tuning(r: &mut Reader<'_>) -> Result<TuningVector, String> {
    let bx = u32::from(r.u16()?);
    let by = u32::from(r.u16()?);
    let bz = u32::from(r.u16()?);
    let u = u32::from(r.u16()?);
    let c = u32::from(r.u16()?);
    Ok(TuningVector::new(bx, by, bz, u, c))
}

fn put_i16(out: &mut Vec<u8>, v: i32) {
    debug_assert!(
        i16::try_from(v).is_ok(),
        "caller must fall back to JSON when offsets overflow i16"
    );
    let clamped = i16::try_from(v).unwrap_or(if v < 0 { i16::MIN } else { i16::MAX });
    out.extend_from_slice(&clamped.to_le_bytes());
}

fn put_u32_len(out: &mut Vec<u8>, len: usize) {
    out.extend_from_slice(&u32::try_from(len).unwrap_or(u32::MAX).to_le_bytes());
}

fn transport(kind: &str, msg: &str) -> ServeError {
    ServeError::Transport(format!("binary {kind} payload: {msg}"))
}

/// A bounds-checked cursor over a decode payload: every read either
/// yields bytes that exist or a description of the truncation. The
/// split-based `take` keeps the whole decoder free of panicking indexing.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], String> {
        let Some((head, tail)) = self.buf.split_first_chunk::<N>() else {
            return Err(format!("truncated: wanted {N} more bytes, {} left", self.buf.len()));
        };
        self.buf = tail;
        Ok(*head)
    }

    fn u8(&mut self) -> Result<u8, String> {
        let [b] = self.take::<1>()?;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take::<2>()?))
    }

    fn i16(&mut self) -> Result<i16, String> {
        Ok(i16::from_le_bytes(self.take::<2>()?))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take::<4>()?))
    }

    /// A `u32` count/length prefix widened to `usize` — `try_from`, not
    /// `as`, so a 16-bit `usize` would fail loudly instead of wrapping.
    fn len(&mut self) -> Result<usize, String> {
        let n = self.u32()?;
        usize::try_from(n).map_err(|_| format!("count {n} does not fit usize"))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take::<8>()?))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take::<8>()?))
    }

    /// Rejects trailing bytes — a payload must decode exactly.
    fn finish(&self) -> Result<(), String> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes after the payload", self.buf.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorl_serve::snapshot::SNAPSHOT_FORMAT_VERSION;
    use stencil_model::{StencilInstance, StencilKernel};

    fn sample_top_k() -> TopK {
        TopK {
            entries: vec![
                (TuningVector::new(64, 16, 8, 4, 2), -1.25),
                (TuningVector::new(1024, 2, 1, 0, 256), f64::MIN_POSITIVE),
                (TuningVector::new(2, 2, 2, 8, 1), -0.0),
            ],
            candidates: 8640,
            seconds: 0.004_375,
        }
    }

    fn sample_entry(n: u32, last_used: u64) -> SnapshotEntry {
        let key =
            StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(n)).unwrap().key();
        SnapshotEntry {
            key,
            entries: vec![
                (TuningVector::new(8, 8, 8, 2, 1), 0.5),
                (TuningVector::new(16, 4, 2, 0, 3), -2.625),
            ],
            candidates: 8640,
            last_used,
        }
    }

    fn sample_snapshot() -> CacheSnapshot {
        CacheSnapshot {
            format_version: SNAPSHOT_FORMAT_VERSION,
            ranker_fingerprint: 0xfeed_f00d_dead_beef,
            entries: (0..7).map(|i| sample_entry(64 + 8 * i, u64::from(i))).collect(),
        }
    }

    fn sample_stats() -> ServeStats {
        let mut batch_size_hist = [0u64; BATCH_SIZE_BUCKETS];
        batch_size_hist[0] = 3;
        batch_size_hist[BATCH_SIZE_BUCKETS - 1] = 9;
        let mut batch_latency_hist = [0u64; LATENCY_BUCKETS];
        batch_latency_hist[7] = 1234;
        ServeStats {
            requests: u64::MAX,
            batches: 41,
            max_batch: 17,
            scored_instances: 29,
            cache_hits: 1000,
            cache_misses: 77,
            cache_evictions: 3,
            cache_entries: 74,
            queue_depth: 5,
            shed_queue: 2,
            shed_latency: 1,
            recent_batch_latency_p99_s: 0.012_8,
            batch_size_hist,
            batch_latency_p50_s: 6.4e-5,
            batch_latency_p95_s: 1.28e-4,
            batch_latency_p99_s: 2.56e-4,
            batch_latency_hist,
        }
    }

    #[test]
    fn top_k_roundtrips_bit_for_bit() {
        let top = sample_top_k();
        let back = decode_top_k(&encode_top_k(&top)).unwrap();
        assert_eq!(back.candidates, top.candidates);
        assert_eq!(back.seconds.to_bits(), top.seconds.to_bits());
        assert_eq!(back.entries.len(), top.entries.len());
        for ((t, s), (bt, bs)) in top.entries.iter().zip(&back.entries) {
            assert_eq!(t, bt);
            assert_eq!(s.to_bits(), bs.to_bits(), "scores must survive bitwise (−0.0 included)");
        }
    }

    #[test]
    fn stats_roundtrip_exactly() {
        let stats = sample_stats();
        let back = decode_stats(&encode_stats(&stats)).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn snapshot_chunks_roundtrip_and_match_json_semantics() {
        let snap = sample_snapshot();
        for per_chunk in [1, 2, 3, 100] {
            let (header, chunks) = snapshot_to_chunks(&snap, per_chunk);
            assert_eq!(header, snap.to_chunks(per_chunk).0, "chunk boundaries must not fork");
            for c in &chunks {
                assert!(c.verify(), "binary chunks carry real FNV-1a checksums");
            }
            let back = snapshot_from_chunks(&header, &chunks).unwrap();
            assert_eq!(back, snap, "per_chunk={per_chunk}");
        }
    }

    #[test]
    fn binary_chunks_are_less_than_half_the_json_bytes() {
        // The codec exists for exactly this; the benchmark tripwire pins
        // the same bound on the live transport.
        let snap = sample_snapshot();
        let json: usize = snap.to_chunks(64).1.iter().map(|c| c.payload.len()).sum();
        let bin: usize = snapshot_to_chunks(&snap, 64).1.iter().map(|c| c.payload.len()).sum();
        assert!(bin * 2 <= json, "binary {bin} bytes vs JSON {json} bytes");
    }

    #[test]
    fn truncated_payloads_fault_at_every_length() {
        let top = encode_top_k(&sample_top_k());
        for cut in 0..top.len() {
            assert!(decode_top_k(&top[..cut]).is_err(), "cut at {cut} must fault");
        }
        let stats = encode_stats(&sample_stats());
        for cut in 0..stats.len() {
            assert!(decode_stats(&stats[..cut]).is_err(), "cut at {cut} must fault");
        }
        let (_, chunks) = snapshot_to_chunks(&sample_snapshot(), 100);
        let chunk = &chunks[0].payload;
        for cut in 0..chunk.len() {
            assert!(decode_chunk(&chunk[..cut]).is_err(), "cut at {cut} must fault");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut top = encode_top_k(&sample_top_k());
        top.push(0);
        let err = decode_top_k(&top).unwrap_err();
        assert!(matches!(err, ServeError::Transport(ref m) if m.contains("trailing")), "{err}");
    }

    #[test]
    fn garbage_counts_fault_instead_of_allocating() {
        // A payload whose entry count claims u32::MAX must fail on the
        // missing bytes, not try to materialize four billion entries.
        let mut payload = Vec::new();
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        payload.extend_from_slice(&[0u8; 64]);
        assert!(decode_top_k(&payload).is_err());
        assert!(decode_chunk(&payload).is_err());
    }

    #[test]
    fn unknown_dtype_byte_faults() {
        let entry = sample_entry(64, 1);
        let mut bytes = encode_entry(&entry);
        // The dtype byte sits right after the pattern cells and buffer
        // count.
        let dtype_at = 4 + entry.key.pattern().len() * 8 + 1;
        bytes[dtype_at] = 9;
        let mut r = Reader::new(&bytes);
        let err = read_entry(&mut r).unwrap_err();
        assert!(err.contains("dtype"), "{err}");
    }

    #[test]
    fn fits_checks_spot_overflowing_values() {
        assert!(top_k_fits(&sample_top_k()));
        let mut top = sample_top_k();
        top.entries.push((TuningVector::new(70_000, 1, 1, 0, 1), 0.0));
        assert!(!top_k_fits(&top));

        let mut snap = sample_snapshot();
        assert!(snapshot_fits(&snap));
        let far = StencilPattern::from_points([(40_000, 0, 0), (0, 0, 0)]);
        snap.entries[0].key = InstanceKey::from_parts(far, 1, DType::F32, GridSize::cube(64));
        assert!(!snapshot_fits(&snap));
    }

    #[test]
    fn empty_top_k_and_snapshot_encode() {
        let top = TopK { entries: Vec::new(), candidates: 0, seconds: 0.0 };
        assert_eq!(decode_top_k(&encode_top_k(&top)).unwrap().entries.len(), 0);
        let snap = CacheSnapshot::empty(3);
        let (header, chunks) = snapshot_to_chunks(&snap, 64);
        assert!(chunks.is_empty());
        assert_eq!(snapshot_from_chunks(&header, &chunks).unwrap(), snap);
    }
}
