//! End-to-end tests of the sharded fleet: routing correctness, warm-up
//! shipping on topology changes, and warm restarts from snapshots.

use std::time::Duration;

use ranksvm::LinearRanker;
use sorl::session::TuningSession;
use sorl::StencilRanker;
use sorl_serve::ServeConfig;
use sorl_shard::{LocalShard, ShardError, ShardRouter};
use stencil_model::{FeatureEncoder, GridSize, StencilInstance, StencilKernel};

/// Deterministic dense synthetic ranker (no training run needed).
fn dense_ranker() -> StencilRanker {
    let encoder = FeatureEncoder::default_interaction();
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let w: Vec<f64> = (0..encoder.dim())
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        })
        .collect();
    StencilRanker::new(encoder, LinearRanker::from_weights(w))
}

/// Single-threaded scoring and a tiny gather window: these tests exercise
/// routing and cache plumbing, not throughput.
fn config() -> ServeConfig {
    ServeConfig { threads: 1, gather_window: Duration::from_micros(10), ..Default::default() }
}

fn lap(n: u32) -> StencilInstance {
    StencilInstance::new(StencilKernel::laplacian(), GridSize::cube(n)).unwrap()
}

fn blur(n: u32) -> StencilInstance {
    StencilInstance::new(StencilKernel::blur(), GridSize::square(n)).unwrap()
}

/// A spread of distinct instances across both dimensionalities.
fn workload() -> Vec<StencilInstance> {
    let mut qs = Vec::new();
    for i in 0..20u32 {
        qs.push(lap(48 + 8 * i));
        qs.push(blur(256 + 64 * i));
    }
    qs
}

fn three_shard_router(ranker: &StencilRanker) -> ShardRouter {
    let mut router = ShardRouter::new();
    for id in ["alpha", "beta", "gamma"] {
        let report = router.add_shard(id, LocalShard::spawn(ranker.clone(), config())).unwrap();
        assert_eq!(report.shipped, 0, "fresh shards have nothing to ship");
    }
    router
}

#[test]
fn routed_answers_match_direct_session_queries() {
    let ranker = dense_ranker();
    let mut reference = TuningSession::new(ranker.clone());
    let router = three_shard_router(&ranker);
    for q in [lap(96), blur(512), lap(128), blur(1024)] {
        let got = router.tune(q.clone(), 3).unwrap();
        let want = reference.top_k_predefined(&q, 3);
        assert_eq!(got.entries, want.entries, "{q}");
        assert_eq!(got.candidates, want.candidates, "{q}");
    }
}

#[test]
fn traffic_spreads_over_the_fleet_and_routing_is_stable() {
    let ranker = dense_ranker();
    let router = three_shard_router(&ranker);
    let qs = workload();
    for q in &qs {
        router.tune(q.clone(), 1).unwrap();
    }
    // Every shard took some traffic (40 distinct keys over 3 shards).
    let mut served = 0;
    for (id, stats) in router.stats() {
        let stats = stats.unwrap();
        assert_eq!(stats.cache_hits, 0, "{id}: all queries distinct");
        if stats.requests > 0 {
            served += 1;
        }
    }
    assert_eq!(served, 3, "40 keys left a shard idle");
    // Re-asking every query routes identically: all hits, no new scoring.
    for q in &qs {
        router.tune(q.clone(), 1).unwrap();
    }
    let total_hits: u64 = router.stats().iter().map(|(_, s)| s.as_ref().unwrap().cache_hits).sum();
    assert_eq!(total_hits as usize, qs.len(), "every repeat was a cache hit on its owner");
}

#[test]
fn adding_a_shard_ships_exactly_the_remapped_slice() {
    let ranker = dense_ranker();
    let mut router = three_shard_router(&ranker);
    let qs = workload();
    for q in &qs {
        router.tune(q.clone(), 2).unwrap();
    }
    // Deterministic accounting: the keys whose owner changes under the
    // grown topology are exactly what must ship to the new shard.
    let old_topo = router.topology();
    let new_topo = old_topo.with("delta");
    let expected_moves =
        qs.iter().filter(|q| new_topo.owner_of(&q.key()) != old_topo.owner_of(&q.key())).count();
    assert!(expected_moves > 0, "workload too small to exercise shipping");

    let report = router.add_shard("delta", LocalShard::spawn(ranker.clone(), config())).unwrap();
    assert_eq!(report.shipped, expected_moves);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.dropped, 0, "the default cache capacity fits the whole slice");

    // Every query — moved or not — is now a cache hit somewhere.
    let scored_before: u64 =
        router.stats().iter().map(|(_, s)| s.as_ref().unwrap().scored_instances).sum();
    for q in &qs {
        router.tune(q.clone(), 2).unwrap();
    }
    let scored_after: u64 =
        router.stats().iter().map(|(_, s)| s.as_ref().unwrap().scored_instances).sum();
    assert_eq!(scored_after, scored_before, "warm shipping kept every decision hot");
}

#[test]
fn removing_a_shard_redistributes_its_decisions() {
    let ranker = dense_ranker();
    let mut router = three_shard_router(&ranker);
    let qs = workload();
    for q in &qs {
        router.tune(q.clone(), 2).unwrap();
    }
    let old_topo = router.topology();
    let departing = qs.iter().filter(|q| old_topo.owner_of(&q.key()) == Some("beta")).count();
    assert!(departing > 0, "workload too small to give beta any keys");

    let report = router.remove_shard("beta").unwrap();
    assert_eq!(report.shipped, departing, "all of beta's decisions found a new home");
    assert_eq!(router.len(), 2);

    let scored_before: u64 =
        router.stats().iter().map(|(_, s)| s.as_ref().unwrap().scored_instances).sum();
    for q in &qs {
        router.tune(q.clone(), 2).unwrap();
    }
    let scored_after: u64 =
        router.stats().iter().map(|(_, s)| s.as_ref().unwrap().scored_instances).sum();
    assert_eq!(scored_after, scored_before, "survivors answer beta's keys from shipped cache");
}

#[test]
fn killed_shard_restarts_warm_from_its_snapshot() {
    let ranker = dense_ranker();
    let mut router = three_shard_router(&ranker);
    let qs = workload();
    for q in &qs {
        router.tune(q.clone(), 2).unwrap();
    }
    // Pick an instance owned by alpha so the restart test has a witness.
    let topo = router.topology();
    let witness = qs
        .iter()
        .find(|q| topo.owner_of(&q.key()) == Some("alpha"))
        .expect("alpha owns something")
        .clone();

    // Persist alpha's cache (as a periodic persistence daemon would) —
    // through a JSON file, like a real deployment.
    let dir = std::env::temp_dir().join("sorl-shard-fleet-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("alpha.cache.json");
    let snapshot = router.snapshot_shard("alpha").unwrap();
    assert!(!snapshot.is_empty(), "alpha served queries, so it has decisions");
    snapshot.save_json(&path).unwrap();

    // "Crash": detach without any graceful handoff (dropping the
    // transport kills the in-process service).
    router.detach_shard("alpha").unwrap();
    assert_eq!(router.len(), 2);
    // The fleet still answers alpha-owned keys — cold, by rescoring. This
    // must be a FRESH instance the survivors never saw: the witness itself
    // must stay uncached everywhere except in alpha's snapshot, so the
    // final hit can only come from the snapshot restore (re-joining ships
    // survivor-cached alpha keys — like this one — back to alpha, which
    // must not be able to mask a broken restore).
    let fresh = (1000..1100u32)
        .map(lap)
        .find(|q| topo.owner_of(&q.key()) == Some("alpha"))
        .expect("some fresh key was alpha's");
    assert!(!qs.contains(&fresh), "fresh key is not part of the workload");
    router.tune(fresh.clone(), 2).unwrap();

    // Restart warm from the persisted snapshot and rejoin.
    let loaded = sorl_serve::CacheSnapshot::load_json(&path).unwrap();
    let expected_restored = loaded.len();
    let (reborn, restored) = LocalShard::spawn_warm(ranker.clone(), config(), loaded).unwrap();
    assert_eq!(restored, expected_restored);
    let report = router.add_shard("alpha", reborn).unwrap();
    assert_eq!(report.shipped, 1, "only the outage-era `fresh` decision ships back");

    // The witness routes back to alpha and is answered from the restored
    // cache: a hit, with no scoring pass — verified via ServeStats. (The
    // witness was never cached on a survivor, so warm shipping cannot
    // have supplied this answer — only the snapshot restore can.)
    let direct = TuningSession::new(ranker.clone()).top_k_predefined(&witness, 2);
    let got = router.tune(witness.clone(), 2).unwrap();
    assert_eq!(got.entries, direct.entries, "restored decision is bit-for-bit correct");
    let stats: std::collections::HashMap<String, _> = router.stats().into_iter().collect();
    let alpha = stats["alpha"].clone().unwrap();
    assert_eq!(alpha.cache_hits, 1, "answered from the warm cache");
    assert_eq!(alpha.scored_instances, 0, "no scoring pass after the warm restart");
    std::fs::remove_file(&path).ok();
}

#[test]
fn undersized_newcomer_accounts_for_capacity_dropped_decisions() {
    // A joining shard whose cache cannot hold its whole slice must not
    // silently lose the overflow: every moved decision is either shipped
    // (applied to the newcomer) or reported dropped.
    let ranker = dense_ranker();
    let mut router = three_shard_router(&ranker);
    let qs = workload();
    for q in &qs {
        router.tune(q.clone(), 2).unwrap();
    }
    let old_topo = router.topology();
    let new_topo = old_topo.with("tiny");
    let moves =
        qs.iter().filter(|q| new_topo.owner_of(&q.key()) != old_topo.owner_of(&q.key())).count();
    assert!(moves > 0, "workload too small to exercise shipping");

    let tiny_cfg = ServeConfig { cache_capacity: 1, ..config() };
    let report = router.add_shard("tiny", LocalShard::spawn(ranker.clone(), tiny_cfg)).unwrap();
    // The slices merge into one import, so the capacity cap applies once:
    // exactly one decision fits, the rest is dropped — and the books
    // balance exactly.
    assert_eq!(report.shipped, 1, "capacity 1: exactly one decision is resident");
    assert_eq!(report.dropped, moves - 1);
    assert_eq!(report.rejected, 0);
}

#[test]
fn mismatched_ranker_is_rejected_on_join() {
    let ranker = dense_ranker();
    let mut router = three_shard_router(&ranker);
    // A retrained (different-weight) model must not join the fleet.
    let encoder = FeatureEncoder::default_interaction();
    let other = StencilRanker::new(encoder.clone(), LinearRanker::zeros(encoder.dim()));
    let err = router.add_shard("rogue", LocalShard::spawn(other, config())).unwrap_err();
    assert!(matches!(err, ShardError::RankerMismatch { .. }), "{err}");
    assert_eq!(router.len(), 3, "topology unchanged after rejection");
    assert!(matches!(router.remove_shard("rogue").unwrap_err(), ShardError::UnknownShard(_)));
}

#[test]
fn duplicate_ids_are_rejected() {
    let ranker = dense_ranker();
    let mut router = three_shard_router(&ranker);
    let err = router.add_shard("alpha", LocalShard::spawn(ranker.clone(), config())).unwrap_err();
    assert!(matches!(err, ShardError::DuplicateShard(_)), "{err}");
}
